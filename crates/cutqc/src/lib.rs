//! A CutQC-style wire-cutting planner and cost model.
//!
//! CutQC (Tang et al., ASPLOS 2021) decomposes a circuit into fragments by
//! cutting qubit wires; every cut multiplies the classical reconstruction
//! work by 4 (one term per Pauli basis element crossing the cut), so `c`
//! cuts imply `4^c` tensor-product terms — the "exponential post-processing"
//! row of the paper's Table 3. FrozenQubits argues (§1, §3.9) that cutting
//! is a poor fit for power-law QAOA graphs because hotspots force `c` to be
//! large. This crate makes that argument **quantitative**: it plans an
//! actual edge cut of the problem graph (greedy growth + Kernighan–Lin
//! refinement) and prices it with CutQC's cost model, so Table 3 can be
//! regenerated from real instances instead of asymptotics.
//!
//! # Example
//!
//! ```
//! use fq_cutqc::{plan_cut, CutPlan};
//! use fq_ising::IsingModel;
//!
//! // A 6-ring split into two 3-fragments costs exactly 2 cut edges.
//! let mut m = IsingModel::new(6);
//! for i in 0..6 {
//!     m.set_coupling(i, (i + 1) % 6, 1.0)?;
//! }
//! let plan = plan_cut(&m, 3)?;
//! assert_eq!(plan.num_cuts(), 2);
//! assert_eq!(plan.cost().postprocessing_terms_log2, 4.0); // 4^2 = 2^4
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use fq_ising::IsingModel;
use serde::{Deserialize, Serialize};

/// Errors produced by the cut planner.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CutError {
    /// The fragment capacity cannot host the problem.
    InfeasibleFragmentSize {
        /// Requested per-fragment qubit capacity.
        max_fragment: usize,
    },
    /// The model has no variables.
    EmptyModel,
}

impl fmt::Display for CutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CutError::InfeasibleFragmentSize { max_fragment } => {
                write!(f, "fragment capacity {max_fragment} must be at least 1")
            }
            CutError::EmptyModel => write!(f, "cannot cut an empty model"),
        }
    }
}

impl Error for CutError {}

/// A partition of the problem graph into fragments plus the edges severed
/// between them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CutPlan {
    fragments: Vec<Vec<usize>>,
    cut_edges: Vec<(usize, usize)>,
    num_vars: usize,
}

/// The CutQC cost model of a plan (Table 3's columns).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CutCost {
    /// Number of circuit fragments.
    pub num_fragments: usize,
    /// Number of cut edges `c`.
    pub num_cuts: usize,
    /// log₂ of the classical reconstruction term count `4^c`.
    pub postprocessing_terms_log2: f64,
    /// Total fragment-circuit variants to execute: each fragment runs once
    /// per Pauli-basis combination of its incident cuts, `Σ_f 4^{c_f}`.
    pub quantum_circuit_count: f64,
    /// Compilation count: every distinct fragment variant is a different
    /// circuit (contrast with FrozenQubits' single template, §3.7.1).
    pub compile_count: f64,
}

impl CutPlan {
    /// The fragments, each a sorted list of variable indices.
    #[must_use]
    pub fn fragments(&self) -> &[Vec<usize>] {
        &self.fragments
    }

    /// The severed edges.
    #[must_use]
    pub fn cut_edges(&self) -> &[(usize, usize)] {
        &self.cut_edges
    }

    /// Number of severed edges `c`.
    #[must_use]
    pub fn num_cuts(&self) -> usize {
        self.cut_edges.len()
    }

    /// Evaluates the CutQC cost model on this plan.
    #[must_use]
    pub fn cost(&self) -> CutCost {
        let c = self.cut_edges.len();
        // Cuts incident to each fragment.
        let mut frag_of = vec![0usize; self.num_vars];
        for (fi, frag) in self.fragments.iter().enumerate() {
            for &v in frag {
                frag_of[v] = fi;
            }
        }
        let mut cuts_per_fragment = vec![0u32; self.fragments.len()];
        for &(a, b) in &self.cut_edges {
            cuts_per_fragment[frag_of[a]] += 1;
            cuts_per_fragment[frag_of[b]] += 1;
        }
        let quantum: f64 = cuts_per_fragment.iter().map(|&k| 4f64.powi(k as i32)).sum();
        CutCost {
            num_fragments: self.fragments.len(),
            num_cuts: c,
            postprocessing_terms_log2: 2.0 * c as f64,
            quantum_circuit_count: quantum,
            compile_count: quantum,
        }
    }
}

/// Plans an edge cut of the problem graph into fragments of at most
/// `max_fragment` variables, minimizing the number of severed edges with
/// greedy growth plus Kernighan–Lin single-move refinement.
///
/// # Errors
///
/// Returns [`CutError::EmptyModel`] for zero-variable models and
/// [`CutError::InfeasibleFragmentSize`] when `max_fragment == 0`.
pub fn plan_cut(model: &IsingModel, max_fragment: usize) -> Result<CutPlan, CutError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(CutError::EmptyModel);
    }
    if max_fragment == 0 {
        return Err(CutError::InfeasibleFragmentSize { max_fragment });
    }
    let adj = model.adjacency();

    // Greedy BFS growth: fill fragments up to capacity, always absorbing
    // the frontier vertex with the most edges into the current fragment.
    let mut assignment = vec![usize::MAX; n];
    let mut current = 0usize;
    let mut filled = 0usize;
    for start in 0..n {
        if assignment[start] != usize::MAX {
            continue;
        }
        if filled >= max_fragment {
            current += 1;
            filled = 0;
        }
        assignment[start] = current;
        filled += 1;
        let mut frontier: Vec<usize> = adj[start].iter().map(|&(v, _)| v).collect();
        while filled < max_fragment {
            let Some((pos, &cand)) = frontier
                .iter()
                .enumerate()
                .filter(|(_, &v)| assignment[v] == usize::MAX)
                .max_by_key(|(_, &v)| {
                    adj[v]
                        .iter()
                        .filter(|&&(u, _)| assignment[u] == current)
                        .count()
                })
            else {
                break;
            };
            frontier.swap_remove(pos);
            assignment[cand] = current;
            filled += 1;
            frontier.extend(adj[cand].iter().map(|&(v, _)| v));
        }
    }
    let num_fragments = current + 1;

    // Kernighan–Lin style refinement: move a vertex to another fragment if
    // it strictly reduces the cut and capacity allows.
    let mut sizes = vec![0usize; num_fragments];
    for &a in &assignment {
        sizes[a] += 1;
    }
    for _pass in 0..4 {
        let mut improved = false;
        for v in 0..n {
            let home = assignment[v];
            if sizes[home] == 1 {
                continue; // keep fragments non-empty
            }
            // Count edges to each fragment.
            let mut to_frag = vec![0usize; num_fragments];
            for &(u, _) in &adj[v] {
                to_frag[assignment[u]] += 1;
            }
            let best = (0..num_fragments)
                .filter(|&f| f != home && sizes[f] < max_fragment)
                .max_by_key(|&f| to_frag[f]);
            if let Some(target) = best {
                if to_frag[target] > to_frag[home] {
                    sizes[home] -= 1;
                    sizes[target] += 1;
                    assignment[v] = target;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    let mut fragments: Vec<Vec<usize>> = vec![Vec::new(); num_fragments];
    for (v, &f) in assignment.iter().enumerate() {
        fragments[f].push(v);
    }
    fragments.retain(|f| !f.is_empty());
    // Recompute assignment after retain.
    let mut frag_of = vec![0usize; n];
    for (fi, frag) in fragments.iter().enumerate() {
        for &v in frag {
            frag_of[v] = fi;
        }
    }
    let cut_edges: Vec<(usize, usize)> = model
        .couplings()
        .filter_map(|((a, b), _)| (frag_of[a] != frag_of[b]).then_some((a, b)))
        .collect();

    Ok(CutPlan {
        fragments,
        cut_edges,
        num_vars: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            m.set_coupling(i, (i + 1) % n, 1.0).unwrap();
        }
        m
    }

    fn star(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 1..n {
            m.set_coupling(0, i, 1.0).unwrap();
        }
        m
    }

    #[test]
    fn ring_bisection_cuts_two_edges() {
        let plan = plan_cut(&ring(8), 4).unwrap();
        assert_eq!(plan.fragments().len(), 2);
        assert_eq!(plan.num_cuts(), 2);
    }

    #[test]
    fn fragments_partition_all_variables() {
        let plan = plan_cut(&ring(10), 3).unwrap();
        let mut seen = [false; 10];
        for frag in plan.fragments() {
            assert!(frag.len() <= 3);
            for &v in frag {
                assert!(!seen[v], "variable {v} in two fragments");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hotspot_graphs_force_many_cuts() {
        // A star cannot be split without severing spokes: cutting a 12-node
        // star in half costs ≥ 5 edges, while a 12-ring costs 2.
        let star_cuts = plan_cut(&star(12), 6).unwrap().num_cuts();
        let ring_cuts = plan_cut(&ring(12), 6).unwrap().num_cuts();
        assert!(star_cuts >= 5, "star cuts {star_cuts}");
        assert_eq!(ring_cuts, 2);
    }

    #[test]
    fn cost_model_is_exponential_in_cuts() {
        let plan = plan_cut(&ring(8), 4).unwrap();
        let cost = plan.cost();
        assert_eq!(cost.num_cuts, 2);
        assert_eq!(cost.postprocessing_terms_log2, 4.0);
        // Two fragments, each touching both cuts: 2 · 4² = 32 variants.
        assert_eq!(cost.quantum_circuit_count, 32.0);
    }

    #[test]
    fn single_fragment_needs_no_cuts() {
        let plan = plan_cut(&ring(5), 5).unwrap();
        assert_eq!(plan.fragments().len(), 1);
        assert_eq!(plan.num_cuts(), 0);
        assert_eq!(plan.cost().quantum_circuit_count, 1.0);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(
            plan_cut(&IsingModel::new(0), 2),
            Err(CutError::EmptyModel)
        ));
        assert!(matches!(
            plan_cut(&ring(4), 0),
            Err(CutError::InfeasibleFragmentSize { .. })
        ));
    }
}
