//! NISQ transpilation substrate for the FrozenQubits reproduction.
//!
//! The paper's baseline compiles every QAOA circuit "using IBM's Qiskit
//! tool-chain with noise-adaptive routing and the highest optimization
//! level 3" (§4.2) onto heavy-hex IBM devices, and studies a 50×50 grid at
//! practical scale (§6). This crate rebuilds that tool-chain:
//!
//! * [`Topology`] — coupling graphs: linear, grid, IBM Falcon/Hummingbird/
//!   Eagle heavy-hex lattices, with all-pairs distances;
//! * [`Device`] — topology plus seeded synthetic calibration (CNOT error,
//!   readout error, `T1`/`T2`, durations) for the 8 IBMQ machines of
//!   Fig. 13, the ideal device and the optimistic 50×50 grid;
//! * [`choose_layout`] — trivial and noise-adaptive initial placement;
//! * [`route`] — deterministic SABRE-style SWAP routing;
//! * [`pass`] — CX-pair cancellation, `Rz` merging, SWAP decomposition;
//! * [`schedule`] — ASAP scheduling under the device's gate durations;
//! * [`compile`] — the full pipeline producing a [`Compiled`] artifact;
//! * [`compiled_to_value`] / [`compiled_from_value`] — the canonical JSON
//!   document form of a [`Compiled`] artifact, bit-exact across
//!   serialize → parse, so templates can spill to disk and travel
//!   between shards.
//!
//! # Example
//!
//! ```
//! use fq_circuit::build_qaoa_circuit;
//! use fq_ising::IsingModel;
//! use fq_transpile::{compile, CompileOptions, Device};
//!
//! let mut m = IsingModel::new(5);
//! for i in 1..5 {
//!     m.set_coupling(0, i, 1.0)?; // a 4-spoke star: node 0 is the hotspot
//! }
//! let qc = build_qaoa_circuit(&m, 1)?;
//! let compiled = compile(&qc, &Device::ibm_montreal(), CompileOptions::level3())?;
//! // Heavy-hex connectivity forces SWAPs beyond the 8 ideal CNOTs.
//! assert!(compiled.stats.cnot_count >= 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod device;
mod error;
mod layout;
pub mod pass;
mod route;
mod schedule;
mod topology;
mod wire;

pub use compile::{compile, compile_invocations, CompileOptions, Compiled};
pub use device::{Device, GateDurations};
pub use error::TranspileError;
pub use layout::{choose_layout, LayoutStrategy};
pub use route::{route, Routed};
pub use schedule::{gate_duration, schedule, Schedule};
pub use topology::{Topology, FALCON_27_EDGES};
pub use wire::{compiled_from_value, compiled_to_value};
