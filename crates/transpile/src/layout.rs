//! Initial qubit placement (layout) strategies.
//!
//! The baseline methodology compiles with "noise-adaptive routing" (§4.2):
//! logical qubits are placed on a connected, low-error region of the
//! device, with high-degree logical qubits (the hotspots!) claiming
//! high-degree physical qubits so fewer SWAPs are needed.

use serde::{Deserialize, Serialize};

use fq_circuit::QuantumCircuit;

use crate::{Device, TranspileError};

/// Which placement policy to use.
///
/// Deliberately exhaustive (not `#[non_exhaustive]`): the job-spec wire
/// format in `frozenqubits::api` matches on every variant, so adding one
/// is a compile error there — forcing a wire-format decision instead of
/// silent mis-serialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LayoutStrategy {
    /// Logical qubit `i` on physical qubit `i`.
    Trivial,
    /// Greedy noise- and degree-adaptive region growing (default).
    #[default]
    NoiseAdaptive,
}

/// Computes `layout[logical] = physical` for a circuit on a device.
///
/// # Errors
///
/// Returns [`TranspileError::CircuitTooWide`] if the circuit needs more
/// qubits than the device has.
///
/// # Example
///
/// ```
/// use fq_circuit::QuantumCircuit;
/// use fq_transpile::{choose_layout, Device, LayoutStrategy};
///
/// let mut qc = QuantumCircuit::new(4);
/// qc.cx(0, 1)?;
/// let dev = Device::ibm_montreal();
/// let layout = choose_layout(&qc, &dev, LayoutStrategy::NoiseAdaptive)?;
/// assert_eq!(layout.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn choose_layout(
    circuit: &QuantumCircuit,
    device: &Device,
    strategy: LayoutStrategy,
) -> Result<Vec<usize>, TranspileError> {
    let n = circuit.num_qubits();
    let avail = device.num_qubits();
    if n > avail {
        return Err(TranspileError::CircuitTooWide {
            needed: n,
            available: avail,
        });
    }
    match strategy {
        LayoutStrategy::Trivial => Ok((0..n).collect()),
        LayoutStrategy::NoiseAdaptive => Ok(noise_adaptive(circuit, device)),
    }
}

/// Greedy region growing: start from the physical qubit whose incident
/// couplers are healthiest, grow a connected region of `n` qubits by always
/// absorbing the frontier qubit with the best (fidelity, degree) score,
/// then match logical degree order to physical degree order inside the
/// region.
fn noise_adaptive(circuit: &QuantumCircuit, device: &Device) -> Vec<usize> {
    let topo = device.topology();
    let n = circuit.num_qubits();

    // Physical qubit quality: mean fidelity of incident couplers, weighted
    // by degree so well-connected qubits are preferred as region cores.
    let quality = |q: usize| -> f64 {
        let nb = topo.neighbors(q);
        if nb.is_empty() {
            return 0.0;
        }
        let mean: f64 =
            nb.iter().map(|&r| device.edge_fidelity(q, r)).sum::<f64>() / nb.len() as f64;
        mean * (1.0 + 0.1 * nb.len() as f64)
    };

    let seed = (0..topo.num_qubits())
        .max_by(|&a, &b| quality(a).partial_cmp(&quality(b)).expect("finite"))
        .unwrap_or(0);

    let mut region: Vec<usize> = vec![seed];
    let mut in_region = vec![false; topo.num_qubits()];
    in_region[seed] = true;
    while region.len() < n {
        let mut best: Option<(usize, f64)> = None;
        for &r in &region {
            for &cand in topo.neighbors(r) {
                if in_region[cand] {
                    continue;
                }
                // Prefer candidates well-connected *into* the region.
                let into_region = topo
                    .neighbors(cand)
                    .iter()
                    .filter(|&&x| in_region[x])
                    .count() as f64;
                let score = quality(cand) + 0.5 * into_region;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((cand, score));
                }
            }
        }
        let (chosen, _) = best.expect("connected topology always has a frontier");
        in_region[chosen] = true;
        region.push(chosen);
    }

    // Interaction graph of the circuit: degree and adjacency of logical
    // qubits.
    let mut logical_degree = vec![0usize; n];
    let mut logical_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for g in circuit.gates() {
        if g.is_two_qubit() {
            let qs = g.qubits();
            logical_degree[qs[0]] += 1;
            logical_degree[qs[1]] += 1;
            if !logical_adj[qs[0]].contains(&qs[1]) {
                logical_adj[qs[0]].push(qs[1]);
                logical_adj[qs[1]].push(qs[0]);
            }
        }
    }

    // BFS-correspondence mapping: walk the interaction graph breadth-first
    // from the hottest logical qubit, and the region breadth-first from
    // its best-connected physical qubit, pairing positions in order. This
    // keeps interacting qubits physically close (unlike degree-rank
    // matching, which scatters neighbours across the region).
    // Frozen sub-problems are often *disconnected* (removing a hub splits
    // a power-law tree), so BFS restarts at the hottest unseen vertex of
    // each remaining component.
    let mut logical_order = Vec::with_capacity(n);
    let mut seen_l = vec![false; n];
    while logical_order.len() < n {
        let root = (0..n)
            .filter(|&q| !seen_l[q])
            .max_by_key(|&q| (logical_degree[q], std::cmp::Reverse(q)))
            .expect("unseen vertices remain");
        let mut queue = std::collections::VecDeque::from([root]);
        seen_l[root] = true;
        while let Some(u) = queue.pop_front() {
            logical_order.push(u);
            let mut next: Vec<usize> = logical_adj[u]
                .iter()
                .copied()
                .filter(|&v| !seen_l[v])
                .collect();
            next.sort_by_key(|&v| (std::cmp::Reverse(logical_degree[v]), v));
            for v in next {
                seen_l[v] = true;
                queue.push_back(v);
            }
        }
    }

    let region_set: std::collections::BTreeSet<usize> = region.iter().copied().collect();
    let phys_root = region
        .iter()
        .copied()
        .max_by_key(|&p| {
            topo.neighbors(p)
                .iter()
                .filter(|&&x| region_set.contains(&x))
                .count()
        })
        .expect("region is non-empty");
    let mut physical_order = Vec::with_capacity(n);
    let mut seen_p: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut pqueue = std::collections::VecDeque::from([phys_root]);
    seen_p.insert(phys_root);
    while let Some(u) = pqueue.pop_front() {
        physical_order.push(u);
        let mut next: Vec<usize> = topo
            .neighbors(u)
            .iter()
            .copied()
            .filter(|p| region_set.contains(p) && !seen_p.contains(p))
            .collect();
        // Prefer well-connected, healthy couplers first.
        next.sort_by(|&a, &b| {
            let ka = topo
                .neighbors(a)
                .iter()
                .filter(|&&x| region_set.contains(&x))
                .count();
            let kb = topo
                .neighbors(b)
                .iter()
                .filter(|&&x| region_set.contains(&x))
                .count();
            kb.cmp(&ka).then(a.cmp(&b))
        });
        for p in next {
            seen_p.insert(p);
            pqueue.push_back(p);
        }
    }

    let mut layout = vec![0usize; n];
    for (rank, &logical) in logical_order.iter().enumerate() {
        layout[logical] = physical_order[rank];
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn star_circuit(n: usize) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        for i in 1..n {
            qc.cx(0, i).unwrap();
        }
        qc
    }

    #[test]
    fn trivial_layout_is_identity() {
        let qc = star_circuit(5);
        let dev = Device::ibm_montreal();
        let layout = choose_layout(&qc, &dev, LayoutStrategy::Trivial).unwrap();
        assert_eq!(layout, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn noise_adaptive_layout_is_valid_permutation_prefix() {
        let qc = star_circuit(10);
        let dev = Device::ibm_montreal();
        let layout = choose_layout(&qc, &dev, LayoutStrategy::NoiseAdaptive).unwrap();
        assert_eq!(layout.len(), 10);
        let unique: std::collections::BTreeSet<usize> = layout.iter().copied().collect();
        assert_eq!(unique.len(), 10, "physical targets must be distinct");
        assert!(layout.iter().all(|&p| p < 27));
    }

    #[test]
    fn hotspot_gets_a_high_degree_physical_qubit() {
        let qc = star_circuit(6);
        let dev = Device::ideal("ideal-grid", Topology::grid(4, 4).unwrap());
        let layout = choose_layout(&qc, &dev, LayoutStrategy::NoiseAdaptive).unwrap();
        let topo = dev.topology();
        let hotspot_degree = topo.neighbors(layout[0]).len();
        // Logical qubit 0 interacts with everyone; it must sit on a
        // physical qubit with at least as many couplers as any other choice
        // in the region.
        for &p in &layout[1..] {
            assert!(hotspot_degree >= topo.neighbors(p).len());
        }
    }

    #[test]
    fn rejects_oversized_circuits() {
        let qc = star_circuit(30);
        let dev = Device::ibm_montreal();
        assert!(matches!(
            choose_layout(&qc, &dev, LayoutStrategy::NoiseAdaptive),
            Err(TranspileError::CircuitTooWide { .. })
        ));
    }

    #[test]
    fn region_is_connected() {
        let qc = star_circuit(12);
        let dev = Device::ibm_montreal();
        let layout = choose_layout(&qc, &dev, LayoutStrategy::NoiseAdaptive).unwrap();
        // Check connectivity of the induced subgraph via BFS.
        let topo = dev.topology();
        let set: std::collections::BTreeSet<usize> = layout.iter().copied().collect();
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![layout[0]];
        seen.insert(layout[0]);
        while let Some(u) = stack.pop() {
            for &v in topo.neighbors(u) {
                if set.contains(&v) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        assert_eq!(seen.len(), set.len(), "layout region must be connected");
    }
}
