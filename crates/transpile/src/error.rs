//! Error type for topology construction and compilation.

use std::error::Error;
use std::fmt;

/// Errors produced by topology construction, layout, routing and
/// compilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TranspileError {
    /// A physical qubit index was out of range.
    QubitOutOfRange {
        /// The offending physical qubit.
        qubit: usize,
        /// The device's qubit count.
        num_qubits: usize,
    },
    /// The circuit needs more qubits than the device provides.
    CircuitTooWide {
        /// Logical qubits required.
        needed: usize,
        /// Physical qubits available.
        available: usize,
    },
    /// The topology (or a requested sub-region) is disconnected.
    Disconnected(String),
    /// The router could not make progress (indicates an internal bug or a
    /// disconnected coupling graph).
    RoutingStuck(String),
    /// Invalid construction parameters.
    InvalidParameters(String),
    /// A circuit-level error surfaced during compilation.
    Circuit(fq_circuit::CircuitError),
}

impl fmt::Display for TranspileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranspileError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "physical qubit {qubit} out of range for device with {num_qubits} qubits"
                )
            }
            TranspileError::CircuitTooWide { needed, available } => {
                write!(
                    f,
                    "circuit needs {needed} qubits but the device has {available}"
                )
            }
            TranspileError::Disconnected(msg) => write!(f, "disconnected topology: {msg}"),
            TranspileError::RoutingStuck(msg) => write!(f, "routing stuck: {msg}"),
            TranspileError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            TranspileError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl Error for TranspileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TranspileError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fq_circuit::CircuitError> for TranspileError {
    fn from(e: fq_circuit::CircuitError) -> Self {
        TranspileError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            TranspileError::QubitOutOfRange {
                qubit: 1,
                num_qubits: 1,
            },
            TranspileError::CircuitTooWide {
                needed: 5,
                available: 2,
            },
            TranspileError::Disconnected("x".into()),
            TranspileError::RoutingStuck("y".into()),
            TranspileError::InvalidParameters("z".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
