//! Canonical JSON document form of a [`Compiled`] artifact.
//!
//! Built on the same deterministic document model ([`serde::json`]) as
//! the job wire format: objects keep insertion order, the writer emits no
//! whitespace, and `f64`s print in Rust's shortest round-trip form — so
//! serializing, parsing and re-serializing a compiled artifact reproduces
//! the exact bytes, and a deserialized artifact is **equal** (including
//! every `f64` bit of every rotation scale and schedule time) to the
//! original. That bit-fidelity is what lets a compiled template travel
//! between processes — disk spill, shard-to-shard HTTP warm transfer —
//! and still instantiate branches byte-identically to the process that
//! compiled it.
//!
//! Gates and angles use compact tagged arrays (`["cx",0,1]`,
//! `["g",layer,scale,term]`) rather than objects: a routed circuit is by
//! far the largest part of an artifact, and the tag-first form keeps the
//! documents small without sacrificing self-description.

use fq_circuit::{Angle, CircuitStats, Gate, QuantumCircuit};
use serde::json::{JsonError, Value};

use crate::{Compiled, Schedule};

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn idx(x: usize) -> Value {
    Value::UInt(x as u64)
}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

fn angle_to_value(angle: Angle) -> Value {
    match angle {
        Angle::Constant(v) => Value::Array(vec![Value::string("c"), num(v)]),
        Angle::Gamma { layer, scale, term } => {
            Value::Array(vec![Value::string("g"), idx(layer), num(scale), idx(term)])
        }
        Angle::Beta { layer, scale } => {
            Value::Array(vec![Value::string("b"), idx(layer), num(scale)])
        }
    }
}

fn angle_from_value(v: &Value) -> Result<Angle, JsonError> {
    let parts = v.as_array()?;
    let tag = parts
        .first()
        .ok_or_else(|| JsonError("empty angle".into()))?
        .as_str()?;
    match (tag, parts.len()) {
        ("c", 2) => Ok(Angle::Constant(parts[1].as_f64()?)),
        ("g", 4) => Ok(Angle::Gamma {
            layer: parts[1].as_usize()?,
            scale: parts[2].as_f64()?,
            term: parts[3].as_usize()?,
        }),
        ("b", 3) => Ok(Angle::Beta {
            layer: parts[1].as_usize()?,
            scale: parts[2].as_f64()?,
        }),
        _ => err(format!("unknown angle form `{tag}`/{}", parts.len())),
    }
}

fn gate_to_value(gate: &Gate) -> Value {
    match *gate {
        Gate::H { q } => Value::Array(vec![Value::string("h"), idx(q)]),
        Gate::X { q } => Value::Array(vec![Value::string("x"), idx(q)]),
        Gate::Rz { q, theta } => {
            Value::Array(vec![Value::string("rz"), idx(q), angle_to_value(theta)])
        }
        Gate::Rx { q, theta } => {
            Value::Array(vec![Value::string("rx"), idx(q), angle_to_value(theta)])
        }
        Gate::Cx { control, target } => {
            Value::Array(vec![Value::string("cx"), idx(control), idx(target)])
        }
        Gate::Swap { a, b } => Value::Array(vec![Value::string("sw"), idx(a), idx(b)]),
        Gate::Measure { q } => Value::Array(vec![Value::string("m"), idx(q)]),
    }
}

fn gate_from_value(v: &Value) -> Result<Gate, JsonError> {
    let parts = v.as_array()?;
    let tag = parts
        .first()
        .ok_or_else(|| JsonError("empty gate".into()))?
        .as_str()?;
    match (tag, parts.len()) {
        ("h", 2) => Ok(Gate::H {
            q: parts[1].as_usize()?,
        }),
        ("x", 2) => Ok(Gate::X {
            q: parts[1].as_usize()?,
        }),
        ("rz", 3) => Ok(Gate::Rz {
            q: parts[1].as_usize()?,
            theta: angle_from_value(&parts[2])?,
        }),
        ("rx", 3) => Ok(Gate::Rx {
            q: parts[1].as_usize()?,
            theta: angle_from_value(&parts[2])?,
        }),
        ("cx", 3) => Ok(Gate::Cx {
            control: parts[1].as_usize()?,
            target: parts[2].as_usize()?,
        }),
        ("sw", 3) => Ok(Gate::Swap {
            a: parts[1].as_usize()?,
            b: parts[2].as_usize()?,
        }),
        ("m", 2) => Ok(Gate::Measure {
            q: parts[1].as_usize()?,
        }),
        _ => err(format!("unknown gate form `{tag}`/{}", parts.len())),
    }
}

fn circuit_to_value(circuit: &QuantumCircuit) -> Value {
    Value::object(vec![
        ("num_qubits", idx(circuit.num_qubits())),
        (
            "gates",
            Value::Array(circuit.gates().iter().map(gate_to_value).collect()),
        ),
    ])
}

fn circuit_from_value(v: &Value) -> Result<QuantumCircuit, JsonError> {
    let mut circuit = QuantumCircuit::new(v.field("num_qubits")?.as_usize()?);
    for item in v.field("gates")?.as_array()? {
        let gate = gate_from_value(item)?;
        circuit
            .push(gate)
            .map_err(|e| JsonError(format!("invalid gate in document: {e}")))?;
    }
    Ok(circuit)
}

fn indices_to_value(indices: &[usize]) -> Value {
    Value::Array(indices.iter().map(|&i| idx(i)).collect())
}

fn indices_from_value(v: &Value) -> Result<Vec<usize>, JsonError> {
    v.as_array()?.iter().map(Value::as_usize).collect()
}

fn f64s_to_value(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&x| num(x)).collect())
}

fn f64s_from_value(v: &Value) -> Result<Vec<f64>, JsonError> {
    v.as_array()?.iter().map(Value::as_f64).collect()
}

fn stats_to_value(stats: &CircuitStats) -> Value {
    Value::object(vec![
        ("num_qubits", idx(stats.num_qubits)),
        ("total_gates", idx(stats.total_gates)),
        ("cnot_count", idx(stats.cnot_count)),
        ("swap_count", idx(stats.swap_count)),
        ("single_qubit_count", idx(stats.single_qubit_count)),
        ("measure_count", idx(stats.measure_count)),
        ("depth", idx(stats.depth)),
    ])
}

fn stats_from_value(v: &Value) -> Result<CircuitStats, JsonError> {
    Ok(CircuitStats {
        num_qubits: v.field("num_qubits")?.as_usize()?,
        total_gates: v.field("total_gates")?.as_usize()?,
        cnot_count: v.field("cnot_count")?.as_usize()?,
        swap_count: v.field("swap_count")?.as_usize()?,
        single_qubit_count: v.field("single_qubit_count")?.as_usize()?,
        measure_count: v.field("measure_count")?.as_usize()?,
        depth: v.field("depth")?.as_usize()?,
    })
}

fn schedule_to_value(schedule: &Schedule) -> Value {
    Value::object(vec![
        ("start_ns", f64s_to_value(&schedule.start_ns)),
        ("duration_ns", num(schedule.duration_ns)),
        ("busy_ns", f64s_to_value(&schedule.busy_ns)),
    ])
}

fn schedule_from_value(v: &Value) -> Result<Schedule, JsonError> {
    Ok(Schedule {
        start_ns: f64s_from_value(v.field("start_ns")?)?,
        duration_ns: v.field("duration_ns")?.as_f64()?,
        busy_ns: f64s_from_value(v.field("busy_ns")?)?,
    })
}

/// Serializes a [`Compiled`] artifact to the canonical document form.
#[must_use]
pub fn compiled_to_value(compiled: &Compiled) -> Value {
    Value::object(vec![
        ("circuit", circuit_to_value(&compiled.circuit)),
        ("initial_layout", indices_to_value(&compiled.initial_layout)),
        ("final_layout", indices_to_value(&compiled.final_layout)),
        ("swap_count", idx(compiled.swap_count)),
        ("stats", stats_to_value(&compiled.stats)),
        ("schedule", schedule_to_value(&compiled.schedule)),
        ("logical_qubits", idx(compiled.logical_qubits)),
    ])
}

/// Parses a [`Compiled`] artifact from its canonical document form.
///
/// # Errors
///
/// Returns [`JsonError`] for missing fields, malformed gates/angles, or
/// a circuit that fails gate validation (out-of-range operands).
pub fn compiled_from_value(v: &Value) -> Result<Compiled, JsonError> {
    Ok(Compiled {
        circuit: circuit_from_value(v.field("circuit")?)?,
        initial_layout: indices_from_value(v.field("initial_layout")?)?,
        final_layout: indices_from_value(v.field("final_layout")?)?,
        swap_count: v.field("swap_count")?.as_usize()?,
        stats: stats_from_value(v.field("stats")?)?,
        schedule: schedule_from_value(v.field("schedule")?)?,
        logical_qubits: v.field("logical_qubits")?.as_usize()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions, Device, LayoutStrategy};
    use fq_circuit::build_qaoa_template;
    use fq_ising::IsingModel;

    fn star_template(n: usize) -> QuantumCircuit {
        let mut m = IsingModel::new(n);
        for i in 1..n {
            m.set_coupling(0, i, if i % 2 == 0 { 1.0 } else { -0.75 })
                .unwrap();
        }
        m.set_linear(1, 0.5).unwrap();
        build_qaoa_template(&m, 1).unwrap()
    }

    #[test]
    fn compiled_round_trips_exactly() {
        for layout in [LayoutStrategy::Trivial, LayoutStrategy::NoiseAdaptive] {
            for optimize in [false, true] {
                let options = CompileOptions { layout, optimize };
                let compiled =
                    compile(&star_template(7), &Device::ibm_montreal(), options).unwrap();
                let text = compiled_to_value(&compiled).to_json();
                let back = compiled_from_value(&Value::parse(&text).unwrap()).unwrap();
                assert_eq!(back, compiled, "{options:?}");
                // Canonical writer: re-serializing reproduces the bytes.
                assert_eq!(compiled_to_value(&back).to_json(), text);
            }
        }
    }

    #[test]
    fn malformed_documents_error_instead_of_panicking() {
        let compiled = compile(
            &star_template(5),
            &Device::ibm_montreal(),
            CompileOptions::level3(),
        )
        .unwrap();
        let good = compiled_to_value(&compiled).to_json();
        for (from, to) in [
            ("\"cx\"", "\"zz\""),
            ("\"gates\"", "\"fates\""),
            ("\"schedule\"", "\"sched\""),
        ] {
            let bad = good.replacen(from, to, 1);
            let parsed = Value::parse(&bad).unwrap();
            assert!(compiled_from_value(&parsed).is_err(), "`{to}` must fail");
        }
        // Out-of-range gate operands fail circuit validation, not a panic.
        let truncated = good.replace("\"num_qubits\":27", "\"num_qubits\":1");
        let parsed = Value::parse(&truncated).unwrap();
        assert!(compiled_from_value(&parsed).is_err());
    }
}
