//! SWAP routing: a deterministic SABRE-style heuristic router.
//!
//! NISQ devices only couple neighbouring qubits, so the compiler inserts
//! SWAPs (3 CNOTs each) to bring interacting qubits together — the
//! dominant source of the post-compilation CNOT blow-up of Fig. 3 and of
//! the SWAP-reduction wins of Fig. 14. The router below follows the SABRE
//! recipe used by IBM's optimization level 3: execute every gate whose
//! operands are adjacent, and otherwise greedily apply the SWAP that most
//! reduces the distance of the *front layer*, with a look-ahead window and
//! a decay term that discourages ping-ponging a single qubit.

use fq_circuit::{Gate, QuantumCircuit};

use crate::{Topology, TranspileError};

/// How many upcoming two-qubit gates the look-ahead window considers.
const EXTENDED_SET_SIZE: usize = 20;
/// Relative weight of the look-ahead window in the SWAP score.
const EXTENDED_WEIGHT: f64 = 0.5;
/// Multiplicative decay penalty applied to recently swapped qubits.
const DECAY_STEP: f64 = 0.001;

/// The result of routing a logical circuit onto a topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Routed {
    /// The physical circuit (width = device qubits) including SWAPs.
    /// Measurements appear at the end, one per logical qubit, in logical
    /// order, on each qubit's final physical position.
    pub circuit: QuantumCircuit,
    /// `final_layout[logical] = physical` after all SWAPs.
    pub final_layout: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Routes `circuit` onto `topology` starting from
/// `initial_layout[logical] = physical`.
///
/// The algorithm is deterministic: ties are broken by canonical edge
/// order, so compilations are exactly reproducible.
///
/// # Errors
///
/// Returns [`TranspileError::CircuitTooWide`] if the layout is shorter
/// than the circuit width, [`TranspileError::QubitOutOfRange`] for layout
/// entries beyond the device, [`TranspileError::InvalidParameters`] for a
/// non-injective layout, and [`TranspileError::RoutingStuck`] if no
/// progress is possible (cannot happen on a connected topology).
///
/// # Example
///
/// ```
/// use fq_circuit::QuantumCircuit;
/// use fq_transpile::{route, Topology};
///
/// // CNOT between the two ends of a 3-qubit chain forces a SWAP.
/// let mut qc = QuantumCircuit::new(3);
/// qc.cx(0, 2)?;
/// let topo = Topology::linear(3)?;
/// let routed = route(&qc, &topo, &[0, 1, 2])?;
/// assert_eq!(routed.swap_count, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn route(
    circuit: &QuantumCircuit,
    topology: &Topology,
    initial_layout: &[usize],
) -> Result<Routed, TranspileError> {
    let n = circuit.num_qubits();
    let p_count = topology.num_qubits();
    if initial_layout.len() < n {
        return Err(TranspileError::CircuitTooWide {
            needed: n,
            available: initial_layout.len(),
        });
    }
    let mut p2l: Vec<Option<usize>> = vec![None; p_count];
    let mut l2p = vec![0usize; n];
    for (l, &p) in initial_layout.iter().take(n).enumerate() {
        if p >= p_count {
            return Err(TranspileError::QubitOutOfRange {
                qubit: p,
                num_qubits: p_count,
            });
        }
        if p2l[p].is_some() {
            return Err(TranspileError::InvalidParameters(format!(
                "layout maps two logical qubits to physical {p}"
            )));
        }
        p2l[p] = Some(l);
        l2p[l] = p;
    }

    // The routable gate list excludes measurements; they are re-emitted at
    // the end on final positions so no SWAP can follow a measurement.
    let body: Vec<Gate> = circuit
        .gates()
        .iter()
        .copied()
        .filter(|g| !matches!(g, Gate::Measure { .. }))
        .collect();

    // Per-qubit gate queues: gate g is ready when it is at the head of the
    // queue of every qubit it touches.
    let mut qubit_gates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, g) in body.iter().enumerate() {
        for q in g.qubits() {
            qubit_gates[q].push(gi);
        }
    }
    let mut head = vec![0usize; n];
    let mut done = vec![false; body.len()];
    let mut remaining = body.len();

    let mut out = QuantumCircuit::new(p_count);
    let mut decay = vec![1.0f64; p_count];
    let mut swap_count = 0usize;

    let is_ready = |gi: usize, body: &[Gate], head: &[usize], qubit_gates: &[Vec<usize>]| {
        body[gi]
            .qubits()
            .iter()
            .all(|&q| qubit_gates[q].get(head[q]) == Some(&gi))
    };

    let budget = 20 * body.len().max(1) * (p_count.max(4));
    let mut steps = 0usize;
    while remaining > 0 {
        steps += 1;
        if steps > budget {
            return Err(TranspileError::RoutingStuck(format!(
                "exceeded {budget} routing steps with {remaining} gates left"
            )));
        }

        // Phase 1: drain every executable gate.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for q in 0..n {
                while let Some(&gi) = qubit_gates[q].get(head[q]) {
                    if !is_ready(gi, &body, &head, &qubit_gates) {
                        break;
                    }
                    let g = body[gi];
                    let executable = match g {
                        Gate::Cx { control, target } => {
                            topology.are_adjacent(l2p[control], l2p[target])
                        }
                        Gate::Swap { a, b } => topology.are_adjacent(l2p[a], l2p[b]),
                        _ => true,
                    };
                    if !executable {
                        break;
                    }
                    // Semantic gates (including program-level Swaps) never
                    // change the mapping; only router-inserted SWAPs do.
                    out.push(g.map_qubits(|lq| l2p[lq]))
                        .map_err(TranspileError::Circuit)?;
                    for gq in g.qubits() {
                        head[gq] += 1;
                    }
                    done[gi] = true;
                    remaining -= 1;
                    progressed = true;
                    decay.fill(1.0);
                }
            }
        }
        if remaining == 0 {
            break;
        }

        // Phase 2: the front layer is blocked; pick the best SWAP.
        let mut front: Vec<(usize, usize)> = Vec::new();
        for q in 0..n {
            if let Some(&gi) = qubit_gates[q].get(head[q]) {
                if is_ready(gi, &body, &head, &qubit_gates) {
                    if let Gate::Cx { control, target } = body[gi] {
                        let pair = (control.min(target), control.max(target));
                        if !front.contains(&pair) {
                            front.push(pair);
                        }
                    }
                }
            }
        }
        if front.is_empty() {
            return Err(TranspileError::RoutingStuck(
                "no ready two-qubit gate while gates remain".into(),
            ));
        }

        // Extended (look-ahead) set: the next two-qubit gates in program
        // order that are not already in the front.
        let mut extended: Vec<(usize, usize)> = Vec::new();
        for (gi, g) in body.iter().enumerate() {
            if extended.len() >= EXTENDED_SET_SIZE {
                break;
            }
            if let Gate::Cx { control, target } = *g {
                if done[gi] {
                    continue;
                }
                let pair = (control.min(target), control.max(target));
                if !front.contains(&pair) {
                    extended.push(pair);
                }
            }
        }

        // Candidates: swaps on couplers incident to a front-gate qubit.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &front {
            for &lq in &[a, b] {
                let p = l2p[lq];
                for &p2 in topology.neighbors(p) {
                    let key = (p.min(p2), p.max(p2));
                    if !candidates.contains(&key) {
                        candidates.push(key);
                    }
                }
            }
        }
        candidates.sort_unstable();

        let score_layout = |l2p_try: &[usize]| -> f64 {
            let front_cost: f64 = front
                .iter()
                .map(|&(a, b)| topology.distance(l2p_try[a], l2p_try[b]) as f64)
                .sum::<f64>()
                / front.len() as f64;
            let ext_cost: f64 = if extended.is_empty() {
                0.0
            } else {
                extended
                    .iter()
                    .map(|&(a, b)| topology.distance(l2p_try[a], l2p_try[b]) as f64)
                    .sum::<f64>()
                    / extended.len() as f64
            };
            front_cost + EXTENDED_WEIGHT * ext_cost
        };

        let mut best: Option<((usize, usize), f64)> = None;
        for &(p, p2) in &candidates {
            let mut l2p_try = l2p.clone();
            if let Some(l) = p2l[p] {
                l2p_try[l] = p2;
            }
            if let Some(l) = p2l[p2] {
                l2p_try[l] = p;
            }
            let s = score_layout(&l2p_try) * decay[p].max(decay[p2]);
            if best.is_none_or(|(_, bs)| s < bs) {
                best = Some(((p, p2), s));
            }
        }
        let ((p, p2), _) = best.expect("candidates is non-empty");
        out.swap(p, p2).map_err(TranspileError::Circuit)?;
        apply_swap(&mut l2p, &mut p2l, p, p2);
        decay[p] += DECAY_STEP;
        decay[p2] += DECAY_STEP;
        swap_count += 1;
    }

    // Emit measurements on final positions, in logical order.
    let measured: Vec<usize> = circuit
        .gates()
        .iter()
        .filter_map(|g| match g {
            Gate::Measure { q } => Some(*q),
            _ => None,
        })
        .collect();
    for lq in measured {
        out.measure(l2p[lq]).map_err(TranspileError::Circuit)?;
    }

    Ok(Routed {
        circuit: out,
        final_layout: l2p,
        swap_count,
    })
}

fn apply_swap(l2p: &mut [usize], p2l: &mut [Option<usize>], p: usize, p2: usize) {
    let la = p2l[p];
    let lb = p2l[p2];
    p2l[p] = lb;
    p2l[p2] = la;
    if let Some(l) = la {
        l2p[l] = p2;
    }
    if let Some(l) = lb {
        l2p[l] = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::Angle;

    /// After routing, every two-qubit gate must touch adjacent physical
    /// qubits.
    fn assert_routed_valid(routed: &Routed, topo: &Topology) {
        for g in routed.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(topo.are_adjacent(qs[0], qs[1]), "gate {g} not on a coupler");
            }
        }
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let topo = Topology::linear(3).unwrap();
        let routed = route(&qc, &topo, &[0, 1, 2]).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.final_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_gate_inserts_swaps_and_tracks_layout() {
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3).unwrap();
        qc.measure_all();
        let topo = Topology::linear(4).unwrap();
        let routed = route(&qc, &topo, &[0, 1, 2, 3]).unwrap();
        assert!(routed.swap_count >= 1);
        assert_routed_valid(&routed, &topo);
        // Measurements: 4 of them, on distinct physical qubits.
        let measures: Vec<usize> = routed
            .circuit
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Measure { q } => Some(*q),
                _ => None,
            })
            .collect();
        assert_eq!(measures.len(), 4);
        let set: std::collections::BTreeSet<usize> = measures.iter().copied().collect();
        assert_eq!(set.len(), 4);
        // Measure order is logical order: measure k reads logical qubit k.
        assert_eq!(measures, routed.final_layout);
    }

    #[test]
    fn routes_fully_connected_interaction_on_a_line() {
        // All-to-all CNOTs on a 5-qubit chain: heavy swapping, must stay valid.
        let mut qc = QuantumCircuit::new(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                qc.cx(i, j).unwrap();
            }
        }
        let topo = Topology::linear(5).unwrap();
        let routed = route(&qc, &topo, &[0, 1, 2, 3, 4]).unwrap();
        assert_routed_valid(&routed, &topo);
        let cx_in = 10;
        let cx_out = routed
            .circuit
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Cx { .. }))
            .count();
        assert_eq!(cx_in, cx_out, "no CNOT may be lost or duplicated");
    }

    #[test]
    fn preserves_single_qubit_gates_and_angles() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.rz(
            2,
            Angle::Gamma {
                layer: 0,
                scale: 2.0,
                term: 9,
            },
        )
        .unwrap();
        qc.cx(0, 2).unwrap();
        let topo = Topology::linear(3).unwrap();
        let routed = route(&qc, &topo, &[0, 1, 2]).unwrap();
        let rz = routed
            .circuit
            .gates()
            .iter()
            .find_map(|g| match g {
                Gate::Rz { theta, .. } => Some(*theta),
                _ => None,
            })
            .expect("rz survived");
        assert_eq!(
            rz,
            Angle::Gamma {
                layer: 0,
                scale: 2.0,
                term: 9
            }
        );
    }

    #[test]
    fn respects_gate_dependencies() {
        // cx(0,1) must commit before cx(1,2) since they share qubit 1.
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let topo = Topology::linear(3).unwrap();
        let routed = route(&qc, &topo, &[2, 1, 0]).unwrap();
        assert_routed_valid(&routed, &topo);
        let cx_pairs: Vec<(usize, usize)> = routed
            .circuit
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cx { control, target } => Some((*control, *target)),
                _ => None,
            })
            .collect();
        assert_eq!(cx_pairs.len(), 2);
    }

    #[test]
    fn rejects_bad_layouts() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        let topo = Topology::linear(3).unwrap();
        assert!(route(&qc, &topo, &[0]).is_err());
        assert!(route(&qc, &topo, &[0, 0]).is_err());
        assert!(route(&qc, &topo, &[0, 9]).is_err());
    }

    #[test]
    fn routing_on_heavy_hex_is_valid() {
        let mut qc = QuantumCircuit::new(8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                if (i + j) % 3 == 0 {
                    qc.cx(i, j).unwrap();
                }
            }
        }
        qc.measure_all();
        let topo = Topology::falcon_27();
        let routed = route(&qc, &topo, &[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_routed_valid(&routed, &topo);
    }
}
