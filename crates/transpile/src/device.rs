//! Device models: topology plus calibration data.
//!
//! The paper evaluates on eight IBMQ systems (§4.2). Real calibration data
//! changes daily and is not redistributable, so each preset carries
//! *synthetic* calibration sampled (seeded, hence reproducible) around the
//! published scale for that machine class: ~1% CNOT error and ~400 ns CNOT
//! latency (§1, §2.2), per-machine quality factors chosen so the
//! cross-machine spread of Fig. 13 is preserved.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Topology, TranspileError};

/// Gate and measurement durations in nanoseconds.
///
/// `Rz` is a virtual (frame-change) gate on IBM hardware: zero duration and
/// zero error (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GateDurations {
    /// Single-qubit gate duration (H, X, Rx).
    pub single_ns: f64,
    /// Two-qubit CNOT duration.
    pub cx_ns: f64,
    /// Measurement duration.
    pub readout_ns: f64,
}

impl Default for GateDurations {
    fn default() -> Self {
        // Paper §2.2: CNOTs take ~400 ns, ~10x slower than 1q gates.
        GateDurations {
            single_ns: 40.0,
            cx_ns: 400.0,
            readout_ns: 3_500.0,
        }
    }
}

/// A NISQ device: coupling topology plus per-element calibration.
///
/// # Example
///
/// ```
/// use fq_transpile::Device;
///
/// let dev = Device::ibm_montreal();
/// assert_eq!(dev.num_qubits(), 27);
/// let (a, b) = dev.topology().edges()[0];
/// let err = dev.cnot_error(a, b);
/// assert!(err > 0.0 && err < 0.1);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Device {
    name: String,
    topology: Topology,
    cnot_error: Vec<f64>,
    readout_error: Vec<f64>,
    t1_us: Vec<f64>,
    t2_us: Vec<f64>,
    durations: GateDurations,
}

impl Device {
    /// Builds a device with uniform calibration values.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidParameters`] for error rates
    /// outside `[0, 1)` or non-positive coherence times.
    pub fn uniform(
        name: impl Into<String>,
        topology: Topology,
        cnot_error: f64,
        readout_error: f64,
        t1_us: f64,
        durations: GateDurations,
    ) -> Result<Device, TranspileError> {
        if !(0.0..1.0).contains(&cnot_error) || !(0.0..1.0).contains(&readout_error) {
            return Err(TranspileError::InvalidParameters(
                "error rates must lie in [0, 1)".into(),
            ));
        }
        if t1_us <= 0.0 {
            return Err(TranspileError::InvalidParameters(
                "t1 must be positive".into(),
            ));
        }
        let n = topology.num_qubits();
        let m = topology.edges().len();
        Ok(Device {
            name: name.into(),
            topology,
            cnot_error: vec![cnot_error; m],
            readout_error: vec![readout_error; n],
            t1_us: vec![t1_us; n],
            t2_us: vec![t1_us; n],
            durations,
        })
    }

    /// An error-free device on the given topology (for `EV_ideal`).
    #[must_use]
    pub fn ideal(name: impl Into<String>, topology: Topology) -> Device {
        let n = topology.num_qubits();
        let m = topology.edges().len();
        Device {
            name: name.into(),
            topology,
            cnot_error: vec![0.0; m],
            readout_error: vec![0.0; n],
            t1_us: vec![f64::INFINITY; n],
            t2_us: vec![f64::INFINITY; n],
            durations: GateDurations::default(),
        }
    }

    /// Builds a device with calibration values scattered log-normally
    /// around the given means (seeded).
    fn calibrated(
        name: &str,
        topology: Topology,
        mean_cx_err: f64,
        mean_ro_err: f64,
        mean_t1_us: f64,
        seed: u64,
    ) -> Device {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = topology.num_qubits();
        let m = topology.edges().len();
        // Log-normal-ish scatter: mean · exp(σ·u), u uniform in [−1, 1].
        let scatter = |mean: f64, sigma: f64, rng: &mut StdRng| -> f64 {
            mean * (sigma * (2.0 * rng.random::<f64>() - 1.0)).exp()
        };
        let cnot_error = (0..m)
            .map(|_| scatter(mean_cx_err, 0.6, &mut rng).min(0.5))
            .collect();
        let readout_error = (0..n)
            .map(|_| scatter(mean_ro_err, 0.5, &mut rng).min(0.5))
            .collect();
        let t1_us: Vec<f64> = (0..n).map(|_| scatter(mean_t1_us, 0.3, &mut rng)).collect();
        let t2_us = t1_us.iter().map(|&t| 0.8 * t).collect();
        Device {
            name: name.into(),
            topology,
            cnot_error,
            readout_error,
            t1_us,
            t2_us,
            durations: GateDurations::default(),
        }
    }

    /// IBM Montreal (27-qubit Falcon) — the primary machine of Figs. 7–11.
    #[must_use]
    pub fn ibm_montreal() -> Device {
        Device::calibrated(
            "ibmq_montreal",
            Topology::falcon_27(),
            0.009,
            0.020,
            110.0,
            1,
        )
    }

    /// IBM Toronto (27-qubit Falcon).
    #[must_use]
    pub fn ibm_toronto() -> Device {
        Device::calibrated("ibmq_toronto", Topology::falcon_27(), 0.012, 0.035, 90.0, 2)
    }

    /// IBM Mumbai (27-qubit Falcon).
    #[must_use]
    pub fn ibm_mumbai() -> Device {
        Device::calibrated("ibmq_mumbai", Topology::falcon_27(), 0.010, 0.025, 105.0, 3)
    }

    /// IBM Auckland (27-qubit Falcon) — the machine of the Fig. 12
    /// landscape study.
    #[must_use]
    pub fn ibm_auckland() -> Device {
        Device::calibrated(
            "ibm_auckland",
            Topology::falcon_27(),
            0.008,
            0.016,
            130.0,
            4,
        )
    }

    /// IBM Hanoi (27-qubit Falcon).
    #[must_use]
    pub fn ibm_hanoi() -> Device {
        Device::calibrated("ibm_hanoi", Topology::falcon_27(), 0.0085, 0.018, 120.0, 5)
    }

    /// IBM Cairo (27-qubit Falcon).
    #[must_use]
    pub fn ibm_cairo() -> Device {
        Device::calibrated("ibm_cairo", Topology::falcon_27(), 0.0095, 0.022, 100.0, 6)
    }

    /// IBM Brooklyn (65-qubit Hummingbird).
    #[must_use]
    pub fn ibm_brooklyn() -> Device {
        Device::calibrated(
            "ibmq_brooklyn",
            Topology::hummingbird_65(),
            0.014,
            0.040,
            75.0,
            7,
        )
    }

    /// IBM Washington (127-qubit Eagle).
    #[must_use]
    pub fn ibm_washington() -> Device {
        Device::calibrated(
            "ibm_washington",
            Topology::eagle_127(),
            0.013,
            0.030,
            95.0,
            8,
        )
    }

    /// All eight machines of the Fig. 13 cross-machine study, in the
    /// paper's order.
    #[must_use]
    pub fn all_ibm_machines() -> Vec<Device> {
        vec![
            Device::ibm_montreal(),
            Device::ibm_toronto(),
            Device::ibm_mumbai(),
            Device::ibm_auckland(),
            Device::ibm_hanoi(),
            Device::ibm_cairo(),
            Device::ibm_brooklyn(),
            Device::ibm_washington(),
        ]
    }

    /// The optimistic-error 50×50 grid of the practical-scale study
    /// (§6.3): 0.1% CNOT error, 0.5% readout error, 500 µs decoherence.
    ///
    /// # Panics
    ///
    /// Never panics; parameters are statically valid.
    #[must_use]
    pub fn grid_2500() -> Device {
        Device::uniform(
            "grid-50x50",
            Topology::grid(50, 50).expect("static grid is valid"),
            0.001,
            0.005,
            500.0,
            GateDurations::default(),
        )
        .expect("static parameters are valid")
    }

    /// Device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }

    /// CNOT error rate on the coupler between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `{a, b}` is not a coupler of this device.
    #[must_use]
    pub fn cnot_error(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        let idx = self
            .topology
            .edges()
            .iter()
            .position(|&e| e == key)
            .unwrap_or_else(|| panic!("({a}, {b}) is not a coupler of {}", self.name));
        self.cnot_error[idx]
    }

    /// Readout error of physical qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// Relaxation time `T1` of physical qubit `q` in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn t1_us(&self, q: usize) -> f64 {
        self.t1_us[q]
    }

    /// Dephasing time `T2` of physical qubit `q` in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn t2_us(&self, q: usize) -> f64 {
        self.t2_us[q]
    }

    /// Gate durations.
    #[must_use]
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Mean CNOT error over all couplers.
    #[must_use]
    pub fn mean_cnot_error(&self) -> f64 {
        if self.cnot_error.is_empty() {
            0.0
        } else {
            self.cnot_error.iter().sum::<f64>() / self.cnot_error.len() as f64
        }
    }

    /// A per-edge quality score in `(0, 1]`: `1 − cnot_error`, used by the
    /// noise-adaptive layout.
    #[must_use]
    pub fn edge_fidelity(&self, a: usize, b: usize) -> f64 {
        1.0 - self.cnot_error(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_sizes() {
        assert_eq!(Device::ibm_montreal().num_qubits(), 27);
        assert_eq!(Device::ibm_brooklyn().num_qubits(), 65);
        assert_eq!(Device::ibm_washington().num_qubits(), 127);
        assert_eq!(Device::grid_2500().num_qubits(), 2500);
        assert_eq!(Device::all_ibm_machines().len(), 8);
    }

    #[test]
    fn calibration_is_reproducible() {
        let a = Device::ibm_montreal();
        let b = Device::ibm_montreal();
        assert_eq!(a, b);
    }

    #[test]
    fn calibration_scales_follow_the_machine_class() {
        let auckland = Device::ibm_auckland();
        let brooklyn = Device::ibm_brooklyn();
        assert!(auckland.mean_cnot_error() < brooklyn.mean_cnot_error());
        for dev in Device::all_ibm_machines() {
            assert!(dev.mean_cnot_error() > 0.001 && dev.mean_cnot_error() < 0.1);
        }
    }

    #[test]
    fn ideal_device_is_error_free() {
        let dev = Device::ideal("ideal", Topology::linear(4).unwrap());
        let (a, b) = dev.topology().edges()[0];
        assert_eq!(dev.cnot_error(a, b), 0.0);
        assert_eq!(dev.readout_error(0), 0.0);
        assert!(dev.t1_us(0).is_infinite());
    }

    #[test]
    fn uniform_validates_ranges() {
        let topo = Topology::linear(2).unwrap();
        assert!(
            Device::uniform("x", topo.clone(), 1.5, 0.0, 1.0, GateDurations::default()).is_err()
        );
        assert!(
            Device::uniform("x", topo.clone(), 0.01, 0.0, -1.0, GateDurations::default()).is_err()
        );
        assert!(Device::uniform("x", topo, 0.01, 0.005, 100.0, GateDurations::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "is not a coupler")]
    fn cnot_error_panics_off_coupler() {
        let dev = Device::ibm_montreal();
        let _ = dev.cnot_error(0, 26);
    }
}
