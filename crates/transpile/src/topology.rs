//! Device coupling graphs: linear, grid and IBM heavy-hex families.

use serde::{Deserialize, Serialize};

use crate::TranspileError;

/// The exact coupling map of IBM's 27-qubit Falcon processors
/// (Montreal, Toronto, Mumbai, Auckland, Hanoi, Cairo).
pub const FALCON_27_EDGES: [(usize, usize); 28] = [
    (0, 1),
    (1, 2),
    (1, 4),
    (2, 3),
    (3, 5),
    (4, 7),
    (5, 8),
    (6, 7),
    (7, 10),
    (8, 9),
    (8, 11),
    (10, 12),
    (11, 14),
    (12, 13),
    (12, 15),
    (13, 14),
    (14, 16),
    (15, 18),
    (16, 19),
    (17, 18),
    (18, 21),
    (19, 20),
    (19, 22),
    (21, 23),
    (22, 25),
    (23, 24),
    (24, 25),
    (25, 26),
];

/// An undirected coupling graph over physical qubits, with precomputed
/// all-pairs shortest-path distances (the routing heuristic's oracle).
///
/// # Example
///
/// ```
/// use fq_transpile::Topology;
///
/// let t = Topology::grid(3, 3)?;
/// assert_eq!(t.num_qubits(), 9);
/// assert_eq!(t.distance(0, 8), 4); // Manhattan distance on the grid
/// assert!(t.are_adjacent(0, 1));
/// # Ok::<(), fq_transpile::TranspileError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_qubits: usize,
    edges: Vec<(usize, usize)>,
    adjacency: Vec<Vec<usize>>,
    distance: Vec<Vec<u16>>,
}

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::QubitOutOfRange`] for out-of-range
    /// endpoints, [`TranspileError::InvalidParameters`] for self-loops, and
    /// [`TranspileError::Disconnected`] if the coupling graph is not
    /// connected (routing requires connectivity).
    pub fn from_edges(
        num_qubits: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Topology, TranspileError> {
        let mut adjacency = vec![Vec::new(); num_qubits];
        let mut canonical = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (a, b) in edges {
            for q in [a, b] {
                if q >= num_qubits {
                    return Err(TranspileError::QubitOutOfRange {
                        qubit: q,
                        num_qubits,
                    });
                }
            }
            if a == b {
                return Err(TranspileError::InvalidParameters(format!(
                    "self-loop on qubit {a}"
                )));
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                canonical.push(key);
                adjacency[key.0].push(key.1);
                adjacency[key.1].push(key.0);
            }
        }
        let distance = all_pairs_bfs(num_qubits, &adjacency)?;
        Ok(Topology {
            num_qubits,
            edges: canonical,
            adjacency,
            distance,
        })
    }

    /// A 1-D chain of `n` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidParameters`] when `n == 0`.
    pub fn linear(n: usize) -> Result<Topology, TranspileError> {
        if n == 0 {
            return Err(TranspileError::InvalidParameters(
                "linear topology needs qubits".into(),
            ));
        }
        Topology::from_edges(n, (1..n).map(|i| (i - 1, i)))
    }

    /// A `rows × cols` rectangular grid — the architecture of Fig. 3 and of
    /// the 50×50 practical-scale study (§6).
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidParameters`] for an empty grid.
    pub fn grid(rows: usize, cols: usize) -> Result<Topology, TranspileError> {
        if rows == 0 || cols == 0 {
            return Err(TranspileError::InvalidParameters(
                "grid needs positive dimensions".into(),
            ));
        }
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Topology::from_edges(rows * cols, edges)
    }

    /// The 27-qubit IBM Falcon heavy-hex coupling map.
    #[must_use]
    pub fn falcon_27() -> Topology {
        Topology::from_edges(27, FALCON_27_EDGES).expect("static map is valid")
    }

    /// A heavy-hex-style lattice built from horizontal rows of qubits with
    /// dedicated bridge qubits between consecutive rows.
    ///
    /// Row `r` contributes `row_lengths[r]` qubits; between rows `r` and
    /// `r+1`, bridge qubits sit at columns `c ≡ 2·(r mod 2) (mod 4)` that
    /// exist in both rows. This reproduces the degree ≤ 3 sparse structure
    /// of IBM's Hummingbird/Eagle devices.
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::InvalidParameters`] for fewer than one row
    /// or rows shorter than 3, and [`TranspileError::Disconnected`] if a
    /// gap ends up with no bridges.
    pub fn heavy_hex_rows(row_lengths: &[usize]) -> Result<Topology, TranspileError> {
        if row_lengths.is_empty() || row_lengths.iter().any(|&l| l < 3) {
            return Err(TranspileError::InvalidParameters(
                "heavy-hex rows need length >= 3".into(),
            ));
        }
        let mut edges = Vec::new();
        let mut row_start = Vec::with_capacity(row_lengths.len());
        let mut next = 0usize;
        for &len in row_lengths {
            row_start.push(next);
            for c in 1..len {
                edges.push((next + c - 1, next + c));
            }
            next += len;
        }
        for r in 0..row_lengths.len() - 1 {
            let phase = 2 * (r % 2);
            let limit = row_lengths[r].min(row_lengths[r + 1]);
            for c in (phase..limit).step_by(4) {
                let bridge = next;
                next += 1;
                edges.push((row_start[r] + c, bridge));
                edges.push((bridge, row_start[r + 1] + c));
            }
        }
        Topology::from_edges(next, edges)
    }

    /// A 65-qubit heavy-hex lattice standing in for IBM Hummingbird
    /// (Brooklyn).
    #[must_use]
    pub fn hummingbird_65() -> Topology {
        // 4 rows of 14 = 56 qubits + gaps with 4/3/4 bridges = 67; trim the
        // last two bridge qubits of the middle gap to land exactly on 65
        // while staying connected.
        let full = Topology::heavy_hex_rows(&[14, 14, 14, 14]).expect("valid rows");
        full.without_qubits(&[full.num_qubits() - 1, full.num_qubits() - 2])
            .expect("trimming bridges keeps the lattice connected")
    }

    /// A 127-qubit heavy-hex lattice standing in for IBM Eagle
    /// (Washington).
    #[must_use]
    pub fn eagle_127() -> Topology {
        // 7 rows of 15 = 105 qubits + 6 gaps × 4 bridges = 129; trim two.
        let full = Topology::heavy_hex_rows(&[15, 15, 15, 15, 15, 15, 15]).expect("valid rows");
        full.without_qubits(&[full.num_qubits() - 1, full.num_qubits() - 2])
            .expect("trimming bridges keeps the lattice connected")
    }

    /// Removes the given qubits (re-indexing the rest densely).
    ///
    /// # Errors
    ///
    /// Returns [`TranspileError::QubitOutOfRange`] for bad indices and
    /// [`TranspileError::Disconnected`] if the remainder is disconnected.
    pub fn without_qubits(&self, remove: &[usize]) -> Result<Topology, TranspileError> {
        let removed: std::collections::BTreeSet<usize> = remove.iter().copied().collect();
        for &q in &removed {
            if q >= self.num_qubits {
                return Err(TranspileError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        let mut new_index = vec![usize::MAX; self.num_qubits];
        let mut n = 0usize;
        for (q, slot) in new_index.iter_mut().enumerate() {
            if !removed.contains(&q) {
                *slot = n;
                n += 1;
            }
        }
        let edges = self
            .edges
            .iter()
            .filter(|&&(a, b)| !removed.contains(&a) && !removed.contains(&b))
            .map(|&(a, b)| (new_index[a], new_index[b]));
        Topology::from_edges(n, edges.collect::<Vec<_>>())
    }

    /// Number of physical qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The canonical undirected edge list (`a < b`).
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbours of a physical qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: usize) -> &[usize] {
        &self.adjacency[q]
    }

    /// Whether two physical qubits share a coupler.
    #[must_use]
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        a < self.num_qubits && self.adjacency[a].contains(&b)
    }

    /// Shortest-path distance in couplers between two physical qubits.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        self.distance[a][b] as usize
    }

    /// The degree of each physical qubit.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.iter().map(Vec::len).collect()
    }
}

fn all_pairs_bfs(n: usize, adjacency: &[Vec<usize>]) -> Result<Vec<Vec<u16>>, TranspileError> {
    let mut dist = vec![vec![u16::MAX; n]; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        let row = &mut dist[start];
        row[start] = 0;
        queue.clear();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let du = row[u];
            for &v in &adjacency[u] {
                if row[v] == u16::MAX {
                    row[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        if row.contains(&u16::MAX) {
            return Err(TranspileError::Disconnected(format!(
                "qubit {start} cannot reach the whole device"
            )));
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn falcon_has_27_qubits_and_degree_at_most_3() {
        let t = Topology::falcon_27();
        assert_eq!(t.num_qubits(), 27);
        assert_eq!(t.edges().len(), 28);
        assert!(t.degrees().iter().all(|&d| d <= 3));
    }

    #[test]
    fn sized_lattices_match_ibm_counts() {
        assert_eq!(Topology::hummingbird_65().num_qubits(), 65);
        assert_eq!(Topology::eagle_127().num_qubits(), 127);
        assert!(Topology::eagle_127().degrees().iter().all(|&d| d <= 3));
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let t = Topology::grid(4, 5).unwrap();
        assert_eq!(t.num_qubits(), 20);
        // (0,0) -> (3,4): 3 + 4 = 7.
        assert_eq!(t.distance(0, 19), 7);
        assert_eq!(t.distance(7, 7), 0);
    }

    #[test]
    fn linear_chain_distance() {
        let t = Topology::linear(10).unwrap();
        assert_eq!(t.distance(0, 9), 9);
        assert!(t.are_adjacent(3, 4));
        assert!(!t.are_adjacent(3, 5));
    }

    #[test]
    fn rejects_disconnected_and_bad_edges() {
        assert!(matches!(
            Topology::from_edges(4, [(0, 1), (2, 3)]),
            Err(TranspileError::Disconnected(_))
        ));
        assert!(matches!(
            Topology::from_edges(2, [(0, 2)]),
            Err(TranspileError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            Topology::from_edges(2, [(1, 1)]),
            Err(TranspileError::InvalidParameters(_))
        ));
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let t = Topology::from_edges(2, [(0, 1), (1, 0)]).unwrap();
        assert_eq!(t.edges().len(), 1);
    }

    #[test]
    fn without_qubits_reindexes() {
        let t = Topology::linear(5).unwrap();
        let trimmed = t.without_qubits(&[4]).unwrap();
        assert_eq!(trimmed.num_qubits(), 4);
        assert_eq!(trimmed.distance(0, 3), 3);
        // Removing a middle qubit disconnects a chain.
        assert!(t.without_qubits(&[2]).is_err());
    }

    #[test]
    fn heavy_hex_bridge_structure() {
        let t = Topology::heavy_hex_rows(&[7, 7]).unwrap();
        // 14 row qubits + bridges at columns 0 and 4 = 16.
        assert_eq!(t.num_qubits(), 16);
        // Bridges give the row-ends a path between rows.
        assert!(t.distance(0, 7) >= 2);
    }
}
