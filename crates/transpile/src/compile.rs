//! The end-to-end compilation pipeline: layout → routing → optimization →
//! scheduling, mirroring "IBM's Qiskit tool-chain with noise-adaptive
//! routing and the highest optimization level" used as the paper's
//! baseline methodology (§4.2).

use std::sync::atomic::{AtomicU64, Ordering};

use fq_circuit::{CircuitStats, QuantumCircuit};
use serde::{Deserialize, Serialize};

use crate::{
    choose_layout, pass, route, schedule, Device, LayoutStrategy, Schedule, TranspileError,
};

/// Compilation options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Initial placement policy.
    pub layout: LayoutStrategy,
    /// Whether to run the cheap post-routing cleanup passes.
    pub optimize: bool,
}

impl CompileOptions {
    /// The paper's baseline: noise-adaptive layout with optimizations on.
    #[must_use]
    pub fn level3() -> CompileOptions {
        CompileOptions {
            layout: LayoutStrategy::NoiseAdaptive,
            optimize: true,
        }
    }
}

/// A compiled (physical) circuit plus the mappings needed to interpret it.
#[derive(Clone, Debug, PartialEq)]
pub struct Compiled {
    /// The physical circuit; SWAPs are kept explicit so SWAP statistics
    /// remain observable (decompose before simulation if needed).
    pub circuit: QuantumCircuit,
    /// `initial_layout[logical] = physical` at circuit start.
    pub initial_layout: Vec<usize>,
    /// `final_layout[logical] = physical` at measurement time.
    pub final_layout: Vec<usize>,
    /// Router-inserted SWAP count.
    pub swap_count: usize,
    /// Statistics of the physical circuit (CNOT count includes SWAP cost).
    pub stats: CircuitStats,
    /// ASAP schedule under the device's durations.
    pub schedule: Schedule,
    /// Width of the original logical circuit.
    pub logical_qubits: usize,
}

impl Compiled {
    /// Derives a sibling executable from this artifact by swapping in a
    /// different physical circuit while sharing the layout, routing
    /// statistics and schedule — the cheap per-branch instantiation step
    /// of the compile-once/edit-many path (§3.7.1). The caller guarantees
    /// `circuit` has the same routed structure (angles may differ; they
    /// carry no routing, scheduling or SWAP cost).
    #[must_use]
    pub fn instantiate(&self, circuit: QuantumCircuit) -> Compiled {
        Compiled {
            circuit,
            ..self.clone()
        }
    }

    /// Restricts the physical circuit to the qubits it actually touches,
    /// densely re-indexed — so an `n`-qubit job compiled onto a 127-qubit
    /// device can be simulated over ~`n` qubits instead of 127.
    ///
    /// Returns the compact circuit and `final_layout_compact[logical] =
    /// compact_index`, for decoding measurement outcomes.
    #[must_use]
    pub fn compact(&self) -> (QuantumCircuit, Vec<usize>) {
        let phys_width = self.circuit.num_qubits();
        let mut touched = vec![false; phys_width];
        for g in self.circuit.gates() {
            for q in g.qubits() {
                touched[q] = true;
            }
        }
        // Physical qubits that host a logical qubit are always relevant.
        for &p in &self.final_layout {
            touched[p] = true;
        }
        let mut dense = vec![usize::MAX; phys_width];
        let mut width = 0usize;
        for (p, &t) in touched.iter().enumerate() {
            if t {
                dense[p] = width;
                width += 1;
            }
        }
        let mut compact = QuantumCircuit::new(width);
        for g in self.circuit.gates() {
            compact
                .push(g.map_qubits(|q| dense[q]))
                .expect("dense remap of a valid circuit stays valid");
        }
        let layout = self.final_layout.iter().map(|&p| dense[p]).collect();
        (compact, layout)
    }
}

/// Process-wide count of [`compile`] invocations.
///
/// Compilation is the cost FrozenQubits amortizes (one template per
/// sub-circuit shape instead of `2^m` compiles), so the planner's tests
/// assert on this counter to prove the amortization actually happens.
static COMPILE_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// How many times [`compile`] has run in this process — a monotone
/// diagnostic counter for compile-amortization tests and tooling.
#[must_use]
pub fn compile_invocations() -> u64 {
    COMPILE_INVOCATIONS.load(Ordering::Relaxed)
}

/// Compiles a logical circuit for a device.
///
/// # Errors
///
/// Propagates layout and routing errors; see [`choose_layout`] and
/// [`route`].
///
/// # Example
///
/// ```
/// use fq_circuit::build_qaoa_circuit;
/// use fq_ising::IsingModel;
/// use fq_transpile::{compile, CompileOptions, Device};
///
/// let mut m = IsingModel::new(4);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(0, 2, 1.0)?;
/// m.set_coupling(0, 3, 1.0)?;
/// let qc = build_qaoa_circuit(&m, 1)?;
/// let compiled = compile(&qc, &Device::ibm_montreal(), CompileOptions::level3())?;
/// assert!(compiled.stats.cnot_count >= qc.cnot_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile(
    circuit: &QuantumCircuit,
    device: &Device,
    options: CompileOptions,
) -> Result<Compiled, TranspileError> {
    COMPILE_INVOCATIONS.fetch_add(1, Ordering::Relaxed);
    let initial_layout = choose_layout(circuit, device, options.layout)?;
    let routed = route(circuit, device.topology(), &initial_layout)?;
    let physical = if options.optimize {
        pass::optimize(&routed.circuit)
    } else {
        routed.circuit
    };
    let stats = CircuitStats::of(&physical);
    let sched = schedule(&physical, device.durations());
    Ok(Compiled {
        circuit: physical,
        initial_layout,
        final_layout: routed.final_layout,
        swap_count: routed.swap_count,
        stats,
        schedule: sched,
        logical_qubits: circuit.num_qubits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::{build_qaoa_circuit, Gate};
    use fq_ising::IsingModel;

    fn star_model(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 1..n {
            m.set_coupling(0, i, 1.0).unwrap();
        }
        m
    }

    #[test]
    fn compiled_two_qubit_gates_sit_on_couplers() {
        let qc = build_qaoa_circuit(&star_model(8), 1).unwrap();
        let dev = Device::ibm_montreal();
        let c = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        for g in c.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(dev.topology().are_adjacent(qs[0], qs[1]));
            }
        }
    }

    #[test]
    fn star_on_heavy_hex_needs_swaps() {
        // An 8-spoke star cannot embed in a degree-3 lattice without SWAPs.
        let qc = build_qaoa_circuit(&star_model(9), 1).unwrap();
        let dev = Device::ibm_montreal();
        let c = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        assert!(c.swap_count > 0, "expected SWAP overhead on heavy-hex");
        assert!(c.stats.cnot_count > qc.cnot_count());
    }

    #[test]
    fn compact_restricts_width() {
        let qc = build_qaoa_circuit(&star_model(5), 1).unwrap();
        let dev = Device::ibm_washington();
        let c = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        let (compact, layout) = c.compact();
        assert!(compact.num_qubits() < 127, "must not carry idle qubits");
        assert!(compact.num_qubits() >= 5);
        assert_eq!(layout.len(), 5);
        assert!(layout.iter().all(|&d| d < compact.num_qubits()));
        // Same gate structure.
        assert_eq!(compact.len(), c.circuit.len());
        assert_eq!(compact.cnot_count(), c.circuit.cnot_count());
    }

    #[test]
    fn measurements_cover_all_logical_qubits() {
        let qc = build_qaoa_circuit(&star_model(6), 1).unwrap();
        let dev = Device::ibm_montreal();
        let c = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        let measures: Vec<usize> = c
            .circuit
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Measure { q } => Some(*q),
                _ => None,
            })
            .collect();
        assert_eq!(measures, c.final_layout);
    }

    #[test]
    fn optimization_never_increases_cnots() {
        let qc = build_qaoa_circuit(&star_model(7), 1).unwrap();
        let dev = Device::ibm_montreal();
        let raw = compile(
            &qc,
            &dev,
            CompileOptions {
                layout: LayoutStrategy::NoiseAdaptive,
                optimize: false,
            },
        )
        .unwrap();
        let opt = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        assert!(opt.stats.cnot_count <= raw.stats.cnot_count);
    }

    #[test]
    fn schedule_duration_is_positive() {
        let qc = build_qaoa_circuit(&star_model(4), 1).unwrap();
        let dev = Device::ibm_montreal();
        let c = compile(&qc, &dev, CompileOptions::level3()).unwrap();
        assert!(c.schedule.duration_ns > 0.0);
    }
}
