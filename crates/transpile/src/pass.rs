//! Post-routing optimization passes: CNOT-pair cancellation, `Rz` merging,
//! zero-rotation elimination and SWAP decomposition.

use fq_circuit::{Gate, QuantumCircuit};

/// Cancels adjacent identical CNOT pairs: `CX(a,b) · CX(a,b) = I` when no
/// other gate touches `a` or `b` in between.
///
/// QAOA circuits synthesized edge-after-edge often leave such pairs after
/// routing reorders commuting phase terms.
///
/// # Example
///
/// ```
/// use fq_circuit::QuantumCircuit;
/// use fq_transpile::pass::cancel_cx_pairs;
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.cx(0, 1)?;
/// qc.cx(0, 1)?;
/// let out = cancel_cx_pairs(&qc);
/// assert!(out.is_empty());
/// # Ok::<(), fq_circuit::CircuitError>(())
/// ```
#[must_use]
pub fn cancel_cx_pairs(circuit: &QuantumCircuit) -> QuantumCircuit {
    let gates = circuit.gates();
    let mut keep = vec![true; gates.len()];
    // last_open[q]: index of the most recent un-cancelled gate touching q.
    let mut last_open: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for (i, g) in gates.iter().enumerate() {
        if let Gate::Cx { control, target } = *g {
            let lc = last_open[control];
            let lt = last_open[target];
            if let (Some(a), Some(b)) = (lc, lt) {
                if a == b && gates[a] == *g && keep[a] {
                    // Identical CX with both operand histories pointing at it.
                    keep[a] = false;
                    keep[i] = false;
                    // Its operands' last-open pointers must be recomputed;
                    // conservatively reset them (previous gates already
                    // separated by this pair's boundary cannot cancel).
                    last_open[control] = None;
                    last_open[target] = None;
                    continue;
                }
            }
        }
        for q in g.qubits() {
            last_open[q] = Some(i);
        }
    }
    rebuild(circuit, &keep)
}

/// Merges runs of `Rz` rotations on the same qubit with no intervening
/// gate, provided their symbolic angles are fusable
/// ([`fq_circuit::Angle::try_add`]).
#[must_use]
pub fn merge_rz(circuit: &QuantumCircuit) -> QuantumCircuit {
    let gates = circuit.gates();
    let mut out_gates: Vec<Gate> = Vec::with_capacity(gates.len());
    // pending[q]: index in out_gates of a trailing Rz on q.
    let mut pending: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for g in gates {
        match *g {
            Gate::Rz { q, theta } => {
                if let Some(idx) = pending[q] {
                    if let Gate::Rz { theta: prev, .. } = out_gates[idx] {
                        if let Some(sum) = prev.try_add(&theta) {
                            out_gates[idx] = Gate::Rz { q, theta: sum };
                            continue;
                        }
                    }
                }
                pending[q] = Some(out_gates.len());
                out_gates.push(*g);
            }
            _ => {
                for q in g.qubits() {
                    pending[q] = None;
                }
                out_gates.push(*g);
            }
        }
    }
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for g in out_gates {
        out.push(g).expect("gates were valid in the source circuit");
    }
    out
}

/// Removes rotations whose angle is identically zero.
///
/// Term-indexed γ-rotations are exempt even at scale 0: in a compiled
/// *template* they are placeholders for sibling sub-problems whose
/// coefficient for that Hamiltonian term is non-zero (§3.7.1), and
/// dropping them would make the sibling's rebinding silently lose the
/// term. They cost nothing on hardware (`Rz` is virtual) and never occur
/// in directly-synthesized circuits, which omit zero linears at build
/// time.
#[must_use]
pub fn drop_zero_rotations(circuit: &QuantumCircuit) -> QuantumCircuit {
    let keep: Vec<bool> = circuit
        .gates()
        .iter()
        .map(|g| match g {
            Gate::Rz { theta, .. } | Gate::Rx { theta, .. } => {
                matches!(theta, fq_circuit::Angle::Gamma { .. }) || !theta.is_zero()
            }
            _ => true,
        })
        .collect();
    rebuild(circuit, &keep)
}

/// Decomposes every SWAP into its 3-CNOT implementation.
#[must_use]
pub fn decompose_swaps(circuit: &QuantumCircuit) -> QuantumCircuit {
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for g in circuit.gates() {
        match *g {
            Gate::Swap { a, b } => {
                out.cx(a, b).expect("valid in source");
                out.cx(b, a).expect("valid in source");
                out.cx(a, b).expect("valid in source");
            }
            other => out.push(other).expect("valid in source"),
        }
    }
    out
}

/// The default post-routing pipeline: cancel CX pairs, merge `Rz` runs and
/// drop null rotations (mirroring Qiskit optimization level 3's cheap
/// cleanups). SWAPs are left intact so SWAP statistics stay observable;
/// call [`decompose_swaps`] before simulation.
#[must_use]
pub fn optimize(circuit: &QuantumCircuit) -> QuantumCircuit {
    drop_zero_rotations(&merge_rz(&cancel_cx_pairs(circuit)))
}

fn rebuild(circuit: &QuantumCircuit, keep: &[bool]) -> QuantumCircuit {
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for (g, &k) in circuit.gates().iter().zip(keep) {
        if k {
            out.push(*g)
                .expect("gates were valid in the source circuit");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::Angle;

    #[test]
    fn cancels_back_to_back_cx() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).unwrap();
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let out = cancel_cx_pairs(&qc);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.gates()[0],
            Gate::Cx {
                control: 1,
                target: 2
            }
        );
    }

    #[test]
    fn does_not_cancel_across_interposing_gate() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        qc.rz(1, Angle::Constant(0.4)).unwrap();
        qc.cx(0, 1).unwrap();
        let out = cancel_cx_pairs(&qc);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn does_not_cancel_reversed_cx() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        qc.cx(1, 0).unwrap();
        let out = cancel_cx_pairs(&qc);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merges_adjacent_rz_of_same_term() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(0, Angle::Constant(0.25)).unwrap();
        qc.rz(0, Angle::Constant(0.5)).unwrap();
        let out = merge_rz(&qc);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.gates()[0],
            Gate::Rz {
                q: 0,
                theta: Angle::Constant(0.75)
            }
        );
    }

    #[test]
    fn keeps_unfusable_rz_separate() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 1.0,
                term: 0,
            },
        )
        .unwrap();
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 1.0,
                term: 1,
            },
        )
        .unwrap();
        let out = merge_rz(&qc);
        assert_eq!(out.len(), 2, "different terms must stay editable");
    }

    #[test]
    fn drops_zero_rotations_but_keeps_gamma_placeholders() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(0, Angle::Constant(0.0)).unwrap();
        qc.rx(0, Angle::Constant(0.3)).unwrap();
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 0.0,
                term: 0,
            },
        )
        .unwrap();
        qc.rx(
            0,
            Angle::Beta {
                layer: 0,
                scale: 0.0,
            },
        )
        .unwrap();
        let out = drop_zero_rotations(&qc);
        // The zero Constant and zero Beta go; the zero-scale Gamma stays —
        // in a template it is a rebinding placeholder for siblings whose
        // coefficient for that term is non-zero.
        assert_eq!(out.len(), 2);
        assert!(matches!(
            out.gates()[1],
            Gate::Rz {
                theta: Angle::Gamma { scale, .. },
                ..
            } if scale == 0.0
        ));
    }

    #[test]
    fn swap_decomposition_triples_cnots() {
        let mut qc = QuantumCircuit::new(2);
        qc.swap(0, 1).unwrap();
        let out = decompose_swaps(&qc);
        assert_eq!(out.len(), 3);
        assert_eq!(out.cnot_count(), 3);
        assert_eq!(qc.cnot_count(), out.cnot_count());
    }

    #[test]
    fn optimize_pipeline_compounds() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        qc.cx(0, 1).unwrap();
        qc.rz(0, Angle::Constant(0.5)).unwrap();
        qc.rz(0, Angle::Constant(-0.5)).unwrap();
        let out = optimize(&qc);
        assert!(out.is_empty(), "everything cancels: {:?}", out.gates());
    }
}
