//! ASAP scheduling: turns a gate list into start times and a total
//! duration, the input to the decoherence part of the noise model.

use fq_circuit::{Gate, QuantumCircuit};
use serde::{Deserialize, Serialize};

use crate::GateDurations;

/// The schedule of a circuit under a duration model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Start time (ns) of each gate, parallel to the circuit's gate list.
    pub start_ns: Vec<f64>,
    /// Total wall-clock duration of the circuit in nanoseconds.
    pub duration_ns: f64,
    /// Per-qubit busy time (ns): total time the qubit spends inside gates.
    pub busy_ns: Vec<f64>,
}

impl Schedule {
    /// Per-qubit idle time: total duration minus busy time. During idle
    /// windows qubits decohere (the `T1/T2` part of the error model).
    #[must_use]
    pub fn idle_ns(&self, q: usize) -> f64 {
        (self.duration_ns - self.busy_ns.get(q).copied().unwrap_or(0.0)).max(0.0)
    }
}

/// Computes the as-soon-as-possible schedule of a circuit.
///
/// `Rz` gates are virtual (zero duration, §3.3); a SWAP takes 3 CNOT
/// durations.
///
/// # Example
///
/// ```
/// use fq_circuit::QuantumCircuit;
/// use fq_transpile::{schedule, GateDurations};
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0)?;
/// qc.cx(0, 1)?;
/// let s = schedule(&qc, GateDurations::default());
/// assert_eq!(s.duration_ns, 40.0 + 400.0);
/// # Ok::<(), fq_circuit::CircuitError>(())
/// ```
#[must_use]
pub fn schedule(circuit: &QuantumCircuit, durations: GateDurations) -> Schedule {
    let n = circuit.num_qubits();
    let mut free_at = vec![0.0f64; n];
    let mut busy = vec![0.0f64; n];
    let mut start_ns = Vec::with_capacity(circuit.len());
    let mut total = 0.0f64;
    for g in circuit.gates() {
        let dur = gate_duration(g, durations);
        let qs = g.qubits();
        let start = qs.iter().map(|&q| free_at[q]).fold(0.0, f64::max);
        let end = start + dur;
        for &q in &qs {
            free_at[q] = end;
            busy[q] += dur;
        }
        start_ns.push(start);
        total = total.max(end);
    }
    Schedule {
        start_ns,
        duration_ns: total,
        busy_ns: busy,
    }
}

/// The duration of one gate under a duration model.
#[must_use]
pub fn gate_duration(gate: &Gate, durations: GateDurations) -> f64 {
    match gate {
        Gate::Rz { .. } => 0.0,
        Gate::H { .. } | Gate::X { .. } | Gate::Rx { .. } => durations.single_ns,
        Gate::Cx { .. } => durations.cx_ns,
        Gate::Swap { .. } => 3.0 * durations.cx_ns,
        Gate::Measure { .. } => durations.readout_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::Angle;

    #[test]
    fn rz_is_free() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(0, Angle::Constant(1.0)).unwrap();
        qc.rz(0, Angle::Constant(1.0)).unwrap();
        let s = schedule(&qc, GateDurations::default());
        assert_eq!(s.duration_ns, 0.0);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        let s = schedule(&qc, GateDurations::default());
        assert_eq!(s.duration_ns, 40.0);
        assert_eq!(s.start_ns, vec![0.0, 0.0]);
    }

    #[test]
    fn dependencies_serialize() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).unwrap();
        qc.cx(1, 2).unwrap();
        let s = schedule(&qc, GateDurations::default());
        assert_eq!(s.start_ns[1], 400.0);
        assert_eq!(s.duration_ns, 800.0);
    }

    #[test]
    fn swap_is_three_cnots_long() {
        let mut qc = QuantumCircuit::new(2);
        qc.swap(0, 1).unwrap();
        let s = schedule(&qc, GateDurations::default());
        assert_eq!(s.duration_ns, 1200.0);
    }

    #[test]
    fn idle_time_accounts_for_waiting() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        qc.h(0).unwrap(); // qubit 1 idles for 40 ns
        let s = schedule(&qc, GateDurations::default());
        assert_eq!(s.idle_ns(1), 40.0);
        assert_eq!(s.idle_ns(0), 0.0);
    }
}
