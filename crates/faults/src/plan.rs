//! The seeded fault schedule: which injection site misbehaves, how, and
//! on which visit.
//!
//! A [`FaultPlan`] is a *pure function* from `(seed, site, ordinal)` to
//! an optional [`FaultKind`]: the n-th visit to a site either fires a
//! fault or passes through, decided by a stateless splitmix64 hash. The
//! only mutable state is a per-site visit counter (so concurrent callers
//! each draw a distinct ordinal) and per-rule fired counters for
//! assertions. Two plans built from the same seed and rules therefore
//! produce the same schedule — [`FaultPlan::preview`] exposes that
//! schedule without consuming ordinals, which is what the chaos suite
//! pins determinism with.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where in the stack a fault can be injected.
///
/// Each site is one seam the production code already routes through; the
/// hooks consult the plan with [`FaultPlan::roll`] at exactly these
/// points and nowhere else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A template-store read (`fetch` / `fetch_fingerprint`).
    StoreFetch,
    /// A template-store write (`insert`).
    StoreInsert,
    /// A client dialing a shard (`ShardConn` connect).
    Dial,
    /// A client-side response read after the request was sent.
    Response,
    /// A server accepting an inbound connection (serve or dispatch).
    Accept,
    /// A worker about to execute a dequeued job.
    Worker,
}

impl FaultSite {
    /// Every site, in stable order (indexes the per-site counters).
    pub const ALL: [FaultSite; 6] = [
        FaultSite::StoreFetch,
        FaultSite::StoreInsert,
        FaultSite::Dial,
        FaultSite::Response,
        FaultSite::Accept,
        FaultSite::Worker,
    ];

    /// Stable index into [`FaultSite::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultSite::StoreFetch => 0,
            FaultSite::StoreInsert => 1,
            FaultSite::Dial => 2,
            FaultSite::Response => 3,
            FaultSite::Accept => 4,
            FaultSite::Worker => 5,
        }
    }

    /// The site's wire name (the token [`FaultPlan::parse`] accepts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::StoreFetch => "store_fetch",
            FaultSite::StoreInsert => "store_insert",
            FaultSite::Dial => "dial",
            FaultSite::Response => "response",
            FaultSite::Accept => "accept",
            FaultSite::Worker => "worker",
        }
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// What happens when a rule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Refuse the operation outright: a dial fails as connection
    /// refused; an accepted connection is dropped before reading.
    Refuse,
    /// Deliver only part of the payload, then sever: a response read
    /// errors mid-body after the request was executed remotely.
    Truncate,
    /// Sleep this many milliseconds before proceeding (slow-loris /
    /// paused-shard behavior; the operation itself still succeeds).
    Stall(u64),
    /// A store write is silently dropped (disk write error — the store
    /// contract says writes are best-effort).
    WriteError,
    /// A store read misses (disk read error — the store contract says a
    /// failed read is a miss, never an error).
    ReadError,
    /// A store read returns bytes that fail artifact validation; the
    /// wrapper routes them through the real parser, so this exercises
    /// the corrupt-artifact-as-miss path end to end.
    Corrupt,
    /// The worker's job execution panics (contained by `catch_unwind`).
    Panic,
}

impl FaultKind {
    /// The kind's wire name (the token [`FaultPlan::parse`] accepts).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Refuse => "refuse",
            FaultKind::Truncate => "truncate",
            FaultKind::Stall(_) => "stall",
            FaultKind::WriteError => "write_error",
            FaultKind::ReadError => "read_error",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
        }
    }
}

/// One line of a plan: at `site`, fire `kind` on roughly one visit in
/// `one_in`, at most `limit` times overall.
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    /// The seam this rule applies to.
    pub site: FaultSite,
    /// The fault it injects.
    pub kind: FaultKind,
    /// Average firing rate: one visit in `one_in` (1 = every visit).
    pub one_in: u64,
    /// Cap on total firings; `None` is unlimited. The cap is enforced
    /// against the *schedule*, not arrival order: a rule fires on the
    /// first `limit` ordinals its hash selects, whatever order threads
    /// happen to draw those ordinals in.
    pub limit: Option<u64>,
}

/// A seeded, deterministic fault schedule shared (via `Arc`) by every
/// hook in a process.
///
/// With no plan configured the hooks are a skipped `if let` on an
/// `Option` that is `None` — release binaries pay nothing.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// One visit counter per site (indexed by [`FaultSite::index`]).
    ordinals: Vec<AtomicU64>,
    /// One fired counter per rule, for post-storm assertions.
    fired: Vec<AtomicU64>,
}

/// SplitMix64: tiny, stateless, good avalanche — exactly what a
/// reproducible schedule needs (and no dependency).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// An empty plan: every roll passes through until rules are added.
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
            ordinals: FaultSite::ALL.iter().map(|_| AtomicU64::new(0)).collect(),
            fired: Vec::new(),
        }
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a rule (builder style). Rules are consulted in insertion
    /// order; the first one that fires on an ordinal wins it.
    #[must_use]
    pub fn with_rule(
        mut self,
        site: FaultSite,
        kind: FaultKind,
        one_in: u64,
        limit: Option<u64>,
    ) -> FaultPlan {
        self.rules.push(FaultRule {
            site,
            kind,
            one_in: one_in.max(1),
            limit,
        });
        self.fired.push(AtomicU64::new(0));
        self
    }

    /// Does rule `idx`'s hash select `ordinal` at `site`? Pure — no
    /// counters read or written.
    fn selects(&self, idx: usize, site: FaultSite, ordinal: u64) -> bool {
        let rule = &self.rules[idx];
        if rule.site != site {
            return false;
        }
        if rule.one_in <= 1 {
            return true;
        }
        let mut h = splitmix64(self.seed ^ (0x5157 * (site.index() as u64 + 1)));
        h = splitmix64(h ^ ((idx as u64) << 32));
        h = splitmix64(h ^ ordinal);
        h.is_multiple_of(rule.one_in)
    }

    /// The schedule's verdict for visit `ordinal` of `site`: the first
    /// rule whose hash selects this ordinal and whose limit is not yet
    /// exhausted *by earlier ordinals*. Pure: limits are enforced by
    /// counting selected ordinals below `ordinal`, so the answer cannot
    /// depend on which thread got which ordinal first.
    fn decide(&self, site: FaultSite, ordinal: u64) -> Option<(usize, FaultKind)> {
        for idx in 0..self.rules.len() {
            if !self.selects(idx, site, ordinal) {
                continue;
            }
            if let Some(limit) = self.rules[idx].limit {
                let earlier = (0..ordinal).filter(|&o| self.selects(idx, site, o)).count() as u64;
                if earlier >= limit {
                    continue;
                }
            }
            return Some((idx, self.rules[idx].kind));
        }
        None
    }

    /// Draws the next ordinal for `site` and returns the fault to
    /// inject there, if any. This is the only entry point hooks call.
    pub fn roll(&self, site: FaultSite) -> Option<FaultKind> {
        if self.rules.is_empty() {
            return None;
        }
        let ordinal = self.ordinals[site.index()].fetch_add(1, Ordering::Relaxed);
        let (idx, kind) = self.decide(site, ordinal)?;
        self.fired[idx].fetch_add(1, Ordering::Relaxed);
        Some(kind)
    }

    /// The first `n` verdicts for `site`, without consuming ordinals —
    /// the schedule a fresh plan with the same seed and rules would
    /// execute. Two plans agree on `preview` iff they agree on behavior.
    #[must_use]
    pub fn preview(&self, site: FaultSite, n: u64) -> Vec<Option<FaultKind>> {
        (0..n)
            .map(|o| self.decide(site, o).map(|(_, k)| k))
            .collect()
    }

    /// How many visits `site` has absorbed so far.
    #[must_use]
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.ordinals[site.index()].load(Ordering::Relaxed)
    }

    /// Per-rule firing counts, in rule insertion order.
    #[must_use]
    pub fn fired(&self) -> Vec<(FaultRule, u64)> {
        self.rules
            .iter()
            .zip(&self.fired)
            .map(|(rule, count)| (*rule, count.load(Ordering::Relaxed)))
            .collect()
    }

    /// Total faults injected across every rule.
    #[must_use]
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Parses the compact text form used by `FQ_FAULT_PLAN`:
    ///
    /// ```text
    /// seed=42;dial:refuse:1/4;response:truncate:1/6:limit=2;accept:stall:1/3:ms=40
    /// ```
    ///
    /// Entries are `;`-separated. The first must be `seed=N`. Each rule
    /// is `site:kind:1/N` with optional `:limit=K` and (for `stall`)
    /// `:ms=M` suffixes in either order; a stall without `ms=` sleeps
    /// 100 ms.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending entry.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut entries = text.split(';').map(str::trim).filter(|e| !e.is_empty());
        let head = entries
            .next()
            .ok_or_else(|| "empty fault plan".to_string())?;
        let seed = head
            .strip_prefix("seed=")
            .ok_or_else(|| format!("fault plan must start with seed=N, got `{head}`"))?
            .parse::<u64>()
            .map_err(|_| format!("unparseable seed in `{head}`"))?;
        let mut plan = FaultPlan::new(seed);
        for entry in entries {
            let mut parts = entry.split(':');
            let site = parts
                .next()
                .and_then(FaultSite::from_name)
                .ok_or_else(|| format!("unknown fault site in `{entry}`"))?;
            let kind_name = parts
                .next()
                .ok_or_else(|| format!("missing fault kind in `{entry}`"))?;
            let rate = parts
                .next()
                .ok_or_else(|| format!("missing rate (1/N) in `{entry}`"))?;
            let one_in = rate
                .strip_prefix("1/")
                .and_then(|n| n.parse::<u64>().ok())
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("rate must be 1/N with N >= 1 in `{entry}`"))?;
            let mut limit = None;
            let mut ms = None;
            for opt in parts {
                if let Some(k) = opt.strip_prefix("limit=") {
                    limit = Some(
                        k.parse::<u64>()
                            .map_err(|_| format!("unparseable limit in `{entry}`"))?,
                    );
                } else if let Some(m) = opt.strip_prefix("ms=") {
                    ms = Some(
                        m.parse::<u64>()
                            .map_err(|_| format!("unparseable ms in `{entry}`"))?,
                    );
                } else {
                    return Err(format!("unknown option `{opt}` in `{entry}`"));
                }
            }
            let kind = match kind_name {
                "refuse" => FaultKind::Refuse,
                "truncate" => FaultKind::Truncate,
                "stall" => FaultKind::Stall(ms.unwrap_or(100)),
                "write_error" => FaultKind::WriteError,
                "read_error" => FaultKind::ReadError,
                "corrupt" => FaultKind::Corrupt,
                "panic" => FaultKind::Panic,
                other => return Err(format!("unknown fault kind `{other}` in `{entry}`")),
            };
            if !matches!(kind, FaultKind::Stall(_)) && ms.is_some() {
                return Err(format!("ms= only applies to stall, in `{entry}`"));
            }
            plan = plan.with_rule(site, kind, one_in, limit);
        }
        Ok(plan)
    }

    /// Reads and parses the named environment variable; `Ok(None)` when
    /// it is unset or empty (the production default — no plan, no cost).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors for a set-but-malformed
    /// variable — a typo'd chaos run must fail loudly, not run clean.
    pub fn from_env(var: &str) -> Result<Option<FaultPlan>, String> {
        match std::env::var(var) {
            Ok(text) if !text.trim().is_empty() => FaultPlan::parse(&text).map(Some),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rule(FaultSite::Dial, FaultKind::Refuse, 3, None)
            .with_rule(FaultSite::Response, FaultKind::Truncate, 4, Some(2))
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = transport_plan(42);
        let b = transport_plan(42);
        for site in [FaultSite::Dial, FaultSite::Response] {
            assert_eq!(a.preview(site, 200), b.preview(site, 200));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = transport_plan(1);
        let b = transport_plan(2);
        assert_ne!(
            a.preview(FaultSite::Dial, 200),
            b.preview(FaultSite::Dial, 200),
            "200 draws at 1/3 colliding across seeds would be a broken hash"
        );
    }

    #[test]
    fn roll_consumes_the_previewed_schedule_in_order() {
        let plan = transport_plan(7);
        let expected = plan.preview(FaultSite::Dial, 50);
        let rolled: Vec<_> = (0..50).map(|_| plan.roll(FaultSite::Dial)).collect();
        assert_eq!(rolled, expected);
        assert_eq!(plan.visits(FaultSite::Dial), 50);
    }

    #[test]
    fn rate_is_roughly_one_in_n() {
        let plan = FaultPlan::new(9).with_rule(FaultSite::Accept, FaultKind::Refuse, 4, None);
        let fired = plan
            .preview(FaultSite::Accept, 4000)
            .iter()
            .filter(|v| v.is_some())
            .count();
        // Mean 1000; a fair hash lands well inside [800, 1200].
        assert!(
            (800..=1200).contains(&fired),
            "fired {fired} of 4000 at 1/4"
        );
    }

    #[test]
    fn limit_caps_total_firings() {
        let plan = FaultPlan::new(3).with_rule(FaultSite::Worker, FaultKind::Panic, 2, Some(3));
        let fired = plan
            .preview(FaultSite::Worker, 1000)
            .iter()
            .filter(|v| v.is_some())
            .count();
        assert_eq!(fired, 3);
        // And the live counters agree once rolled.
        for _ in 0..1000 {
            plan.roll(FaultSite::Worker);
        }
        assert_eq!(plan.total_fired(), 3);
    }

    #[test]
    fn limit_binds_to_schedule_not_arrival_order() {
        // Whatever order threads draw ordinals in, the set of firing
        // ordinals is fixed: decide() for a given ordinal never changes.
        let plan = FaultPlan::new(11).with_rule(FaultSite::Dial, FaultKind::Refuse, 2, Some(5));
        let before = plan.preview(FaultSite::Dial, 100);
        for _ in 0..100 {
            plan.roll(FaultSite::Dial);
        }
        assert_eq!(plan.preview(FaultSite::Dial, 100), before);
    }

    #[test]
    fn first_matching_rule_wins_its_ordinal() {
        let plan = FaultPlan::new(5)
            .with_rule(FaultSite::Dial, FaultKind::Refuse, 1, Some(1))
            .with_rule(FaultSite::Dial, FaultKind::Truncate, 1, None);
        assert_eq!(plan.roll(FaultSite::Dial), Some(FaultKind::Refuse));
        // Rule 0 exhausted; rule 1 takes over.
        assert_eq!(plan.roll(FaultSite::Dial), Some(FaultKind::Truncate));
    }

    #[test]
    fn one_in_one_fires_every_visit() {
        let plan = FaultPlan::new(0).with_rule(FaultSite::Worker, FaultKind::Panic, 1, None);
        assert!(plan
            .preview(FaultSite::Worker, 16)
            .iter()
            .all(|v| v.is_some()));
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(42);
        assert!(plan.roll(FaultSite::Dial).is_none());
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=42;dial:refuse:1/4;response:truncate:1/6:limit=2;accept:stall:1/3:ms=40",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        let rules = plan.fired();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].0.site, FaultSite::Dial);
        assert_eq!(rules[0].0.kind, FaultKind::Refuse);
        assert_eq!(rules[0].0.one_in, 4);
        assert_eq!(rules[1].0.limit, Some(2));
        assert_eq!(rules[2].0.kind, FaultKind::Stall(40));
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "",
            "dial:refuse:1/4",             // missing seed
            "seed=x;dial:refuse:1/4",      // bad seed
            "seed=1;nowhere:refuse:1/4",   // unknown site
            "seed=1;dial:vanish:1/4",      // unknown kind
            "seed=1;dial:refuse:2/4",      // rate must be 1/N
            "seed=1;dial:refuse:1/0",      // N >= 1
            "seed=1;dial:refuse:1/4:ms=9", // ms on a non-stall
            "seed=1;dial:refuse:1/4:bogus=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn from_env_treats_unset_as_no_plan() {
        assert!(FaultPlan::from_env("FQ_FAULT_PLAN_TEST_UNSET_XYZ")
            .unwrap()
            .is_none());
    }

    #[test]
    fn stall_parses_with_default_ms() {
        let plan = FaultPlan::parse("seed=1;accept:stall:1/1").unwrap();
        assert_eq!(plan.fired()[0].0.kind, FaultKind::Stall(100));
    }
}
