//! `fq-faults`: deterministic, seeded fault injection for the
//! FrozenQubits service stack.
//!
//! PRs 4–7 made robustness *claims* — 503 shedding with `retry-after`,
//! re-route with bounded backoff, corrupt-artifact-as-miss, panic
//! containment, byte-identical failover — each pinned by one
//! hand-rolled fault shape. This crate turns those claims into
//! *measured* behavior: a [`FaultPlan`] is a seeded schedule of fault
//! events (connection refused, mid-body truncation, read stalls, disk
//! read/write errors, artifact corruption, worker panics) that the
//! stack's three seams consult:
//!
//! * **storage** — [`FaultyStore`] decorates any
//!   [`TemplateStore`](frozenqubits::TemplateStore);
//! * **transport** — `ShardConn` rolls [`FaultSite::Dial`] /
//!   [`FaultSite::Response`], the serve and dispatch accept loops roll
//!   [`FaultSite::Accept`];
//! * **engine** — the worker pool rolls [`FaultSite::Worker`] before
//!   executing a job.
//!
//! Determinism is the point: the schedule is a pure function of
//! `(seed, site, visit ordinal)`, so a failing chaos run reproduces
//! from its seed alone, and `same seed → same fault schedule` is itself
//! a pinned invariant ([`FaultPlan::preview`]). With no plan configured
//! every hook is a skipped branch on a `None` — release binaries pay
//! nothing, pinned by the entire existing test suite running unchanged.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod store;

pub use plan::{FaultKind, FaultPlan, FaultRule, FaultSite};
pub use store::FaultyStore;
