//! Storage fault injection: a [`TemplateStore`] that misbehaves on
//! schedule.
//!
//! The store trait is infallible by contract — a read that cannot be
//! served is a miss, a write that cannot land is dropped — so every
//! storage fault maps onto behavior the stack already promises to
//! absorb. `Corrupt` is the interesting one: instead of *assuming* the
//! corrupt-artifact path returns a miss, the wrapper garbles the real
//! artifact's canonical JSON and routes it through the real
//! [`TemplateArtifact::from_json`] validator, so the test exercises the
//! same parse-and-reject code a damaged disk file would hit.

use std::sync::Arc;

use frozenqubits::{
    CompiledTemplate, StoreStats, TemplateArtifact, TemplateIndexEntry, TemplateKey, TemplateStore,
};

use crate::plan::{FaultKind, FaultPlan, FaultSite};

/// A [`TemplateStore`] decorator that injects scheduled storage faults
/// in front of any inner store.
#[derive(Debug)]
pub struct FaultyStore {
    inner: Box<dyn TemplateStore>,
    plan: Arc<FaultPlan>,
}

impl FaultyStore {
    /// Wraps `inner`, consulting `plan` at every fetch and insert.
    #[must_use]
    pub fn new(inner: Box<dyn TemplateStore>, plan: Arc<FaultPlan>) -> FaultyStore {
        FaultyStore { inner, plan }
    }

    /// Garbles an artifact's wire form so validation must reject it:
    /// truncating mid-document is exactly what a torn write leaves
    /// behind, and the parser has to fail on it.
    fn corrupt(json: &str) -> Option<TemplateArtifact> {
        let cut = json.len() / 2;
        TemplateArtifact::from_json(&json[..cut]).ok()
    }
}

impl TemplateStore for FaultyStore {
    fn fetch(&self, key: &TemplateKey) -> Option<CompiledTemplate> {
        match self.plan.roll(FaultSite::StoreFetch) {
            Some(FaultKind::ReadError) => None,
            Some(FaultKind::Corrupt) => {
                let template = self.inner.fetch(key)?;
                let artifact = TemplateArtifact::new(key.clone(), template);
                Self::corrupt(&artifact.to_json()).map(|a| a.template().clone())
            }
            Some(FaultKind::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.fetch(key)
            }
            _ => self.inner.fetch(key),
        }
    }

    fn insert(&self, key: &TemplateKey, template: &CompiledTemplate) {
        match self.plan.roll(FaultSite::StoreInsert) {
            Some(FaultKind::WriteError) => {}
            Some(FaultKind::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.insert(key, template);
            }
            _ => self.inner.insert(key, template),
        }
    }

    fn fetch_fingerprint(&self, fingerprint: &str) -> Option<TemplateArtifact> {
        match self.plan.roll(FaultSite::StoreFetch) {
            Some(FaultKind::ReadError) => None,
            Some(FaultKind::Corrupt) => {
                let artifact = self.inner.fetch_fingerprint(fingerprint)?;
                Self::corrupt(&artifact.to_json())
            }
            Some(FaultKind::Stall(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.fetch_fingerprint(fingerprint)
            }
            _ => self.inner.fetch_fingerprint(fingerprint),
        }
    }

    fn index(&self) -> Vec<TemplateIndexEntry> {
        self.inner.index()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frozenqubits::api::{DeviceSpec, JobBuilder};
    use frozenqubits::MemoryStore;

    /// A compiled template + key pair, produced the same way the
    /// service does it: run a tiny frozen job and pull the artifact out
    /// of the runner's cache.
    fn sample_artifact() -> TemplateArtifact {
        let runner = frozenqubits::BatchRunner::new().with_threads(1);
        let spec = JobBuilder::new()
            .barabasi_albert(8, 1, 5)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap();
        runner.run(std::slice::from_ref(&spec));
        let index = runner.cache().index();
        let fp = &index[0].fingerprint;
        runner.cache().artifact(fp).expect("compiled artifact")
    }

    fn all_faults(kind: FaultKind, site: FaultSite) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(1).with_rule(site, kind, 1, None))
    }

    #[test]
    fn read_error_is_a_miss_not_a_crash() {
        let artifact = sample_artifact();
        let inner = MemoryStore::new();
        inner.insert(artifact.key(), artifact.template());
        let store = FaultyStore::new(
            Box::new(inner),
            all_faults(FaultKind::ReadError, FaultSite::StoreFetch),
        );
        assert!(store.fetch(artifact.key()).is_none());
        assert!(store.fetch_fingerprint(&artifact.fingerprint()).is_none());
    }

    #[test]
    fn corrupt_routes_through_the_real_validator_and_misses() {
        let artifact = sample_artifact();
        let inner = MemoryStore::new();
        inner.insert(artifact.key(), artifact.template());
        let store = FaultyStore::new(
            Box::new(inner),
            all_faults(FaultKind::Corrupt, FaultSite::StoreFetch),
        );
        assert!(store.fetch(artifact.key()).is_none());
        assert!(store.fetch_fingerprint(&artifact.fingerprint()).is_none());
    }

    #[test]
    fn write_error_drops_the_insert() {
        let artifact = sample_artifact();
        let store = FaultyStore::new(
            Box::new(MemoryStore::new()),
            all_faults(FaultKind::WriteError, FaultSite::StoreInsert),
        );
        store.insert(artifact.key(), artifact.template());
        assert_eq!(store.stats().len, 0, "faulted write must not land");
        assert!(store.index().is_empty());
    }

    #[test]
    fn no_matching_rule_passes_straight_through() {
        let artifact = sample_artifact();
        // Faults scheduled only on Dial: storage behaves normally.
        let plan =
            Arc::new(FaultPlan::new(1).with_rule(FaultSite::Dial, FaultKind::Refuse, 1, None));
        let store = FaultyStore::new(Box::new(MemoryStore::new()), plan);
        store.insert(artifact.key(), artifact.template());
        assert_eq!(
            store.fetch(artifact.key()).as_ref(),
            Some(artifact.template())
        );
        assert_eq!(store.index().len(), 1);
    }

    #[test]
    fn partial_rate_faults_some_fetches_and_serves_the_rest() {
        let artifact = sample_artifact();
        let inner = MemoryStore::new();
        inner.insert(artifact.key(), artifact.template());
        let plan = Arc::new(FaultPlan::new(4).with_rule(
            FaultSite::StoreFetch,
            FaultKind::ReadError,
            3,
            None,
        ));
        let store = FaultyStore::new(Box::new(inner), Arc::clone(&plan));
        let misses = (0..300)
            .filter(|_| store.fetch(artifact.key()).is_none())
            .count() as u64;
        assert_eq!(misses, plan.total_fired());
        assert!(misses > 0 && misses < 300);
    }
}
