//! Freezing qubits: substituting variables with ±1 (Eqs. 2–3, Table 2).
//!
//! Freezing variable `k` with spin `s` eliminates `z_k` from the
//! Hamiltonian:
//!
//! * every coupling `J_ik` folds into the linear term `h_i += J_ik · s`;
//! * the linear term `h_k` folds into the offset `offset += h_k · s`;
//! * remaining variables are re-indexed densely (`i > k` shifts down).
//!
//! Freezing `m` variables therefore partitions the `2^N` state space into
//! `2^m` disjoint sub-spaces of `2^{N−m}` points each, one per assignment of
//! the frozen spins; [`enumerate_subproblems`] produces all of them.

use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingModel, Spin, SpinVec};

/// A sub-problem obtained by freezing one or more variables of a parent
/// [`IsingModel`], together with the bookkeeping needed to lift solutions
/// back to the parent's variable space.
///
/// The sub-model's energies are **absolute**: for any sub-assignment `y`,
/// `sub.model().energy(y) == parent.energy(decode(y))`. This is what makes
/// the final recombination step of FrozenQubits a plain `min` over
/// sub-problem optima (§3.6), with no exponential post-processing.
///
/// # Example
///
/// ```
/// use fq_ising::{IsingModel, Spin, SpinVec};
///
/// let mut parent = IsingModel::new(3);
/// parent.set_coupling(0, 1, 1.0)?;
/// parent.set_coupling(1, 2, 1.0)?;
///
/// let sub = parent.freeze(&[(1, Spin::DOWN)])?;
/// let y = SpinVec::from_bits(&[0, 0]); // spins of z0, z2
/// let full = sub.decode(&y)?;
/// assert_eq!(full.spin(1), Spin::DOWN);
/// assert_eq!(parent.energy(&full)?, sub.model().energy(&y)?);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrozenProblem {
    model: IsingModel,
    frozen: Vec<(usize, Spin)>,
    index_map: Vec<usize>,
    parent_vars: usize,
}

impl FrozenProblem {
    /// The reduced Hamiltonian over the surviving variables.
    #[must_use]
    pub fn model(&self) -> &IsingModel {
        &self.model
    }

    /// The frozen `(parent_index, spin)` assignments, in parent indexing.
    #[must_use]
    pub fn frozen(&self) -> &[(usize, Spin)] {
        &self.frozen
    }

    /// Number of variables of the parent problem.
    #[must_use]
    pub fn parent_vars(&self) -> usize {
        self.parent_vars
    }

    /// Maps a surviving variable's sub-index to its parent index.
    ///
    /// # Panics
    ///
    /// Panics if `sub_index` is out of range for the sub-model.
    #[must_use]
    pub fn parent_index(&self, sub_index: usize) -> usize {
        self.index_map[sub_index]
    }

    /// Lifts a sub-assignment to a full parent assignment by re-inserting
    /// the frozen spins (the `O(m)`-per-outcome decode of §3.8).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `sub` does not match the
    /// sub-model's variable count.
    pub fn decode(&self, sub: &SpinVec) -> Result<SpinVec, IsingError> {
        if sub.len() != self.model.num_vars() {
            return Err(IsingError::DimensionMismatch {
                got: sub.len(),
                expected: self.model.num_vars(),
            });
        }
        let mut full = SpinVec::all_up(self.parent_vars);
        for (sub_idx, &parent_idx) in self.index_map.iter().enumerate() {
            full.set(parent_idx, sub.spin(sub_idx));
        }
        for &(k, s) in &self.frozen {
            full.set(k, s);
        }
        Ok(full)
    }

    /// Projects a full parent assignment down to the sub-model's variables,
    /// discarding the frozen positions. Inverse of [`FrozenProblem::decode`]
    /// on the surviving coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `full` does not match the
    /// parent's variable count.
    pub fn project(&self, full: &SpinVec) -> Result<SpinVec, IsingError> {
        if full.len() != self.parent_vars {
            return Err(IsingError::DimensionMismatch {
                got: full.len(),
                expected: self.parent_vars,
            });
        }
        Ok(self.index_map.iter().map(|&p| full.spin(p)).collect())
    }

    /// Whether `full` lies in this sub-problem's half/quarter/... of the
    /// parent state space, i.e. agrees with every frozen spin.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `full` does not match the
    /// parent's variable count.
    pub fn contains(&self, full: &SpinVec) -> Result<bool, IsingError> {
        if full.len() != self.parent_vars {
            return Err(IsingError::DimensionMismatch {
                got: full.len(),
                expected: self.parent_vars,
            });
        }
        Ok(self.frozen.iter().all(|&(k, s)| full.spin(k) == s))
    }
}

impl IsingModel {
    /// Freezes the given `(variable, spin)` assignments, producing the
    /// sub-Hamiltonian of Eqs. (2)–(3) with re-indexed variables.
    ///
    /// Indices refer to **this** model's numbering regardless of order.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::VariableOutOfRange`] for a bad index and
    /// [`IsingError::DuplicateFreeze`] if a variable appears twice.
    pub fn freeze(&self, assignments: &[(usize, Spin)]) -> Result<FrozenProblem, IsingError> {
        let n = self.num_vars();
        let mut frozen_spin: Vec<Option<Spin>> = vec![None; n];
        for &(k, s) in assignments {
            if k >= n {
                return Err(IsingError::VariableOutOfRange {
                    index: k,
                    num_vars: n,
                });
            }
            if frozen_spin[k].is_some() {
                return Err(IsingError::DuplicateFreeze(k));
            }
            frozen_spin[k] = Some(s);
        }

        // Dense re-indexing of the survivors.
        let index_map: Vec<usize> = (0..n).filter(|&i| frozen_spin[i].is_none()).collect();
        let mut sub_index = vec![usize::MAX; n];
        for (si, &pi) in index_map.iter().enumerate() {
            sub_index[pi] = si;
        }

        let mut sub = IsingModel::new(index_map.len());
        let mut offset = self.offset();
        for (i, hi) in self.linears() {
            match frozen_spin[i] {
                Some(s) => offset += hi * s.as_f64(),
                None => sub.set_linear(sub_index[i], hi)?,
            }
        }
        for ((i, j), jij) in self.couplings() {
            match (frozen_spin[i], frozen_spin[j]) {
                (Some(si), Some(sj)) => offset += jij * si.as_f64() * sj.as_f64(),
                (Some(si), None) => sub.add_linear(sub_index[j], jij * si.as_f64())?,
                (None, Some(sj)) => sub.add_linear(sub_index[i], jij * sj.as_f64())?,
                (None, None) => sub.add_coupling(sub_index[i], sub_index[j], jij)?,
            }
        }
        sub.set_offset(offset);

        Ok(FrozenProblem {
            model: sub,
            frozen: assignments.to_vec(),
            index_map,
            parent_vars: n,
        })
    }
}

/// Enumerates all `2^m` sub-problems from freezing the given variables.
///
/// Sub-problem `b` (for bitmask `b` in `0..2^m`) assigns `qubits[t]` the
/// spin `+1` when bit `t` of `b` is 0 and `−1` when it is 1, so index 0 is
/// the all-`+1` branch.
///
/// # Errors
///
/// Returns [`IsingError::VariableOutOfRange`] / [`IsingError::DuplicateFreeze`]
/// under the same conditions as [`IsingModel::freeze`], and
/// [`IsingError::ProblemTooLarge`] when `m > 20` (2^m sub-problems would be
/// absurd; the paper's default is m ≤ 2 and its largest study is m = 10).
pub fn enumerate_subproblems(
    model: &IsingModel,
    qubits: &[usize],
) -> Result<Vec<FrozenProblem>, IsingError> {
    let m = qubits.len();
    if m > 20 {
        return Err(IsingError::ProblemTooLarge {
            num_vars: m,
            limit: 20,
        });
    }
    let mut out = Vec::with_capacity(1 << m);
    for mask in 0u64..(1u64 << m) {
        let assignment: Vec<(usize, Spin)> = qubits
            .iter()
            .enumerate()
            .map(|(t, &q)| {
                let s = if (mask >> t) & 1 == 0 {
                    Spin::UP
                } else {
                    Spin::DOWN
                };
                (q, s)
            })
            .collect();
        out.push(model.freeze(&assignment)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-qubit example of Fig. 5: h = 0, star couplings around z3 plus
    /// J02; freezing z3 must reproduce the two tabulated sub-spaces.
    fn fig5_model() -> IsingModel {
        let mut m = IsingModel::new(4);
        m.set_coupling(0, 2, 1.0).unwrap();
        m.set_coupling(0, 3, 1.0).unwrap();
        m.set_coupling(1, 3, -1.0).unwrap();
        m.set_coupling(2, 3, 1.0).unwrap();
        m
    }

    #[test]
    fn freeze_folds_couplings_into_linears() {
        let m = fig5_model();
        let plus = m.freeze(&[(3, Spin::UP)]).unwrap();
        // h'_0 = J03·(+1) = 1, h'_1 = J13·(+1) = −1, h'_2 = J23·(+1) = 1
        assert_eq!(plus.model().linear(0), 1.0);
        assert_eq!(plus.model().linear(1), -1.0);
        assert_eq!(plus.model().linear(2), 1.0);
        // The only surviving coupling is J02.
        assert_eq!(plus.model().num_couplings(), 1);
        assert_eq!(plus.model().coupling(0, 1), 0.0);

        let minus = m.freeze(&[(3, Spin::DOWN)]).unwrap();
        assert_eq!(minus.model().linear(0), -1.0);
        assert_eq!(minus.model().linear(1), 1.0);
        assert_eq!(minus.model().linear(2), -1.0);
    }

    #[test]
    fn offsets_follow_table_2() {
        let mut m = fig5_model();
        m.set_linear(3, 0.25).unwrap();
        m.set_offset(1.0);
        let plus = m.freeze(&[(3, Spin::UP)]).unwrap();
        let minus = m.freeze(&[(3, Spin::DOWN)]).unwrap();
        assert_eq!(plus.model().offset(), 1.25); // offset + h3
        assert_eq!(minus.model().offset(), 0.75); // offset − h3
    }

    #[test]
    fn sub_energy_equals_parent_energy_exhaustively() {
        let m = fig5_model();
        for sub in enumerate_subproblems(&m, &[3, 1]).unwrap() {
            for idx in 0..4u64 {
                let y = SpinVec::from_index(idx, 2);
                let full = sub.decode(&y).unwrap();
                assert!(sub.contains(&full).unwrap());
                let e_sub = sub.model().energy(&y).unwrap();
                let e_full = m.energy(&full).unwrap();
                assert!((e_sub - e_full).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn subspaces_partition_the_state_space() {
        let m = fig5_model();
        let subs = enumerate_subproblems(&m, &[3]).unwrap();
        assert_eq!(subs.len(), 2);
        for idx in 0..16u64 {
            let full = SpinVec::from_index(idx, 4);
            let memberships = subs.iter().filter(|s| s.contains(&full).unwrap()).count();
            assert_eq!(
                memberships, 1,
                "point {idx} must be in exactly one sub-space"
            );
        }
    }

    #[test]
    fn decode_project_roundtrip() {
        let m = fig5_model();
        let sub = m.freeze(&[(1, Spin::DOWN), (3, Spin::UP)]).unwrap();
        let y = SpinVec::from_bits(&[1, 0]);
        let full = sub.decode(&y).unwrap();
        assert_eq!(sub.project(&full).unwrap(), y);
        assert_eq!(full.spin(1), Spin::DOWN);
        assert_eq!(full.spin(3), Spin::UP);
    }

    #[test]
    fn freeze_order_does_not_matter() {
        let m = fig5_model();
        let a = m.freeze(&[(1, Spin::DOWN), (3, Spin::UP)]).unwrap();
        let b = m.freeze(&[(3, Spin::UP), (1, Spin::DOWN)]).unwrap();
        assert_eq!(a.model(), b.model());
        assert_eq!(a.parent_index(0), 0);
        assert_eq!(a.parent_index(1), 2);
    }

    #[test]
    fn sequential_freeze_equals_joint_freeze() {
        let m = fig5_model();
        let joint = m.freeze(&[(3, Spin::UP), (1, Spin::DOWN)]).unwrap();
        let step1 = m.freeze(&[(3, Spin::UP)]).unwrap();
        // After freezing 3, parent index 1 is still sub-index 1.
        let step2 = step1.model().freeze(&[(1, Spin::DOWN)]).unwrap();
        assert_eq!(joint.model(), step2.model());
    }

    #[test]
    fn rejects_duplicates_and_bad_indices() {
        let m = fig5_model();
        assert!(matches!(
            m.freeze(&[(0, Spin::UP), (0, Spin::DOWN)]),
            Err(IsingError::DuplicateFreeze(0))
        ));
        assert!(matches!(
            m.freeze(&[(9, Spin::UP)]),
            Err(IsingError::VariableOutOfRange { .. })
        ));
    }

    #[test]
    fn enumerate_mask_convention() {
        let m = fig5_model();
        let subs = enumerate_subproblems(&m, &[3, 0]).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].frozen(), &[(3, Spin::UP), (0, Spin::UP)]);
        assert_eq!(subs[1].frozen(), &[(3, Spin::DOWN), (0, Spin::UP)]);
        assert_eq!(subs[2].frozen(), &[(3, Spin::UP), (0, Spin::DOWN)]);
        assert_eq!(subs[3].frozen(), &[(3, Spin::DOWN), (0, Spin::DOWN)]);
    }

    #[test]
    fn freezing_hotspot_drops_its_edges() {
        let m = fig5_model();
        // z3 has degree 3 of the 4 edges.
        let sub = m.freeze(&[(3, Spin::UP)]).unwrap();
        assert_eq!(m.num_couplings() - sub.model().num_couplings(), 3);
    }
}
