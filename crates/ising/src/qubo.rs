//! QUBO (quadratic unconstrained binary optimization) form and its exact
//! correspondence with the Ising form.
//!
//! Many applications (Table 1 of the paper) are naturally expressed over
//! binary variables `x ∈ {0, 1}`; QAOA consumes the Ising form over spins
//! `z ∈ {−1, +1}`. The two are related by `x = (1 − z)/2`, matching the
//! convention that measuring `|0⟩` yields spin `+1`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingModel, SpinVec};

/// A QUBO objective `f(x) = Σ_i q_ii·x_i + Σ_{i<j} q_ij·x_i·x_j + offset`
/// over binary variables.
///
/// # Example
///
/// ```
/// use fq_ising::Qubo;
///
/// let mut q = Qubo::new(2);
/// q.set(0, 0, 1.0)?; // linear term on x0
/// q.set(0, 1, -2.0)?; // quadratic term x0·x1
///
/// let ising = q.to_ising();
/// // Energies must agree on all four assignments.
/// assert_eq!(q.value(&[1, 1])?, ising.energy(&fq_ising::SpinVec::from_bits(&[1, 1]))?);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Qubo {
    num_vars: usize,
    terms: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl Qubo {
    /// Creates a QUBO over `num_vars` binary variables with all terms zero.
    #[must_use]
    pub fn new(num_vars: usize) -> Qubo {
        Qubo {
            num_vars,
            terms: BTreeMap::new(),
            offset: 0.0,
        }
    }

    /// Number of binary variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constant offset.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Sets the constant offset.
    pub fn set_offset(&mut self, offset: f64) {
        self.offset = offset;
    }

    /// Sets coefficient `q_ij`; `i == j` denotes the linear term `x_i`
    /// (since `x_i² = x_i` for binaries).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::VariableOutOfRange`] for out-of-range indices
    /// and [`IsingError::NonFiniteCoefficient`] for NaN/infinite values.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<(), IsingError> {
        for k in [i, j] {
            if k >= self.num_vars {
                return Err(IsingError::VariableOutOfRange {
                    index: k,
                    num_vars: self.num_vars,
                });
            }
        }
        if !value.is_finite() {
            return Err(IsingError::NonFiniteCoefficient {
                place: format!("q[{i},{j}]"),
            });
        }
        let key = if i <= j { (i, j) } else { (j, i) };
        if value == 0.0 {
            self.terms.remove(&key);
        } else {
            self.terms.insert(key, value);
        }
        Ok(())
    }

    /// The coefficient `q_ij` (0 if unset).
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let key = if i <= j { (i, j) } else { (j, i) };
        self.terms.get(&key).copied().unwrap_or(0.0)
    }

    /// Evaluates `f(x)` over bits (any nonzero byte counts as 1).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] on length mismatch.
    pub fn value(&self, x: &[u8]) -> Result<f64, IsingError> {
        if x.len() != self.num_vars {
            return Err(IsingError::DimensionMismatch {
                got: x.len(),
                expected: self.num_vars,
            });
        }
        let b = |i: usize| f64::from(u8::from(x[i] != 0));
        let mut v = self.offset;
        for (&(i, j), &q) in &self.terms {
            v += if i == j { q * b(i) } else { q * b(i) * b(j) };
        }
        Ok(v)
    }

    /// Converts to the equivalent Ising Hamiltonian via `x = (1 − z)/2`.
    ///
    /// The conversion is exact: for every assignment,
    /// `qubo.value(x) == ising.energy(z)` where `z_i = +1 ⇔ x_i = 0`.
    #[must_use]
    pub fn to_ising(&self) -> IsingModel {
        let mut m = IsingModel::new(self.num_vars);
        let mut offset = self.offset;
        for (&(i, j), &q) in &self.terms {
            if i == j {
                // q·x = q·(1−z)/2
                offset += q / 2.0;
                m.add_linear(i, -q / 2.0)
                    .expect("index validated at insert");
            } else {
                // q·x_i·x_j = q·(1−z_i)(1−z_j)/4
                offset += q / 4.0;
                m.add_linear(i, -q / 4.0)
                    .expect("index validated at insert");
                m.add_linear(j, -q / 4.0)
                    .expect("index validated at insert");
                m.add_coupling(i, j, q / 4.0)
                    .expect("index validated at insert");
            }
        }
        m.set_offset(offset);
        m
    }

    /// Converts an Ising Hamiltonian to the equivalent QUBO via
    /// `z = 1 − 2x`.
    #[must_use]
    pub fn from_ising(model: &IsingModel) -> Qubo {
        let mut q = Qubo::new(model.num_vars());
        let mut offset = model.offset();
        for (i, hi) in model.linears() {
            if hi != 0.0 {
                // h·z = h·(1 − 2x)
                offset += hi;
                add_term(&mut q, i, i, -2.0 * hi);
            }
        }
        for ((i, j), jij) in model.couplings() {
            // J·z_i·z_j = J·(1−2x_i)(1−2x_j)
            offset += jij;
            add_term(&mut q, i, i, -2.0 * jij);
            add_term(&mut q, j, j, -2.0 * jij);
            add_term(&mut q, i, j, 4.0 * jij);
        }
        q.set_offset(offset);
        q
    }

    /// Evaluates the QUBO on the binary image of a spin assignment.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] on length mismatch.
    pub fn value_of_spins(&self, z: &SpinVec) -> Result<f64, IsingError> {
        let bits: Vec<u8> = z.iter().map(|s| s.to_bit()).collect();
        self.value(&bits)
    }
}

fn add_term(q: &mut Qubo, i: usize, j: usize, delta: f64) {
    let current = q.get(i, j);
    q.set(i, j, current + delta)
        .expect("indices already validated");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_qubo() -> Qubo {
        let mut q = Qubo::new(3);
        q.set(0, 0, 1.0).unwrap();
        q.set(1, 1, -2.0).unwrap();
        q.set(0, 1, 3.0).unwrap();
        q.set(1, 2, -1.0).unwrap();
        q.set_offset(0.5);
        q
    }

    #[test]
    fn qubo_to_ising_preserves_values() {
        let q = sample_qubo();
        let m = q.to_ising();
        for idx in 0..8u64 {
            let z = SpinVec::from_index(idx, 3);
            let viq = q.value_of_spins(&z).unwrap();
            let vis = m.energy(&z).unwrap();
            assert!((viq - vis).abs() < 1e-12, "mismatch at {idx}");
        }
    }

    #[test]
    fn ising_to_qubo_roundtrip_values() {
        let q = sample_qubo();
        let m = q.to_ising();
        let q2 = Qubo::from_ising(&m);
        for idx in 0..8u64 {
            let z = SpinVec::from_index(idx, 3);
            assert!((q.value_of_spins(&z).unwrap() - q2.value_of_spins(&z).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn get_is_index_order_insensitive() {
        let q = sample_qubo();
        assert_eq!(q.get(1, 0), 3.0);
        assert_eq!(q.get(0, 1), 3.0);
    }

    #[test]
    fn value_validates_length() {
        let q = sample_qubo();
        assert!(q.value(&[0, 1]).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut q = Qubo::new(2);
        assert!(q.set(0, 4, 1.0).is_err());
        assert!(q.set(0, 1, f64::INFINITY).is_err());
    }
}
