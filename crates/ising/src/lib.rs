//! Ising Hamiltonians and the freezing algebra at the heart of *FrozenQubits*.
//!
//! A QAOA problem is specified as an Ising Hamiltonian (Eq. 1 of the paper):
//!
//! ```text
//! C(z) = Σ_i h_i·z_i  +  Σ_{i<j} J_ij·z_i·z_j  +  offset ,   z_i ∈ {−1, +1}
//! ```
//!
//! This crate provides:
//!
//! * [`IsingModel`] — the Hamiltonian representation with energy evaluation,
//!   degree/adjacency queries and coefficient access;
//! * [`Spin`] / [`SpinVec`] — the ±1 variable domain;
//! * [`freeze`] — substituting a variable with ±1 to obtain the
//!   sub-Hamiltonians of Eqs. (2)–(3) and decoding sub-solutions back;
//! * [`symmetry`] — the spin-flip symmetry theorem of §3.7.2 used to prune
//!   half of the sub-problems;
//! * [`qubo`] / [`maxcut`] — conversions from the QUBO and Max-Cut encodings;
//! * [`solve`] — exact, annealing and greedy classical solvers used to obtain
//!   `C_min` for the Approximation-Ratio metrics;
//! * [`distribution`] — measurement-outcome distributions and expectation
//!   values.
//!
//! # Example
//!
//! ```
//! use fq_ising::{IsingModel, Spin};
//!
//! // The 4-qubit example of Fig. 5: a star around z3 plus a triangle edge.
//! let mut m = IsingModel::new(4);
//! m.set_coupling(0, 2, 1.0).unwrap();
//! m.set_coupling(0, 3, 1.0).unwrap();
//! m.set_coupling(1, 3, -1.0).unwrap();
//! m.set_coupling(2, 3, 1.0).unwrap();
//!
//! // Freeze the hotspot z3 with value +1: edges to z3 fold into linear terms.
//! let sub = m.freeze(&[(3, Spin::UP)]).unwrap();
//! assert_eq!(sub.model().num_vars(), 3);
//! assert_eq!(sub.model().linear(1), -1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
mod error;
pub mod freeze;
pub mod maxcut;
mod model;
pub mod qubo;
pub mod solve;
mod spin;
pub mod symmetry;

pub use distribution::OutputDistribution;
pub use error::IsingError;
pub use freeze::{enumerate_subproblems, FrozenProblem};
pub use model::IsingModel;
pub use qubo::Qubo;
pub use spin::{Spin, SpinVec};
