//! The Ising Hamiltonian representation (Eq. 1 and Table 2 of the paper).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{IsingError, Spin, SpinVec};

/// An Ising Hamiltonian `C(z) = Σ h_i z_i + Σ_{i<j} J_ij z_i z_j + offset`.
///
/// Variables are indexed `0..num_vars` and take values in `{−1, +1}`.
/// Quadratic coefficients are stored once per unordered pair with the
/// canonical key `(i, j), i < j`; setting `J(j, i)` is equivalent to setting
/// `J(i, j)`.
///
/// In the graph view used throughout the paper, `J_ij` is the weight of edge
/// `(i, j)` and `h_i` the weight of node `i`; a node's *degree* is its number
/// of incident non-zero couplings, and the highest-degree nodes are the
/// *hotspots* that FrozenQubits freezes.
///
/// # Example
///
/// ```
/// use fq_ising::{IsingModel, SpinVec};
///
/// let mut m = IsingModel::new(3);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, -1.0)?;
/// m.set_linear(0, 0.5)?;
/// m.set_offset(2.0);
///
/// // C(z) for z = (+1, +1, +1): 0.5 + (1 - 1) + 2 = 2.5
/// assert_eq!(m.energy(&SpinVec::all_up(3))?, 2.5);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct IsingModel {
    num_vars: usize,
    h: Vec<f64>,
    couplings: BTreeMap<(usize, usize), f64>,
    offset: f64,
}

impl IsingModel {
    /// Creates a model over `num_vars` variables with all coefficients zero.
    #[must_use]
    pub fn new(num_vars: usize) -> IsingModel {
        IsingModel {
            num_vars,
            h: vec![0.0; num_vars],
            couplings: BTreeMap::new(),
            offset: 0.0,
        }
    }

    /// Number of spin variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of stored (non-zero) quadratic terms, `|J|` in §3.8.
    #[must_use]
    pub fn num_couplings(&self) -> usize {
        self.couplings.len()
    }

    /// The constant offset term.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Sets the constant offset term.
    pub fn set_offset(&mut self, offset: f64) {
        self.offset = offset;
    }

    /// Adds to the constant offset term.
    pub fn add_offset(&mut self, delta: f64) {
        self.offset += delta;
    }

    /// The linear coefficient `h_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`. Use [`IsingModel::try_linear`] for a
    /// fallible variant.
    #[must_use]
    pub fn linear(&self, i: usize) -> f64 {
        self.h[i]
    }

    /// The linear coefficient `h_i`, or an error for an out-of-range index.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::VariableOutOfRange`] if `i >= num_vars`.
    pub fn try_linear(&self, i: usize) -> Result<f64, IsingError> {
        self.check_var(i)?;
        Ok(self.h[i])
    }

    /// Sets the linear coefficient `h_i`.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::VariableOutOfRange`] if `i >= num_vars` and
    /// [`IsingError::NonFiniteCoefficient`] for NaN/infinite values.
    pub fn set_linear(&mut self, i: usize, value: f64) -> Result<(), IsingError> {
        self.check_var(i)?;
        check_finite(value, || format!("h[{i}]"))?;
        self.h[i] = value;
        Ok(())
    }

    /// Adds to the linear coefficient `h_i`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IsingModel::set_linear`].
    pub fn add_linear(&mut self, i: usize, delta: f64) -> Result<(), IsingError> {
        self.check_var(i)?;
        check_finite(delta, || format!("h[{i}]"))?;
        self.h[i] += delta;
        Ok(())
    }

    /// The quadratic coefficient of the unordered pair `{i, j}` (0 if unset).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `i == j`.
    #[must_use]
    pub fn coupling(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "self-coupling queried");
        assert!(i < self.num_vars && j < self.num_vars, "index out of range");
        let key = canonical(i, j);
        self.couplings.get(&key).copied().unwrap_or(0.0)
    }

    /// Sets the quadratic coefficient of the unordered pair `{i, j}`.
    ///
    /// Setting a coefficient to exactly `0.0` removes the term (and the edge
    /// from the graph view).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::SelfCoupling`] if `i == j`,
    /// [`IsingError::VariableOutOfRange`] for out-of-range indices and
    /// [`IsingError::NonFiniteCoefficient`] for NaN/infinite values.
    pub fn set_coupling(&mut self, i: usize, j: usize, value: f64) -> Result<(), IsingError> {
        self.check_var(i)?;
        self.check_var(j)?;
        if i == j {
            return Err(IsingError::SelfCoupling(i));
        }
        check_finite(value, || format!("J[{i},{j}]"))?;
        let key = canonical(i, j);
        if value == 0.0 {
            self.couplings.remove(&key);
        } else {
            self.couplings.insert(key, value);
        }
        Ok(())
    }

    /// Adds to the quadratic coefficient of the unordered pair `{i, j}`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IsingModel::set_coupling`].
    pub fn add_coupling(&mut self, i: usize, j: usize, delta: f64) -> Result<(), IsingError> {
        let current = {
            self.check_var(i)?;
            self.check_var(j)?;
            if i == j {
                return Err(IsingError::SelfCoupling(i));
            }
            self.couplings.get(&canonical(i, j)).copied().unwrap_or(0.0)
        };
        self.set_coupling(i, j, current + delta)
    }

    /// Iterates over the quadratic terms as `((i, j), J_ij)` with `i < j`.
    pub fn couplings(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.couplings.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates over `(i, h_i)` for **all** variables, including zeros.
    pub fn linears(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.h.iter().copied().enumerate()
    }

    /// Evaluates `C(z)` for a full assignment.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `z.len() != num_vars`.
    pub fn energy(&self, z: &SpinVec) -> Result<f64, IsingError> {
        self.energy_of(z.as_slice())
    }

    /// Evaluates `C(z)` for a full assignment given as a spin slice.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if `z.len() != num_vars`.
    pub fn energy_of(&self, z: &[Spin]) -> Result<f64, IsingError> {
        if z.len() != self.num_vars {
            return Err(IsingError::DimensionMismatch {
                got: z.len(),
                expected: self.num_vars,
            });
        }
        let mut e = self.offset;
        for (i, &hi) in self.h.iter().enumerate() {
            if hi != 0.0 {
                e += hi * z[i].as_f64();
            }
        }
        for (&(i, j), &jij) in &self.couplings {
            e += jij * z[i].as_f64() * z[j].as_f64();
        }
        Ok(e)
    }

    /// The energy change from flipping spin `k` of assignment `z`.
    ///
    /// Computing the delta is `O(deg(k))` instead of re-evaluating the whole
    /// Hamiltonian; the annealing solver relies on this.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] on length mismatch and
    /// [`IsingError::VariableOutOfRange`] for an out-of-range `k`.
    pub fn flip_delta(&self, z: &SpinVec, k: usize) -> Result<f64, IsingError> {
        if z.len() != self.num_vars {
            return Err(IsingError::DimensionMismatch {
                got: z.len(),
                expected: self.num_vars,
            });
        }
        self.check_var(k)?;
        // Flipping z_k negates every term containing z_k: delta = -2 * (local field) * z_k.
        let mut local = self.h[k];
        for (&(i, j), &jij) in self.couplings.range((k, 0)..(k + 1, 0)) {
            debug_assert_eq!(i, k);
            local += jij * z.spin(j).as_f64();
        }
        // Terms (i, k) with i < k are not contiguous; walk the neighbour list.
        for (&(i, j), &jij) in &self.couplings {
            if j == k {
                local += jij * z.spin(i).as_f64();
            }
        }
        Ok(-2.0 * local * z.spin(k).as_f64())
    }

    /// The degree (number of incident non-zero couplings) of each variable.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_vars];
        for &(i, j) in self.couplings.keys() {
            deg[i] += 1;
            deg[j] += 1;
        }
        deg
    }

    /// The degree of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_vars`.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        assert!(i < self.num_vars, "index out of range");
        self.couplings
            .keys()
            .filter(|&&(a, b)| a == i || b == i)
            .count()
    }

    /// Adjacency list: `adjacency()[i]` holds `(j, J_ij)` for each neighbour.
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.num_vars];
        for (&(i, j), &jij) in &self.couplings {
            adj[i].push((j, jij));
            adj[j].push((i, jij));
        }
        adj
    }

    /// Variables sorted by degree, highest first; ties broken by lower index.
    ///
    /// The first `m` entries are the *hotspots* FrozenQubits freezes (§3.5).
    #[must_use]
    pub fn hotspots(&self) -> Vec<usize> {
        let deg = self.degrees();
        let mut order: Vec<usize> = (0..self.num_vars).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(deg[i]), i));
        order
    }

    /// Whether every linear coefficient is exactly zero.
    ///
    /// This is the precondition of the spin-flip symmetry theorem (§3.7.2):
    /// when it holds, `C(z) = C(−z)` for every `z`.
    #[must_use]
    pub fn has_zero_linear_terms(&self) -> bool {
        self.h.iter().all(|&hi| hi == 0.0)
    }

    /// Sum of |h| and |J| magnitudes; a crude scale used by optimizer seeds.
    #[must_use]
    pub fn coefficient_norm(&self) -> f64 {
        self.h.iter().map(|h| h.abs()).sum::<f64>()
            + self.couplings.values().map(|j| j.abs()).sum::<f64>()
    }

    fn check_var(&self, i: usize) -> Result<(), IsingError> {
        if i >= self.num_vars {
            Err(IsingError::VariableOutOfRange {
                index: i,
                num_vars: self.num_vars,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for IsingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IsingModel {{ vars: {}, couplings: {}, offset: {} }}",
            self.num_vars,
            self.couplings.len(),
            self.offset
        )
    }
}

impl fmt::Display for IsingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C(z) =")?;
        let mut first = true;
        for (i, hi) in self.linears() {
            if hi != 0.0 {
                write!(f, "{}{hi}·z{i}", sep(&mut first))?;
            }
        }
        for ((i, j), jij) in self.couplings() {
            write!(f, "{}{jij}·z{i}z{j}", sep(&mut first))?;
        }
        if self.offset != 0.0 || first {
            write!(f, "{}{}", sep(&mut first), self.offset)?;
        }
        Ok(())
    }
}

fn sep(first: &mut bool) -> &'static str {
    if *first {
        *first = false;
        " "
    } else {
        " + "
    }
}

fn canonical(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

fn check_finite(v: f64, place: impl FnOnce() -> String) -> Result<(), IsingError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(IsingError::NonFiniteCoefficient { place: place() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> IsingModel {
        let mut m = IsingModel::new(3);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(0, 2, 1.0).unwrap();
        m.set_coupling(1, 2, 1.0).unwrap();
        m
    }

    #[test]
    fn energy_matches_hand_computation() {
        let mut m = triangle();
        m.set_linear(0, 0.5).unwrap();
        m.set_offset(1.0);
        // z = (+1, -1, -1): 0.5 + (-1 - 1 + 1) + 1 = 0.5
        let z = SpinVec::from_bits(&[0, 1, 1]);
        assert!((m.energy(&z).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coupling_is_symmetric_in_indices() {
        let mut m = IsingModel::new(4);
        m.set_coupling(3, 1, -2.0).unwrap();
        assert_eq!(m.coupling(1, 3), -2.0);
        assert_eq!(m.coupling(3, 1), -2.0);
        assert_eq!(m.num_couplings(), 1);
    }

    #[test]
    fn setting_zero_removes_edge() {
        let mut m = triangle();
        assert_eq!(m.num_couplings(), 3);
        m.set_coupling(0, 1, 0.0).unwrap();
        assert_eq!(m.num_couplings(), 2);
        assert_eq!(m.degree(0), 1);
    }

    #[test]
    fn rejects_bad_indices_and_values() {
        let mut m = IsingModel::new(2);
        assert!(matches!(
            m.set_coupling(0, 5, 1.0),
            Err(IsingError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_coupling(1, 1, 1.0),
            Err(IsingError::SelfCoupling(1))
        ));
        assert!(matches!(
            m.set_linear(0, f64::NAN),
            Err(IsingError::NonFiniteCoefficient { .. })
        ));
        assert!(matches!(
            m.energy(&SpinVec::all_up(3)),
            Err(IsingError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn flip_delta_agrees_with_energy_difference() {
        let mut m = triangle();
        m.set_linear(1, -0.7).unwrap();
        m.set_coupling(1, 2, -1.5).unwrap();
        for idx in 0..8u64 {
            let z = SpinVec::from_index(idx, 3);
            for k in 0..3 {
                let mut zf = z.clone();
                zf.flip(k);
                let expect = m.energy(&zf).unwrap() - m.energy(&z).unwrap();
                let got = m.flip_delta(&z, k).unwrap();
                assert!((expect - got).abs() < 1e-12, "idx={idx} k={k}");
            }
        }
    }

    #[test]
    fn degrees_and_hotspots() {
        let mut m = IsingModel::new(5);
        // Star around 2 plus one extra edge: degrees [2,1,3,1,1].
        m.set_coupling(2, 0, 1.0).unwrap();
        m.set_coupling(2, 1, 1.0).unwrap();
        m.set_coupling(2, 3, 1.0).unwrap();
        m.set_coupling(0, 4, 1.0).unwrap();
        assert_eq!(m.degrees(), vec![2, 1, 3, 1, 1]);
        assert_eq!(m.hotspots()[0], 2);
        assert_eq!(m.hotspots()[1], 0);
    }

    #[test]
    fn zero_linear_detection() {
        let mut m = triangle();
        assert!(m.has_zero_linear_terms());
        m.set_linear(2, 0.1).unwrap();
        assert!(!m.has_zero_linear_terms());
    }

    #[test]
    fn adjacency_is_consistent() {
        let m = triangle();
        let adj = m.adjacency();
        assert_eq!(adj[0].len(), 2);
        assert_eq!(adj[1].len(), 2);
        assert_eq!(adj[2].len(), 2);
    }

    #[test]
    fn display_contains_terms() {
        let mut m = IsingModel::new(2);
        m.set_coupling(0, 1, 2.0).unwrap();
        m.set_linear(0, -1.0).unwrap();
        let s = m.to_string();
        assert!(s.contains("z0z1"), "{s}");
        assert!(s.contains("-1"), "{s}");
    }
}
