//! The ±1 spin domain of Ising variables.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A classical spin value, the eigenvalue of a `z`-basis measurement.
///
/// Measuring `|0⟩` yields `+1` and `|1⟩` yields `−1` (§2.1 of the paper).
/// The inner value is guaranteed to be `+1` or `−1`.
///
/// # Example
///
/// ```
/// use fq_ising::Spin;
///
/// let up = Spin::UP;
/// assert_eq!(up.value(), 1);
/// assert_eq!(up.flipped(), Spin::DOWN);
/// assert_eq!(Spin::from_bit(1), Spin::DOWN);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Spin(i8);

impl Spin {
    /// Spin `+1`, the measurement outcome of `|0⟩`.
    pub const UP: Spin = Spin(1);
    /// Spin `−1`, the measurement outcome of `|1⟩`.
    pub const DOWN: Spin = Spin(-1);

    /// Creates a spin from a raw `±1` value.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IsingError::InvalidSpin`] for any value other than
    /// `+1` or `−1`.
    pub fn try_new(value: i8) -> Result<Spin, crate::IsingError> {
        match value {
            1 => Ok(Spin::UP),
            -1 => Ok(Spin::DOWN),
            other => Err(crate::IsingError::InvalidSpin(other)),
        }
    }

    /// Maps the computational-basis bit `0 ↦ +1`, anything nonzero `↦ −1`.
    #[must_use]
    pub fn from_bit(bit: u8) -> Spin {
        if bit == 0 {
            Spin::UP
        } else {
            Spin::DOWN
        }
    }

    /// The `±1` eigenvalue as an integer.
    #[must_use]
    pub fn value(self) -> i8 {
        self.0
    }

    /// The `±1` eigenvalue as a float, convenient in energy sums.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// The computational-basis bit: `+1 ↦ 0`, `−1 ↦ 1`.
    #[must_use]
    pub fn to_bit(self) -> u8 {
        u8::from(self.0 < 0)
    }

    /// The opposite spin.
    #[must_use]
    pub fn flipped(self) -> Spin {
        Spin(-self.0)
    }
}

impl Default for Spin {
    fn default() -> Self {
        Spin::UP
    }
}

impl fmt::Debug for Spin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.0 > 0 { "+1" } else { "-1" })
    }
}

impl fmt::Display for Spin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Spin> for i8 {
    fn from(s: Spin) -> i8 {
        s.value()
    }
}

impl From<Spin> for f64 {
    fn from(s: Spin) -> f64 {
        s.as_f64()
    }
}

impl std::ops::Neg for Spin {
    type Output = Spin;

    fn neg(self) -> Spin {
        self.flipped()
    }
}

impl std::ops::Mul for Spin {
    type Output = Spin;

    fn mul(self, rhs: Spin) -> Spin {
        Spin(self.0 * rhs.0)
    }
}

/// An owned assignment of spins to all variables of a problem.
///
/// This is a thin wrapper over `Vec<Spin>` adding bitstring conversions and
/// the global flip used by the symmetry argument of §3.7.2.
///
/// # Example
///
/// ```
/// use fq_ising::SpinVec;
///
/// let s = SpinVec::from_bits(&[0, 1, 0]);
/// assert_eq!(s.to_bitstring(), "010");
/// assert_eq!(s.flipped().to_bitstring(), "101");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SpinVec(Vec<Spin>);

impl SpinVec {
    /// Creates an all-up assignment of `n` spins.
    #[must_use]
    pub fn all_up(n: usize) -> SpinVec {
        SpinVec(vec![Spin::UP; n])
    }

    /// Creates an assignment from computational-basis bits (`0 ↦ +1`).
    #[must_use]
    pub fn from_bits(bits: &[u8]) -> SpinVec {
        SpinVec(bits.iter().map(|&b| Spin::from_bit(b)).collect())
    }

    /// Creates an assignment of `n` spins from the low bits of `index`,
    /// with variable `i` taking bit `i` (little-endian).
    ///
    /// This is the canonical enumeration order used by the exact solver and
    /// the statevector simulator.
    #[must_use]
    pub fn from_index(index: u64, n: usize) -> SpinVec {
        SpinVec(
            (0..n)
                .map(|i| Spin::from_bit(((index >> i) & 1) as u8))
                .collect(),
        )
    }

    /// The little-endian basis-state index of this assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment holds more than 64 spins.
    #[must_use]
    pub fn to_index(&self) -> u64 {
        assert!(self.0.len() <= 64, "to_index supports at most 64 spins");
        self.0
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, s)| acc | (u64::from(s.to_bit()) << i))
    }

    /// Number of spins.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the assignment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the spins as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Spin] {
        &self.0
    }

    /// The spin of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn spin(&self, i: usize) -> Spin {
        self.0[i]
    }

    /// Sets the spin of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: usize, s: Spin) {
        self.0[i] = s;
    }

    /// Flips spin `i` in place.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn flip(&mut self, i: usize) {
        self.0[i] = self.0[i].flipped();
    }

    /// Returns the assignment with *every* spin flipped — the symmetric
    /// partner point of §3.7.2.
    #[must_use]
    pub fn flipped(&self) -> SpinVec {
        SpinVec(self.0.iter().map(|s| s.flipped()).collect())
    }

    /// Renders as a bitstring with variable 0 leftmost (`+1 ↦ '0'`).
    #[must_use]
    pub fn to_bitstring(&self) -> String {
        self.0
            .iter()
            .map(|s| if s.to_bit() == 0 { '0' } else { '1' })
            .collect()
    }

    /// Parses a bitstring with variable 0 leftmost.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IsingError::InvalidBitstring`] on any character other
    /// than `'0'` or `'1'`.
    pub fn parse_bitstring(s: &str) -> Result<SpinVec, crate::IsingError> {
        s.chars()
            .map(|c| match c {
                '0' => Ok(Spin::UP),
                '1' => Ok(Spin::DOWN),
                other => Err(crate::IsingError::InvalidBitstring(other)),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(SpinVec)
    }

    /// Iterate over the spins.
    pub fn iter(&self) -> std::slice::Iter<'_, Spin> {
        self.0.iter()
    }
}

impl fmt::Debug for SpinVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpinVec({})", self.to_bitstring())
    }
}

impl fmt::Display for SpinVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bitstring())
    }
}

impl From<Vec<Spin>> for SpinVec {
    fn from(v: Vec<Spin>) -> SpinVec {
        SpinVec(v)
    }
}

impl From<SpinVec> for Vec<Spin> {
    fn from(v: SpinVec) -> Vec<Spin> {
        v.0
    }
}

impl FromIterator<Spin> for SpinVec {
    fn from_iter<I: IntoIterator<Item = Spin>>(iter: I) -> SpinVec {
        SpinVec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SpinVec {
    type Item = &'a Spin;
    type IntoIter = std::slice::Iter<'a, Spin>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl IntoIterator for SpinVec {
    type Item = Spin;
    type IntoIter = std::vec::IntoIter<Spin>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl std::ops::Index<usize> for SpinVec {
    type Output = Spin;

    fn index(&self, i: usize) -> &Spin {
        &self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_roundtrips_bits() {
        assert_eq!(Spin::from_bit(0), Spin::UP);
        assert_eq!(Spin::from_bit(1), Spin::DOWN);
        assert_eq!(Spin::UP.to_bit(), 0);
        assert_eq!(Spin::DOWN.to_bit(), 1);
    }

    #[test]
    fn spin_rejects_invalid() {
        assert!(Spin::try_new(0).is_err());
        assert!(Spin::try_new(2).is_err());
        assert_eq!(Spin::try_new(1).unwrap(), Spin::UP);
        assert_eq!(Spin::try_new(-1).unwrap(), Spin::DOWN);
    }

    #[test]
    fn spin_algebra() {
        assert_eq!(Spin::UP * Spin::UP, Spin::UP);
        assert_eq!(Spin::UP * Spin::DOWN, Spin::DOWN);
        assert_eq!(Spin::DOWN * Spin::DOWN, Spin::UP);
        assert_eq!(-Spin::UP, Spin::DOWN);
    }

    #[test]
    fn spinvec_index_roundtrip() {
        for idx in 0..16u64 {
            let v = SpinVec::from_index(idx, 4);
            assert_eq!(v.to_index(), idx);
        }
    }

    #[test]
    fn spinvec_bitstring_roundtrip() {
        let v = SpinVec::from_bits(&[0, 1, 1, 0, 1]);
        assert_eq!(v.to_bitstring(), "01101");
        assert_eq!(SpinVec::parse_bitstring("01101").unwrap(), v);
        assert!(SpinVec::parse_bitstring("01x").is_err());
    }

    #[test]
    fn spinvec_flip_is_involution() {
        let v = SpinVec::from_bits(&[0, 1, 0, 0, 1, 1]);
        assert_eq!(v.flipped().flipped(), v);
        assert_ne!(v.flipped(), v);
    }

    #[test]
    fn spinvec_little_endian_order() {
        // index 1 = bit 0 set = variable 0 is DOWN.
        let v = SpinVec::from_index(1, 3);
        assert_eq!(v.spin(0), Spin::DOWN);
        assert_eq!(v.spin(1), Spin::UP);
        assert_eq!(v.spin(2), Spin::UP);
    }
}
