//! Measurement-outcome distributions and expectation values.
//!
//! Running a QAOA circuit for `τ` trials yields a histogram of measured
//! bitstrings; the classical optimizer consumes the **expectation value** of
//! the Hamiltonian under that histogram, and the final answer is the best
//! single outcome. [`OutputDistribution`] models both uses, plus the global
//! bit-flip transform that infers a pruned sub-problem's distribution from
//! its symmetric partner (§3.7.2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingModel, SpinVec};

/// A histogram of measured spin configurations.
///
/// # Example
///
/// ```
/// use fq_ising::{IsingModel, OutputDistribution, SpinVec};
///
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, 1.0)?;
///
/// let mut d = OutputDistribution::new(2);
/// d.record(SpinVec::from_bits(&[0, 1]), 3); // energy −1
/// d.record(SpinVec::from_bits(&[0, 0]), 1); // energy +1
/// assert_eq!(d.total_shots(), 4);
/// assert_eq!(d.expectation(&m)?, (3.0 * -1.0 + 1.0) / 4.0);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OutputDistribution {
    num_vars: usize,
    counts: HashMap<SpinVec, u64>,
    total: u64,
}

impl OutputDistribution {
    /// Creates an empty distribution over `num_vars` spins.
    #[must_use]
    pub fn new(num_vars: usize) -> OutputDistribution {
        OutputDistribution {
            num_vars,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Number of spin variables per outcome.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of recorded shots.
    #[must_use]
    pub fn total_shots(&self) -> u64 {
        self.total
    }

    /// Number of *distinct* outcomes observed (`s` in §3.8).
    #[must_use]
    pub fn num_outcomes(&self) -> usize {
        self.counts.len()
    }

    /// Records `count` observations of `outcome`.
    ///
    /// # Panics
    ///
    /// Panics if the outcome length does not match `num_vars`.
    pub fn record(&mut self, outcome: SpinVec, count: u64) {
        assert_eq!(
            outcome.len(),
            self.num_vars,
            "outcome length {} != distribution width {}",
            outcome.len(),
            self.num_vars
        );
        *self.counts.entry(outcome).or_insert(0) += count;
        self.total += count;
    }

    /// Iterates over `(outcome, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&SpinVec, u64)> + '_ {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// The empirical probability of `outcome` (0 if never seen or empty).
    #[must_use]
    pub fn probability(&self, outcome: &SpinVec) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.get(outcome).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// The expectation value `⟨C⟩ = Σ p(z)·C(z)` under this distribution.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::Empty`] for an empty distribution and
    /// [`IsingError::DimensionMismatch`] if the model width differs.
    pub fn expectation(&self, model: &IsingModel) -> Result<f64, IsingError> {
        if self.total == 0 {
            return Err(IsingError::Empty);
        }
        let mut acc = 0.0;
        for (z, c) in self.iter() {
            acc += model.energy(z)? * c as f64;
        }
        Ok(acc / self.total as f64)
    }

    /// The lowest-energy outcome observed and its energy. Energy ties go
    /// to the lexicographically smallest outcome, so the result never
    /// depends on the map's iteration order (two runs recording the same
    /// outcomes always agree, whatever order they saw them in).
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::Empty`] for an empty distribution and
    /// [`IsingError::DimensionMismatch`] if the model width differs.
    pub fn best(&self, model: &IsingModel) -> Result<(SpinVec, f64), IsingError> {
        let mut best: Option<(SpinVec, f64)> = None;
        for (z, _) in self.iter() {
            let e = model.energy(z)?;
            let better = match &best {
                None => true,
                Some((bz, be)) => e < *be || (e == *be && z < bz),
            };
            if better {
                best = Some((z.clone(), e));
            }
        }
        best.ok_or(IsingError::Empty)
    }

    /// The most frequently observed outcome.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::Empty`] for an empty distribution.
    pub fn mode(&self) -> Result<(SpinVec, u64), IsingError> {
        self.counts
            .iter()
            .max_by_key(|&(z, &c)| (c, std::cmp::Reverse(z.clone())))
            .map(|(z, &c)| (z.clone(), c))
            .ok_or(IsingError::Empty)
    }

    /// The distribution with **every bit of every outcome flipped** — the
    /// symmetric partner's distribution per §3.7.2.
    #[must_use]
    pub fn flipped(&self) -> OutputDistribution {
        let mut out = OutputDistribution::new(self.num_vars);
        for (z, c) in self.iter() {
            out.record(z.flipped(), c);
        }
        out
    }

    /// Merges another distribution into this one.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if widths differ.
    pub fn merge(&mut self, other: &OutputDistribution) -> Result<(), IsingError> {
        if other.num_vars != self.num_vars {
            return Err(IsingError::DimensionMismatch {
                got: other.num_vars,
                expected: self.num_vars,
            });
        }
        for (z, c) in other.iter() {
            self.record(z.clone(), c);
        }
        Ok(())
    }

    /// Maps every outcome through a [`crate::FrozenProblem`] decode, producing a
    /// distribution over the parent problem's variables.
    ///
    /// # Errors
    ///
    /// Propagates decode errors on width mismatch.
    pub fn decode(&self, frozen: &crate::FrozenProblem) -> Result<OutputDistribution, IsingError> {
        let mut out = OutputDistribution::new(frozen.parent_vars());
        for (z, c) in self.iter() {
            out.record(frozen.decode(z)?, c);
        }
        Ok(out)
    }

    /// The `k` most frequent outcomes, ties broken deterministically.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(SpinVec, u64)> {
        let mut all: Vec<(SpinVec, u64)> = self.iter().map(|(z, c)| (z.clone(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

impl FromIterator<(SpinVec, u64)> for OutputDistribution {
    /// Collects `(outcome, count)` pairs; the width is taken from the first
    /// outcome (empty input produces a zero-width distribution).
    fn from_iter<I: IntoIterator<Item = (SpinVec, u64)>>(iter: I) -> OutputDistribution {
        let mut it = iter.into_iter().peekable();
        let width = it.peek().map_or(0, |(z, _)| z.len());
        let mut d = OutputDistribution::new(width);
        for (z, c) in it {
            d.record(z, c);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spin;

    fn pair_model() -> IsingModel {
        let mut m = IsingModel::new(2);
        m.set_coupling(0, 1, 1.0).unwrap();
        m
    }

    #[test]
    fn expectation_weights_by_counts() {
        let m = pair_model();
        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 0]), 1); // +1
        d.record(SpinVec::from_bits(&[0, 1]), 3); // −1
        assert!((d.expectation(&m).unwrap() - -0.5).abs() < 1e-12);
    }

    #[test]
    fn best_and_mode_differ_when_noise_dominates() {
        let m = pair_model();
        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 0]), 10); // common but bad (+1)
        d.record(SpinVec::from_bits(&[1, 0]), 2); // rare but optimal (−1)
        assert_eq!(d.mode().unwrap().0, SpinVec::from_bits(&[0, 0]));
        assert_eq!(d.best(&m).unwrap().0, SpinVec::from_bits(&[1, 0]));
    }

    #[test]
    fn flipped_preserves_counts_and_symmetric_expectation() {
        let m = pair_model();
        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 1]), 5);
        d.record(SpinVec::from_bits(&[0, 0]), 2);
        let f = d.flipped();
        assert_eq!(f.total_shots(), d.total_shots());
        assert_eq!(
            f.probability(&SpinVec::from_bits(&[1, 0])),
            d.probability(&SpinVec::from_bits(&[0, 1]))
        );
        // Symmetric model ⇒ identical expectation on the flipped distribution.
        assert!((d.expectation(&m).unwrap() - f.expectation(&m).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn best_breaks_energy_ties_deterministically() {
        // A zero-coupling model makes every outcome's energy 0: all four
        // outcomes tie, so only the lexicographic rule can decide —
        // independent of the backing map's iteration order.
        let m = IsingModel::new(2);
        for _ in 0..8 {
            // Fresh maps get fresh hash seeds; the answer must not move.
            let mut d = OutputDistribution::new(2);
            for bits in [[1, 1], [0, 1], [1, 0], [0, 0]] {
                d.record(SpinVec::from_bits(&bits), 1);
            }
            let (z, e) = d.best(&m).unwrap();
            // Smallest by `SpinVec`'s ordering: DOWN (−1, bit 1) sorts
            // before UP (+1, bit 0), so the all-down outcome wins.
            assert_eq!(z, SpinVec::from_bits(&[1, 1]));
            assert_eq!(e, 0.0);
        }
    }

    #[test]
    fn decode_lifts_to_parent_space() {
        let mut parent = IsingModel::new(3);
        parent.set_coupling(0, 1, 1.0).unwrap();
        parent.set_coupling(1, 2, 1.0).unwrap();
        let frozen = parent.freeze(&[(1, Spin::DOWN)]).unwrap();

        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 1]), 4);
        let lifted = d.decode(&frozen).unwrap();
        assert_eq!(lifted.num_vars(), 3);
        let expect = SpinVec::from_bits(&[0, 1, 1]); // frozen z1=−1 in the middle
        assert_eq!(lifted.probability(&expect), 1.0);
        // Sub-model expectation equals parent expectation of decoded dist.
        let e_sub = d.expectation(frozen.model()).unwrap();
        let e_parent = lifted.expectation(&parent).unwrap();
        assert!((e_sub - e_parent).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OutputDistribution::new(1);
        a.record(SpinVec::from_bits(&[0]), 1);
        let mut b = OutputDistribution::new(1);
        b.record(SpinVec::from_bits(&[0]), 2);
        b.record(SpinVec::from_bits(&[1]), 3);
        a.merge(&b).unwrap();
        assert_eq!(a.total_shots(), 6);
        assert_eq!(a.num_outcomes(), 2);
        let wrong = OutputDistribution::new(2);
        assert!(a.merge(&wrong).is_err());
    }

    #[test]
    fn empty_distribution_errors() {
        let d = OutputDistribution::new(2);
        assert!(matches!(
            d.expectation(&pair_model()),
            Err(IsingError::Empty)
        ));
        assert!(matches!(d.best(&pair_model()), Err(IsingError::Empty)));
        assert!(matches!(d.mode(), Err(IsingError::Empty)));
    }

    #[test]
    fn top_k_orders_by_count() {
        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 0]), 1);
        d.record(SpinVec::from_bits(&[1, 1]), 5);
        d.record(SpinVec::from_bits(&[0, 1]), 3);
        let top = d.top_k(2);
        assert_eq!(top[0].1, 5);
        assert_eq!(top[1].1, 3);
    }

    #[test]
    fn collects_from_iterator() {
        let d: OutputDistribution =
            vec![(SpinVec::from_bits(&[0]), 2), (SpinVec::from_bits(&[1]), 1)]
                .into_iter()
                .collect();
        assert_eq!(d.total_shots(), 3);
        assert_eq!(d.num_vars(), 1);
    }
}
