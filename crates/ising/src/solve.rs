//! Classical solvers used to obtain reference optima (`C_min`) for the
//! Approximation-Ratio metrics (Eqs. 4–5) and as sanity baselines.
//!
//! * [`exact_solve`] — exhaustive Gray-code search, exact up to 30 variables;
//! * [`simulated_annealing`] — the standard workhorse for the 500-qubit
//!   practical-scale study of §6, where exhaustive search is impossible;
//! * [`greedy_descent`] — restarted single-spin-flip local search.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingModel, Spin, SpinVec};

/// The result of an exhaustive search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactSolution {
    /// One global minimizer (the first found in Gray-code order).
    pub best: SpinVec,
    /// The global minimum energy `C_min`.
    pub energy: f64,
    /// How many assignments attain the minimum (even for symmetric models).
    pub num_optima: usize,
}

/// Exhaustively minimizes `C(z)` by enumerating the state space in Gray-code
/// order, so each step flips exactly one spin and updates the energy in
/// `O(deg)` time.
///
/// # Errors
///
/// Returns [`IsingError::ProblemTooLarge`] for models with more than 30
/// variables, and [`IsingError::Empty`] for zero-variable models.
///
/// # Example
///
/// ```
/// use fq_ising::{solve::exact_solve, IsingModel};
///
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, 1.0)?; // antiferromagnetic pair
/// let sol = exact_solve(&m)?;
/// assert_eq!(sol.energy, -1.0);
/// assert_eq!(sol.num_optima, 2); // (+1,−1) and (−1,+1)
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
pub fn exact_solve(model: &IsingModel) -> Result<ExactSolution, IsingError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(IsingError::Empty);
    }
    if n > 30 {
        return Err(IsingError::ProblemTooLarge {
            num_vars: n,
            limit: 30,
        });
    }

    let adj = model.adjacency();
    let mut z = SpinVec::all_up(n);
    let mut energy = model.energy(&z)?;
    let mut best = z.clone();
    let mut best_energy = energy;
    let mut num_optima = 1usize;

    for step in 1..(1u64 << n) {
        // Gray code: bit flipped at step t is trailing_zeros(t).
        let k = step.trailing_zeros() as usize;
        let mut local = model.linear(k);
        for &(j, jij) in &adj[k] {
            local += jij * z.spin(j).as_f64();
        }
        energy += -2.0 * local * z.spin(k).as_f64();
        z.flip(k);

        if energy < best_energy - 1e-12 {
            best_energy = energy;
            best = z.clone();
            num_optima = 1;
        } else if (energy - best_energy).abs() <= 1e-12 {
            num_optima += 1;
        }
    }

    Ok(ExactSolution {
        best,
        energy: best_energy,
        num_optima,
    })
}

/// Configuration for [`simulated_annealing`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Number of full sweeps (each sweep proposes one flip per variable).
    pub sweeps: usize,
    /// Independent restarts; the best result over restarts is returned.
    pub restarts: usize,
    /// Initial inverse temperature.
    pub beta_start: f64,
    /// Final inverse temperature.
    pub beta_end: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            sweeps: 200,
            restarts: 4,
            beta_start: 0.1,
            beta_end: 5.0,
        }
    }
}

/// Minimizes `C(z)` with restarted simulated annealing under a geometric
/// inverse-temperature schedule. Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Returns [`IsingError::Empty`] for zero-variable models.
pub fn simulated_annealing(
    model: &IsingModel,
    config: &AnnealConfig,
    seed: u64,
) -> Result<(SpinVec, f64), IsingError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(IsingError::Empty);
    }
    let adj = model.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(SpinVec, f64)> = None;

    for _ in 0..config.restarts.max(1) {
        let mut z: SpinVec = (0..n)
            .map(|_| {
                if rng.random::<bool>() {
                    Spin::UP
                } else {
                    Spin::DOWN
                }
            })
            .collect();
        let mut energy = model.energy(&z)?;
        let sweeps = config.sweeps.max(1);
        for sweep in 0..sweeps {
            let t = sweep as f64 / sweeps as f64;
            let beta = config.beta_start * (config.beta_end / config.beta_start).powf(t);
            for _ in 0..n {
                let k = rng.random_range(0..n);
                let mut local = model.linear(k);
                for &(j, jij) in &adj[k] {
                    local += jij * z.spin(j).as_f64();
                }
                let delta = -2.0 * local * z.spin(k).as_f64();
                if delta <= 0.0 || rng.random::<f64>() < (-beta * delta).exp() {
                    z.flip(k);
                    energy += delta;
                }
            }
        }
        // Polish with a greedy pass so the answer is at least locally optimal.
        energy += descend(model, &adj, &mut z);
        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
            best = Some((z, energy));
        }
    }

    Ok(best.expect("at least one restart"))
}

/// Restarted steepest-descent local search over single spin flips.
/// Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Returns [`IsingError::Empty`] for zero-variable models.
pub fn greedy_descent(
    model: &IsingModel,
    restarts: usize,
    seed: u64,
) -> Result<(SpinVec, f64), IsingError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(IsingError::Empty);
    }
    let adj = model.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(SpinVec, f64)> = None;
    for _ in 0..restarts.max(1) {
        let mut z: SpinVec = (0..n)
            .map(|_| {
                if rng.random::<bool>() {
                    Spin::UP
                } else {
                    Spin::DOWN
                }
            })
            .collect();
        let mut energy = model.energy(&z)?;
        energy += descend(model, &adj, &mut z);
        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
            best = Some((z, energy));
        }
    }
    Ok(best.expect("at least one restart"))
}

/// Configuration for [`tabu_search`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TabuConfig {
    /// Total single-flip moves to attempt.
    pub iterations: usize,
    /// How many moves a flipped variable stays tabu.
    pub tenure: usize,
    /// Independent restarts.
    pub restarts: usize,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            iterations: 2_000,
            tenure: 10,
            restarts: 2,
        }
    }
}

/// Minimizes `C(z)` with tabu search: best-improvement single-spin flips,
/// a recency-based tabu list, and the standard aspiration criterion (a
/// tabu move is allowed if it beats the best solution seen). Deterministic
/// for a fixed `seed`.
///
/// Tabu search escapes the local minima that trap [`greedy_descent`] and
/// typically matches [`simulated_annealing`] on frustrated instances with
/// far fewer energy evaluations.
///
/// # Errors
///
/// Returns [`IsingError::Empty`] for zero-variable models.
///
/// # Example
///
/// ```
/// use fq_ising::solve::{tabu_search, TabuConfig};
/// use fq_ising::IsingModel;
///
/// let mut m = IsingModel::new(4);
/// for i in 0..4 {
///     m.set_coupling(i, (i + 1) % 4, 1.0)?; // antiferromagnetic ring
/// }
/// let (_, energy) = tabu_search(&m, &TabuConfig::default(), 1)?;
/// assert_eq!(energy, -4.0);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
pub fn tabu_search(
    model: &IsingModel,
    config: &TabuConfig,
    seed: u64,
) -> Result<(SpinVec, f64), IsingError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(IsingError::Empty);
    }
    let adj = model.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(SpinVec, f64)> = None;

    for _ in 0..config.restarts.max(1) {
        let mut z: SpinVec = (0..n)
            .map(|_| {
                if rng.random::<bool>() {
                    Spin::UP
                } else {
                    Spin::DOWN
                }
            })
            .collect();
        let mut energy = model.energy(&z)?;
        let mut local_best = energy;
        let mut tabu_until = vec![0usize; n];
        // A tenure close to n makes nearly every variable tabu and forces
        // deterministic cycling; cap it well below the variable count and
        // jitter it so cycles break.
        let base_tenure = config.tenure.min((n / 3).max(1));

        for step in 1..=config.iterations.max(1) {
            // Best admissible flip (non-tabu, or aspirating).
            let mut chosen: Option<(usize, f64)> = None;
            for k in 0..n {
                let mut local = model.linear(k);
                for &(j, jij) in &adj[k] {
                    local += jij * z.spin(j).as_f64();
                }
                let delta = -2.0 * local * z.spin(k).as_f64();
                let is_tabu = tabu_until[k] > step;
                let aspirates = energy + delta < local_best - 1e-12;
                if is_tabu && !aspirates {
                    continue;
                }
                if chosen.is_none_or(|(_, d)| delta < d) {
                    chosen = Some((k, delta));
                }
            }
            let Some((k, delta)) = chosen else { break };
            z.flip(k);
            energy += delta;
            tabu_until[k] = step + base_tenure + rng.random_range(0..=base_tenure);
            if energy < local_best {
                local_best = energy;
            }
            if best.as_ref().is_none_or(|(_, e)| energy < *e) {
                best = Some((z.clone(), energy));
            }
        }
        if best.as_ref().is_none_or(|(_, e)| energy < *e) {
            best = Some((z, energy));
        }
    }
    Ok(best.expect("at least one restart"))
}

/// Flips spins while any flip improves; returns the total energy change.
fn descend(model: &IsingModel, adj: &[Vec<(usize, f64)>], z: &mut SpinVec) -> f64 {
    let mut total = 0.0;
    loop {
        let mut improved = false;
        for (k, neighbours) in adj.iter().enumerate() {
            let mut local = model.linear(k);
            for &(j, jij) in neighbours {
                local += jij * z.spin(j).as_f64();
            }
            let delta = -2.0 * local * z.spin(k).as_f64();
            if delta < -1e-12 {
                z.flip(k);
                total += delta;
                improved = true;
            }
        }
        if !improved {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frustrated_ring(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            let w = if i == 0 { -1.0 } else { 1.0 };
            m.set_coupling(i, (i + 1) % n, w).unwrap();
        }
        m
    }

    #[test]
    fn exact_matches_naive_enumeration() {
        let m = frustrated_ring(6);
        let sol = exact_solve(&m).unwrap();
        let mut naive_best = f64::INFINITY;
        let mut naive_count = 0usize;
        for idx in 0..64u64 {
            let e = m.energy(&SpinVec::from_index(idx, 6)).unwrap();
            if e < naive_best - 1e-12 {
                naive_best = e;
                naive_count = 1;
            } else if (e - naive_best).abs() <= 1e-12 {
                naive_count += 1;
            }
        }
        assert!((sol.energy - naive_best).abs() < 1e-12);
        assert_eq!(sol.num_optima, naive_count);
        assert!((m.energy(&sol.best).unwrap() - sol.energy).abs() < 1e-12);
    }

    #[test]
    fn exact_respects_linear_terms_and_offset() {
        let mut m = IsingModel::new(3);
        m.set_linear(0, 10.0).unwrap();
        m.set_linear(1, -1.0).unwrap();
        m.set_offset(3.0);
        let sol = exact_solve(&m).unwrap();
        // Optimal: z0 = −1, z1 = +1, z2 free → energy 3 − 10 − 1 = −8, two optima.
        assert!((sol.energy - -8.0).abs() < 1e-12);
        assert_eq!(sol.num_optima, 2);
    }

    #[test]
    fn exact_rejects_oversized_problems() {
        let m = IsingModel::new(31);
        assert!(matches!(
            exact_solve(&m),
            Err(IsingError::ProblemTooLarge { .. })
        ));
        assert!(matches!(
            exact_solve(&IsingModel::new(0)),
            Err(IsingError::Empty)
        ));
    }

    #[test]
    fn annealing_finds_exact_optimum_on_small_instances() {
        let m = frustrated_ring(10);
        let exact = exact_solve(&m).unwrap();
        let (z, e) = simulated_annealing(&m, &AnnealConfig::default(), 7).unwrap();
        assert!(
            (e - exact.energy).abs() < 1e-9,
            "SA {e} vs exact {}",
            exact.energy
        );
        assert!((m.energy(&z).unwrap() - e).abs() < 1e-9);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let m = frustrated_ring(12);
        let a = simulated_annealing(&m, &AnnealConfig::default(), 3).unwrap();
        let b = simulated_annealing(&m, &AnnealConfig::default(), 3).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn greedy_reaches_a_local_minimum() {
        let m = frustrated_ring(8);
        let (z, e) = greedy_descent(&m, 5, 11).unwrap();
        assert!((m.energy(&z).unwrap() - e).abs() < 1e-12);
        // No single flip improves.
        for k in 0..8 {
            assert!(m.flip_delta(&z, k).unwrap() >= -1e-12);
        }
    }

    #[test]
    fn tabu_matches_exact_on_frustrated_rings() {
        for n in [8usize, 11, 14] {
            let m = frustrated_ring(n);
            let exact = exact_solve(&m).unwrap();
            let (z, e) = tabu_search(&m, &TabuConfig::default(), 5).unwrap();
            assert!(
                (e - exact.energy).abs() < 1e-9,
                "n={n}: tabu {e} vs {}",
                exact.energy
            );
            assert!((m.energy(&z).unwrap() - e).abs() < 1e-9);
        }
    }

    #[test]
    fn tabu_is_deterministic_per_seed() {
        let m = frustrated_ring(12);
        let a = tabu_search(&m, &TabuConfig::default(), 9).unwrap();
        let b = tabu_search(&m, &TabuConfig::default(), 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tabu_escapes_greedy_traps() {
        // On a larger frustrated instance, tabu should never do worse than
        // single-restart greedy from the same seed.
        let m = frustrated_ring(20);
        let (_, greedy_e) = greedy_descent(&m, 1, 2).unwrap();
        let (_, tabu_e) = tabu_search(&m, &TabuConfig::default(), 2).unwrap();
        assert!(tabu_e <= greedy_e + 1e-12);
    }

    #[test]
    fn symmetric_model_has_even_optima_in_exact_count() {
        let m = frustrated_ring(5);
        assert!(m.has_zero_linear_terms());
        let sol = exact_solve(&m).unwrap();
        assert_eq!(sol.num_optima % 2, 0);
    }
}
