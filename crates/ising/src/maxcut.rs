//! Max-Cut encoding (§2.1 of the paper).
//!
//! For every edge `(i, j)` with weight `w_ij`, the Ising Hamiltonian gains
//! the term `w_ij·z_i·z_j`; minimizing it pushes adjacent nodes into
//! opposite partitions (`z_i·z_j = −1` means "separate cuts"). All node
//! weights are zero, so Max-Cut instances always satisfy the spin-flip
//! symmetry precondition of §3.7.2.

use crate::{IsingError, IsingModel, SpinVec};

/// Builds the Max-Cut Ising Hamiltonian for weighted `edges` over
/// `num_nodes` nodes: `C(z) = Σ w_ij·z_i·z_j`.
///
/// Repeated edges accumulate their weights.
///
/// # Errors
///
/// Returns [`IsingError::VariableOutOfRange`] for an endpoint beyond
/// `num_nodes` and [`IsingError::SelfCoupling`] for self-loops.
///
/// # Example
///
/// ```
/// use fq_ising::maxcut::{cut_value, maxcut_to_ising};
/// use fq_ising::SpinVec;
///
/// // A triangle: the best cut severs 2 of the 3 edges.
/// let edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)];
/// let model = maxcut_to_ising(3, &edges)?;
/// let z = SpinVec::from_bits(&[0, 1, 0]); // node 1 alone on one side
/// assert_eq!(cut_value(&edges, &z)?, 2.0);
/// // Ising energy = (#same-side) − (#cut) = 1 − 2 = −1
/// assert_eq!(model.energy(&z)?, -1.0);
/// # Ok::<(), fq_ising::IsingError>(())
/// ```
pub fn maxcut_to_ising(
    num_nodes: usize,
    edges: &[(usize, usize, f64)],
) -> Result<IsingModel, IsingError> {
    let mut m = IsingModel::new(num_nodes);
    for &(i, j, w) in edges {
        m.add_coupling(i, j, w)?;
    }
    Ok(m)
}

/// The total weight of edges crossing the partition induced by `z`
/// (nodes with different spins are on different sides).
///
/// # Errors
///
/// Returns [`IsingError::VariableOutOfRange`] if an edge endpoint is outside
/// the assignment.
pub fn cut_value(edges: &[(usize, usize, f64)], z: &SpinVec) -> Result<f64, IsingError> {
    let mut cut = 0.0;
    for &(i, j, w) in edges {
        if i >= z.len() || j >= z.len() {
            return Err(IsingError::VariableOutOfRange {
                index: i.max(j),
                num_vars: z.len(),
            });
        }
        if z.spin(i) != z.spin(j) {
            cut += w;
        }
    }
    Ok(cut)
}

/// Recovers the cut value from an Ising energy of a Max-Cut model:
/// `cut = (W − C(z)) / 2` where `W` is the total edge weight.
#[must_use]
pub fn cut_from_energy(total_weight: f64, energy: f64) -> f64 {
    (total_weight - energy) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::is_spin_flip_symmetric;

    #[test]
    fn triangle_cut_and_energy_are_consistent() {
        let edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)];
        let m = maxcut_to_ising(3, &edges).unwrap();
        let total: f64 = edges.iter().map(|e| e.2).sum();
        for idx in 0..8u64 {
            let z = SpinVec::from_index(idx, 3);
            let direct = cut_value(&edges, &z).unwrap();
            let via_energy = cut_from_energy(total, m.energy(&z).unwrap());
            assert!((direct - via_energy).abs() < 1e-12);
        }
    }

    #[test]
    fn maxcut_models_are_symmetric() {
        let edges = [(0, 1, 2.0), (1, 2, -1.0)];
        let m = maxcut_to_ising(3, &edges).unwrap();
        assert!(is_spin_flip_symmetric(&m));
    }

    #[test]
    fn repeated_edges_accumulate() {
        let m = maxcut_to_ising(2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(m.coupling(0, 1), 3.0);
    }

    #[test]
    fn rejects_self_loop() {
        assert!(maxcut_to_ising(2, &[(1, 1, 1.0)]).is_err());
    }
}
