//! The spin-flip symmetry theorem of §3.7.2 and the sub-problem pruning it
//! enables.
//!
//! **Theorem.** If every linear coefficient of an Ising Hamiltonian is zero,
//! then `C(z) = C(−z)` for all `z`: each quadratic term `J_ij·z_i·z_j` is
//! invariant under the global flip because the product of two flipped spins
//! is unchanged. Consequently the number of global minima is even, and the
//! two sub-problems obtained by freezing any one qubit with `+1` / `−1` are
//! mirror images of one another.
//!
//! FrozenQubits exploits this to run only half of the `2^m` sub-problems:
//! each executed branch's partner is the branch with **all** frozen spins
//! negated, and the partner's output distribution is obtained by flipping
//! every bit of the executed branch's outcomes ([`partner_mask`],
//! [`representative_masks`]).

use crate::{IsingError, IsingModel, SpinVec};

/// Whether the model is symmetric under the global spin flip.
///
/// For Ising Hamiltonians this is exactly the condition "all linear
/// coefficients are zero" — sufficient by the theorem above, and necessary
/// because `C(z) − C(−z) = 2·Σ h_i z_i` which is non-zero somewhere unless
/// every `h_i` vanishes.
#[must_use]
pub fn is_spin_flip_symmetric(model: &IsingModel) -> bool {
    model.has_zero_linear_terms()
}

/// Exhaustively verifies `C(z) = C(−z)` over the whole state space.
///
/// Intended for tests and demonstrations; the analytic check
/// [`is_spin_flip_symmetric`] is `O(N)`.
///
/// # Errors
///
/// Returns [`IsingError::ProblemTooLarge`] for models with more than 24
/// variables.
pub fn verify_spin_flip_symmetry(model: &IsingModel) -> Result<bool, IsingError> {
    let n = model.num_vars();
    if n > 24 {
        return Err(IsingError::ProblemTooLarge {
            num_vars: n,
            limit: 24,
        });
    }
    for idx in 0..(1u64 << n) {
        let z = SpinVec::from_index(idx, n);
        let e = model.energy(&z)?;
        let ef = model.energy(&z.flipped())?;
        if (e - ef).abs() > 1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The bitmask of the branch that is the global-flip partner of `mask`
/// when `m` qubits are frozen: all `m` frozen spins negated.
///
/// Masks follow the convention of
/// [`enumerate_subproblems`](crate::enumerate_subproblems): bit `t` set
/// means frozen qubit `t` takes spin `−1`.
#[must_use]
pub fn partner_mask(mask: u64, m: usize) -> u64 {
    !mask & ((1u64 << m) - 1)
}

/// The canonical half of the `2^m` branches to actually execute when the
/// parent model is spin-flip symmetric: the branches whose **first** frozen
/// qubit is `+1` (bit 0 clear). Every omitted branch is the
/// [`partner_mask`] of exactly one returned mask.
#[must_use]
pub fn representative_masks(m: usize) -> Vec<u64> {
    if m == 0 {
        return vec![0];
    }
    (0..(1u64 << m)).filter(|mask| mask & 1 == 0).collect()
}

/// Counts the global minima of a small model by exhaustive search, used to
/// demonstrate the theorem's corollary that symmetric models have an even
/// number of minima.
///
/// # Errors
///
/// Returns [`IsingError::ProblemTooLarge`] for models with more than 24
/// variables.
pub fn count_global_minima(model: &IsingModel) -> Result<usize, IsingError> {
    let n = model.num_vars();
    if n > 24 {
        return Err(IsingError::ProblemTooLarge {
            num_vars: n,
            limit: 24,
        });
    }
    let mut best = f64::INFINITY;
    let mut count = 0usize;
    for idx in 0..(1u64 << n) {
        let e = model.energy(&SpinVec::from_index(idx, n))?;
        if e < best - 1e-12 {
            best = e;
            count = 1;
        } else if (e - best).abs() <= 1e-12 {
            count += 1;
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Spin;

    fn symmetric_model() -> IsingModel {
        let mut m = IsingModel::new(4);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(1, 2, -1.0).unwrap();
        m.set_coupling(2, 3, 1.0).unwrap();
        m.set_coupling(0, 3, 1.0).unwrap();
        m
    }

    #[test]
    fn zero_linear_models_are_symmetric() {
        let m = symmetric_model();
        assert!(is_spin_flip_symmetric(&m));
        assert!(verify_spin_flip_symmetry(&m).unwrap());
    }

    #[test]
    fn nonzero_linear_breaks_symmetry() {
        let mut m = symmetric_model();
        m.set_linear(2, 0.5).unwrap();
        assert!(!is_spin_flip_symmetric(&m));
        assert!(!verify_spin_flip_symmetry(&m).unwrap());
    }

    #[test]
    fn symmetric_models_have_even_minima_count() {
        let m = symmetric_model();
        let c = count_global_minima(&m).unwrap();
        assert_eq!(c % 2, 0);
        assert!(c >= 2);
    }

    #[test]
    fn partner_mask_is_involution_and_complements() {
        for m in 1..=4usize {
            for mask in 0..(1u64 << m) {
                let p = partner_mask(mask, m);
                assert_eq!(partner_mask(p, m), mask);
                assert_eq!(mask & p, 0);
                assert_eq!(mask | p, (1 << m) - 1);
            }
        }
    }

    #[test]
    fn representatives_cover_all_branches_once() {
        for m in 1..=5usize {
            let reps = representative_masks(m);
            assert_eq!(reps.len(), 1 << (m - 1));
            let mut seen = vec![false; 1 << m];
            for &r in &reps {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
                let p = partner_mask(r, m) as usize;
                assert!(!seen[p]);
                seen[p] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn partner_subproblem_solutions_are_flips() {
        // For a symmetric parent, the optimum of the +1 branch, flipped,
        // must be an optimum of the −1 branch with the same energy.
        let m = symmetric_model();
        let plus = m.freeze(&[(0, Spin::UP)]).unwrap();
        let minus = m.freeze(&[(0, Spin::DOWN)]).unwrap();
        for idx in 0..8u64 {
            let y = SpinVec::from_index(idx, 3);
            let e_plus = plus.model().energy(&y).unwrap();
            let e_minus = minus.model().energy(&y.flipped()).unwrap();
            assert!((e_plus - e_minus).abs() < 1e-12);
        }
    }

    #[test]
    fn m_zero_has_single_representative() {
        assert_eq!(representative_masks(0), vec![0]);
    }
}
