//! Error type shared by the crate's fallible operations.

use std::error::Error;
use std::fmt;

/// Errors produced by Ising-model construction, freezing and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsingError {
    /// A variable index was at or beyond the model's variable count.
    VariableOutOfRange {
        /// The offending index.
        index: usize,
        /// The model's variable count.
        num_vars: usize,
    },
    /// A quadratic term `J_ii` (self-coupling) was requested.
    SelfCoupling(usize),
    /// A spin value other than ±1 was supplied.
    InvalidSpin(i8),
    /// A bitstring contained a character other than '0'/'1'.
    InvalidBitstring(char),
    /// An assignment's length did not match the model's variable count.
    DimensionMismatch {
        /// Length of the supplied assignment.
        got: usize,
        /// Variable count of the model.
        expected: usize,
    },
    /// The same variable was frozen twice in one freezing request.
    DuplicateFreeze(usize),
    /// The exact solver was asked for a state space beyond its limit.
    ProblemTooLarge {
        /// Requested variable count.
        num_vars: usize,
        /// Maximum supported by the exhaustive solver.
        limit: usize,
    },
    /// A coefficient was non-finite (NaN or ±∞).
    NonFiniteCoefficient {
        /// Human-readable location of the coefficient (e.g. `h[3]`).
        place: String,
    },
    /// An operation required a non-empty model or distribution.
    Empty,
}

impl fmt::Display for IsingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsingError::VariableOutOfRange { index, num_vars } => {
                write!(
                    f,
                    "variable index {index} out of range for {num_vars} variables"
                )
            }
            IsingError::SelfCoupling(i) => write!(f, "self-coupling J[{i},{i}] is not allowed"),
            IsingError::InvalidSpin(v) => write!(f, "spin value must be +1 or -1, got {v}"),
            IsingError::InvalidBitstring(c) => {
                write!(f, "bitstring may only contain '0' and '1', got {c:?}")
            }
            IsingError::DimensionMismatch { got, expected } => {
                write!(
                    f,
                    "assignment has {got} spins but the model has {expected} variables"
                )
            }
            IsingError::DuplicateFreeze(i) => {
                write!(f, "variable {i} appears more than once in the freeze set")
            }
            IsingError::ProblemTooLarge { num_vars, limit } => {
                write!(
                    f,
                    "exhaustive search over {num_vars} variables exceeds the limit of {limit}"
                )
            }
            IsingError::NonFiniteCoefficient { place } => {
                write!(f, "coefficient {place} must be finite")
            }
            IsingError::Empty => write!(f, "operation requires a non-empty input"),
        }
    }
}

impl Error for IsingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            IsingError::VariableOutOfRange {
                index: 5,
                num_vars: 3,
            },
            IsingError::SelfCoupling(1),
            IsingError::InvalidSpin(0),
            IsingError::InvalidBitstring('x'),
            IsingError::DimensionMismatch {
                got: 2,
                expected: 3,
            },
            IsingError::DuplicateFreeze(0),
            IsingError::ProblemTooLarge {
                num_vars: 64,
                limit: 30,
            },
            IsingError::NonFiniteCoefficient {
                place: "h[0]".into(),
            },
            IsingError::Empty,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsingError>();
    }
}
