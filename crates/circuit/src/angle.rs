//! Symbolic rotation angles for parametric QAOA circuits.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::CircuitError;

/// A rotation angle that is either a concrete number or a scaled QAOA
/// parameter.
///
/// QAOA circuits with `p` layers carry `2p` trainable parameters
/// `(γ_1..γ_p, β_1..β_p)`. Every rotation in the circuit is a fixed problem
/// coefficient times one of these parameters — e.g. the phase-splitting
/// rotation for edge `(i, j)` in layer `l` is `Rz(2·J_ij·γ_l)`, represented
/// as `Angle::Gamma { layer: l, scale: 2·J_ij, term }`.
///
/// The `term` field records **which Hamiltonian term** the rotation encodes
/// (see [`crate::build_qaoa_circuit`] for the numbering). It is what makes
/// the template editing of §3.7.1 robust: after routing reorders and maps
/// gates, each rotation still knows its term, so re-targeting a compiled
/// circuit to a sibling sub-problem is a scale rewrite — no recompilation.
///
/// # Example
///
/// ```
/// use fq_circuit::Angle;
///
/// let a = Angle::Gamma { layer: 0, scale: 2.0, term: 5 };
/// assert_eq!(a.bind(&[0.25], &[]).unwrap(), 0.5);
/// assert_eq!(Angle::Constant(1.5).bind(&[], &[]).unwrap(), 1.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Angle {
    /// A fully bound angle in radians.
    Constant(f64),
    /// `scale · γ_layer` (zero-based layer index).
    Gamma {
        /// Which QAOA layer's `γ` this angle uses.
        layer: usize,
        /// The multiplier applied to `γ` (typically `2·J_ij` or `2·h_i`).
        scale: f64,
        /// Canonical index of the Hamiltonian term this rotation encodes.
        term: usize,
    },
    /// `scale · β_layer` (zero-based layer index).
    Beta {
        /// Which QAOA layer's `β` this angle uses.
        layer: usize,
        /// The multiplier applied to `β` (typically `2`).
        scale: f64,
    },
}

impl Angle {
    /// Resolves the angle against concrete parameter vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::LayerOutOfRange`] if a symbolic angle refers
    /// to a layer beyond the supplied vectors.
    pub fn bind(&self, gammas: &[f64], betas: &[f64]) -> Result<f64, CircuitError> {
        match *self {
            Angle::Constant(v) => Ok(v),
            Angle::Gamma { layer, scale, .. } => {
                gammas
                    .get(layer)
                    .map(|g| scale * g)
                    .ok_or(CircuitError::LayerOutOfRange {
                        layer,
                        layers: gammas.len(),
                    })
            }
            Angle::Beta { layer, scale } => {
                betas
                    .get(layer)
                    .map(|b| scale * b)
                    .ok_or(CircuitError::LayerOutOfRange {
                        layer,
                        layers: betas.len(),
                    })
            }
        }
    }

    /// Whether the angle still references a trainable parameter.
    #[must_use]
    pub fn is_symbolic(&self) -> bool {
        !matches!(self, Angle::Constant(_))
    }

    /// Attempts to fuse with another angle (for adjacent-`Rz` merging):
    /// succeeds for two constants, or two symbols of the same kind, layer
    /// **and term** (so fused rotations remain re-targetable).
    #[must_use]
    pub fn try_add(&self, other: &Angle) -> Option<Angle> {
        match (*self, *other) {
            (Angle::Constant(a), Angle::Constant(b)) => Some(Angle::Constant(a + b)),
            (
                Angle::Gamma {
                    layer: la,
                    scale: sa,
                    term: ta,
                },
                Angle::Gamma {
                    layer: lb,
                    scale: sb,
                    term: tb,
                },
            ) if la == lb && ta == tb => Some(Angle::Gamma {
                layer: la,
                scale: sa + sb,
                term: ta,
            }),
            (
                Angle::Beta {
                    layer: la,
                    scale: sa,
                },
                Angle::Beta {
                    layer: lb,
                    scale: sb,
                },
            ) if la == lb => Some(Angle::Beta {
                layer: la,
                scale: sa + sb,
            }),
            _ => None,
        }
    }

    /// Whether the angle is identically zero (rotation is a no-op).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match *self {
            Angle::Constant(v) => v == 0.0,
            Angle::Gamma { scale, .. } | Angle::Beta { scale, .. } => scale == 0.0,
        }
    }

    /// Rescales the coefficient part of the angle (template editing).
    #[must_use]
    pub fn with_scale(&self, scale: f64) -> Angle {
        match *self {
            Angle::Constant(_) => Angle::Constant(scale),
            Angle::Gamma { layer, term, .. } => Angle::Gamma { layer, scale, term },
            Angle::Beta { layer, .. } => Angle::Beta { layer, scale },
        }
    }
}

impl Default for Angle {
    fn default() -> Self {
        Angle::Constant(0.0)
    }
}

impl From<f64> for Angle {
    fn from(v: f64) -> Angle {
        Angle::Constant(v)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Angle::Constant(v) => write!(f, "{v}"),
            Angle::Gamma { layer, scale, .. } => write!(f, "{scale}·γ{layer}"),
            Angle::Beta { layer, scale } => write!(f, "{scale}·β{layer}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_each_kind() {
        let g = Angle::Gamma {
            layer: 1,
            scale: 3.0,
            term: 0,
        };
        let b = Angle::Beta {
            layer: 0,
            scale: -2.0,
        };
        assert_eq!(g.bind(&[0.0, 0.5], &[]).unwrap(), 1.5);
        assert_eq!(b.bind(&[], &[0.25]).unwrap(), -0.5);
        assert!(g.bind(&[0.1], &[]).is_err());
    }

    #[test]
    fn try_add_fuses_compatible_angles() {
        let a = Angle::Gamma {
            layer: 0,
            scale: 1.0,
            term: 4,
        };
        let b = Angle::Gamma {
            layer: 0,
            scale: 2.0,
            term: 4,
        };
        assert_eq!(
            a.try_add(&b),
            Some(Angle::Gamma {
                layer: 0,
                scale: 3.0,
                term: 4
            })
        );
        let other_layer = Angle::Gamma {
            layer: 1,
            scale: 2.0,
            term: 4,
        };
        assert_eq!(a.try_add(&other_layer), None);
        let other_term = Angle::Gamma {
            layer: 0,
            scale: 2.0,
            term: 5,
        };
        assert_eq!(a.try_add(&other_term), None);
        assert_eq!(
            Angle::Constant(1.0).try_add(&Angle::Constant(0.5)),
            Some(Angle::Constant(1.5))
        );
        assert_eq!(
            a.try_add(&Angle::Beta {
                layer: 0,
                scale: 1.0
            }),
            None
        );
    }

    #[test]
    fn zero_detection_and_rescale() {
        assert!(Angle::Constant(0.0).is_zero());
        assert!(Angle::Gamma {
            layer: 0,
            scale: 0.0,
            term: 0
        }
        .is_zero());
        assert!(!Angle::Beta {
            layer: 0,
            scale: 0.1
        }
        .is_zero());
        let a = Angle::Gamma {
            layer: 2,
            scale: 1.0,
            term: 7,
        }
        .with_scale(4.0);
        assert_eq!(
            a,
            Angle::Gamma {
                layer: 2,
                scale: 4.0,
                term: 7
            }
        );
    }
}
