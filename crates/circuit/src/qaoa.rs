//! QAOA circuit synthesis from an Ising Hamiltonian (Fig. 2) and the
//! template-editing fast path of §3.7.1.
//!
//! # Term numbering
//!
//! Every γ-rotation carries a canonical *term index* identifying the
//! Hamiltonian term it encodes, for a model with `n` variables:
//!
//! * term `i` for `i < n` — the linear term `h_i·z_i`;
//! * term `n + k` — the `k`-th quadratic term in the model's canonical
//!   coupling order (sorted by `(i, j)`).
//!
//! Because all sub-problems obtained by freezing share an identical
//! quadratic structure (§3.3), term indices are stable across siblings and
//! across transpilation, which is what lets [`rebind_coefficients`] edit a
//! *compiled* circuit in place of recompiling 2^m of them.

use fq_ising::IsingModel;

use crate::{Angle, CircuitError, Gate, QuantumCircuit};

/// Builds the `p`-layer parametric QAOA circuit for an Ising model.
///
/// Layer `l` applies, in order: `Rz(2·h_i·γ_l)` for each non-zero linear
/// term, `CX(i,j) · Rz(2·J_ij·γ_l) · CX(i,j)` for each quadratic term, and
/// `Rx(2·β_l)` on every qubit. The circuit starts with Hadamards and ends
/// with measurement of every qubit.
///
/// # Errors
///
/// Returns [`CircuitError::ZeroLayers`] when `p == 0`.
///
/// # Example
///
/// ```
/// use fq_circuit::build_qaoa_circuit;
/// use fq_ising::IsingModel;
///
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, -1.0)?;
/// let qc = build_qaoa_circuit(&m, 2)?;
/// assert_eq!(qc.num_parameter_layers(), 2);
/// assert_eq!(qc.cnot_count(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build_qaoa_circuit(model: &IsingModel, p: usize) -> Result<QuantumCircuit, CircuitError> {
    synthesize(model, p, false)
}

/// Builds a QAOA *template* circuit: structurally identical to
/// [`build_qaoa_circuit`] but with one `Rz` per variable per layer even for
/// zero linear coefficients, so any sibling sub-problem — whose frozen
/// neighbours may have turned a zero `h_i` non-zero — can be re-bound into
/// it via [`rebind_coefficients`].
///
/// # Errors
///
/// Returns [`CircuitError::ZeroLayers`] when `p == 0`.
pub fn build_qaoa_template(model: &IsingModel, p: usize) -> Result<QuantumCircuit, CircuitError> {
    synthesize(model, p, true)
}

fn synthesize(
    model: &IsingModel,
    p: usize,
    emit_zero_linears: bool,
) -> Result<QuantumCircuit, CircuitError> {
    if p == 0 {
        return Err(CircuitError::ZeroLayers);
    }
    let n = model.num_vars();
    let mut qc = QuantumCircuit::new(n);
    for q in 0..n {
        qc.h(q)?;
    }
    for layer in 0..p {
        for (i, hi) in model.linears() {
            if hi != 0.0 || emit_zero_linears {
                qc.rz(
                    i,
                    Angle::Gamma {
                        layer,
                        scale: 2.0 * hi,
                        term: i,
                    },
                )?;
            }
        }
        for (k, ((i, j), jij)) in model.couplings().enumerate() {
            qc.cx(i, j)?;
            qc.rz(
                j,
                Angle::Gamma {
                    layer,
                    scale: 2.0 * jij,
                    term: n + k,
                },
            )?;
            qc.cx(i, j)?;
        }
        for q in 0..n {
            qc.rx(q, Angle::Beta { layer, scale: 2.0 })?;
        }
    }
    qc.measure_all();
    Ok(qc)
}

/// The pre-compilation CNOT count of a QAOA circuit: `2 · |J| · p`.
#[must_use]
pub fn qaoa_cnot_count(model: &IsingModel, p: usize) -> usize {
    2 * model.num_couplings() * p
}

/// Template editing (§3.7.1): rewrites the γ-scales of `template` so the
/// circuit drives `model`'s coefficients, **without** recompiling.
///
/// Works on raw and on transpiled templates alike, because every
/// γ-rotation carries its Hamiltonian term index (see the module docs).
/// The template must structurally host the model: same variable count and
/// a quadratic term for every term index the template references.
///
/// # Errors
///
/// Returns [`CircuitError::TemplateMismatch`] if the template references a
/// term the model does not have.
pub fn rebind_coefficients(
    template: &QuantumCircuit,
    model: &IsingModel,
) -> Result<QuantumCircuit, CircuitError> {
    let n = model.num_vars();
    let couplings: Vec<f64> = model.couplings().map(|(_, j)| j).collect();
    let mut out = QuantumCircuit::new(template.num_qubits());
    for g in template.gates() {
        let mapped = match *g {
            Gate::Rz {
                q,
                theta: Angle::Gamma { layer, term, .. },
            } => {
                let coeff = if term < n {
                    model.linear(term)
                } else {
                    *couplings.get(term - n).ok_or_else(|| {
                        CircuitError::TemplateMismatch(format!(
                            "template references quadratic term {} but the model has {}",
                            term - n,
                            couplings.len()
                        ))
                    })?
                };
                Gate::Rz {
                    q,
                    theta: Angle::Gamma {
                        layer,
                        scale: 2.0 * coeff,
                        term,
                    },
                }
            }
            other => other,
        };
        out.push(mapped)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_ising::Spin;

    fn model() -> IsingModel {
        let mut m = IsingModel::new(4);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(1, 2, -1.0).unwrap();
        m.set_coupling(2, 3, 0.5).unwrap();
        m
    }

    #[test]
    fn structure_counts() {
        let m = model();
        let qc = build_qaoa_circuit(&m, 1).unwrap();
        // 4 H + 3*(2 CX + 1 Rz) + 4 Rx + 4 measure = 21
        assert_eq!(qc.len(), 21);
        assert_eq!(qc.cnot_count(), qaoa_cnot_count(&m, 1));
        let qc2 = build_qaoa_circuit(&m, 3).unwrap();
        assert_eq!(qc2.cnot_count(), qaoa_cnot_count(&m, 3));
        assert_eq!(qc2.num_parameter_layers(), 3);
    }

    #[test]
    fn zero_layers_rejected() {
        assert!(matches!(
            build_qaoa_circuit(&model(), 0),
            Err(CircuitError::ZeroLayers)
        ));
        assert!(matches!(
            build_qaoa_template(&model(), 0),
            Err(CircuitError::ZeroLayers)
        ));
    }

    #[test]
    fn linear_terms_become_software_rz() {
        let mut m = model();
        m.set_linear(0, 0.25).unwrap();
        let qc = build_qaoa_circuit(&m, 1).unwrap();
        // One extra Rz, zero extra CNOTs: linear terms are fidelity-free.
        assert_eq!(qc.cnot_count(), 6);
        let rz_count = qc
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz { .. }))
            .count();
        assert_eq!(rz_count, 4);
    }

    #[test]
    fn term_indices_follow_canonical_numbering() {
        let m = model();
        let qc = build_qaoa_template(&m, 1).unwrap();
        let terms: Vec<usize> = qc
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Rz {
                    theta: Angle::Gamma { term, .. },
                    ..
                } => Some(*term),
                _ => None,
            })
            .collect();
        // 4 linear terms (0..4) then 3 quadratic terms (4..7).
        assert_eq!(terms, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn template_rebind_matches_direct_synthesis_angles() {
        let parent = model();
        let template = build_qaoa_template(&parent, 1).unwrap();
        let rebound = rebind_coefficients(&template, &parent).unwrap();
        let a = rebound.bind(&[0.3], &[0.7]).unwrap();
        let b = template.bind(&[0.3], &[0.7]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn template_hosts_sibling_subproblems() {
        let parent = model();
        let plus = parent.freeze(&[(3, Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(3, Spin::DOWN)]).unwrap();
        let template = build_qaoa_template(plus.model(), 1).unwrap();
        let re_minus = rebind_coefficients(&template, minus.model()).unwrap();
        // Same gate structure, same CNOT count, different angles.
        assert_eq!(re_minus.len(), template.len());
        assert_eq!(re_minus.cnot_count(), template.cnot_count());
        let direct = build_qaoa_template(minus.model(), 1).unwrap();
        assert_eq!(
            re_minus.bind(&[0.1], &[0.2]).unwrap(),
            direct.bind(&[0.1], &[0.2]).unwrap()
        );
    }

    #[test]
    fn rebind_survives_gate_reordering() {
        // Simulate a transpiler reordering: reverse the gate list (order is
        // irrelevant for the rebinding, which matches on term tags).
        let parent = model();
        let plus = parent.freeze(&[(3, Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(3, Spin::DOWN)]).unwrap();
        let template = build_qaoa_template(plus.model(), 1).unwrap();
        let mut shuffled = QuantumCircuit::new(template.num_qubits());
        for g in template.gates().iter().rev() {
            shuffled.push(*g).unwrap();
        }
        let rebound = rebind_coefficients(&shuffled, minus.model()).unwrap();
        // Every gamma rotation must now carry the minus-branch coefficient.
        let direct = build_qaoa_template(minus.model(), 1).unwrap();
        let mut expected: Vec<(usize, Angle)> = direct
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Rz {
                    theta: a @ Angle::Gamma { term, .. },
                    ..
                } => Some((*term, *a)),
                _ => None,
            })
            .collect();
        expected.sort_by_key(|(t, _)| *t);
        let mut got: Vec<(usize, Angle)> = rebound
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Rz {
                    theta: a @ Angle::Gamma { term, .. },
                    ..
                } => Some((*term, *a)),
                _ => None,
            })
            .collect();
        got.sort_by_key(|(t, _)| *t);
        assert_eq!(got, expected);
    }

    #[test]
    fn rebind_rejects_missing_terms() {
        let parent = model();
        let template = build_qaoa_template(&parent, 1).unwrap();
        let smaller = IsingModel::new(4); // no couplings at all
        assert!(rebind_coefficients(&template, &smaller).is_err());
    }
}
