//! OpenQASM 2.0 export, for interoperability with Qiskit-era tooling.
//!
//! Only fully bound circuits can be exported (QASM 2.0 has no symbolic
//! parameters). The output targets the standard `qelib1.inc` gate set.

use std::fmt::Write as _;

use crate::{Angle, CircuitError, Gate, QuantumCircuit};

/// Serializes a bound circuit as an OpenQASM 2.0 program.
///
/// Measurements map classical bit `k` to the `k`-th `measure` instruction
/// in program order, matching how the routed circuits emit one measurement
/// per logical qubit in logical order.
///
/// # Errors
///
/// Returns [`CircuitError::TemplateMismatch`] if any angle is still
/// symbolic (bind parameters first).
///
/// # Example
///
/// ```
/// use fq_circuit::{to_qasm, QuantumCircuit};
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0)?;
/// qc.cx(0, 1)?;
/// qc.measure_all();
/// let qasm = to_qasm(&qc)?;
/// assert!(qasm.contains("OPENQASM 2.0;"));
/// assert!(qasm.contains("cx q[0], q[1];"));
/// assert!(qasm.contains("measure q[1] -> c[1];"));
/// # Ok::<(), fq_circuit::CircuitError>(())
/// ```
pub fn to_qasm(circuit: &QuantumCircuit) -> Result<String, CircuitError> {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let n = circuit.num_qubits();
    let measures = circuit
        .gates()
        .iter()
        .filter(|g| matches!(g, Gate::Measure { .. }))
        .count();
    let _ = writeln!(out, "qreg q[{n}];");
    if measures > 0 {
        let _ = writeln!(out, "creg c[{measures}];");
    }
    let mut clbit = 0usize;
    for g in circuit.gates() {
        match *g {
            Gate::H { q } => {
                let _ = writeln!(out, "h q[{q}];");
            }
            Gate::X { q } => {
                let _ = writeln!(out, "x q[{q}];");
            }
            Gate::Rz { q, theta } => {
                let v = require_constant(theta)?;
                let _ = writeln!(out, "rz({v}) q[{q}];");
            }
            Gate::Rx { q, theta } => {
                let v = require_constant(theta)?;
                let _ = writeln!(out, "rx({v}) q[{q}];");
            }
            Gate::Cx { control, target } => {
                let _ = writeln!(out, "cx q[{control}], q[{target}];");
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap q[{a}], q[{b}];");
            }
            Gate::Measure { q } => {
                let _ = writeln!(out, "measure q[{q}] -> c[{clbit}];");
                clbit += 1;
            }
        }
    }
    Ok(out)
}

fn require_constant(theta: Angle) -> Result<f64, CircuitError> {
    match theta {
        Angle::Constant(v) => Ok(v),
        other => Err(CircuitError::TemplateMismatch(format!(
            "cannot export symbolic angle {other} to QASM 2.0; bind parameters first"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_every_gate_kind() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.x(1).unwrap();
        qc.rz(2, Angle::Constant(0.5)).unwrap();
        qc.rx(0, Angle::Constant(-1.25)).unwrap();
        qc.cx(0, 1).unwrap();
        qc.swap(1, 2).unwrap();
        qc.measure(2).unwrap();
        let qasm = to_qasm(&qc).unwrap();
        for needle in [
            "h q[0];",
            "x q[1];",
            "rz(0.5) q[2];",
            "rx(-1.25) q[0];",
            "cx q[0], q[1];",
            "swap q[1], q[2];",
            "measure q[2] -> c[0];",
            "creg c[1];",
        ] {
            assert!(qasm.contains(needle), "missing {needle:?} in:\n{qasm}");
        }
    }

    #[test]
    fn rejects_symbolic_angles() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 2.0,
                term: 0,
            },
        )
        .unwrap();
        assert!(to_qasm(&qc).is_err());
    }

    #[test]
    fn bound_qaoa_circuit_exports() {
        let mut m = fq_ising::IsingModel::new(3);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(1, 2, -1.0).unwrap();
        let qc = crate::build_qaoa_circuit(&m, 1)
            .unwrap()
            .bind(&[0.4], &[0.8])
            .unwrap();
        let qasm = to_qasm(&qc).unwrap();
        assert!(qasm.contains("qreg q[3];"));
        assert!(qasm.contains("creg c[3];"));
        assert_eq!(qasm.matches("cx ").count(), 4);
    }

    #[test]
    fn classical_bits_are_in_measure_order() {
        let mut qc = QuantumCircuit::new(2);
        qc.measure(1).unwrap();
        qc.measure(0).unwrap();
        let qasm = to_qasm(&qc).unwrap();
        assert!(qasm.contains("measure q[1] -> c[0];"));
        assert!(qasm.contains("measure q[0] -> c[1];"));
    }
}
