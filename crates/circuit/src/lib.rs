//! Quantum-circuit intermediate representation and QAOA synthesis.
//!
//! A QAOA circuit for an Ising Hamiltonian (Fig. 2 of the paper) consists,
//! per layer `l`, of:
//!
//! * one `Rz(2·h_i·γ_l)` per non-zero linear term — software gates that do
//!   not hurt fidelity (§3.3);
//! * the sequence `CX(i,j) · Rz(2·J_ij·γ_l) · CX(i,j)` per quadratic term —
//!   the two error-prone CNOTs per edge that FrozenQubits eliminates;
//! * one `Rx(2·β_l)` mixer rotation per qubit,
//!
//! preceded by a Hadamard on every qubit and followed by measurement.
//!
//! Angles are kept **symbolic** ([`Angle::Gamma`] / [`Angle::Beta`] with a
//! coefficient scale) so that a compiled circuit acts as the *template* of
//! §3.7.1: all `2^m` sub-problem executables are produced by re-binding
//! coefficients into the same routed gate sequence.
//!
//! # Example
//!
//! ```
//! use fq_circuit::{build_qaoa_circuit, CircuitStats};
//! use fq_ising::IsingModel;
//!
//! let mut m = IsingModel::new(3);
//! m.set_coupling(0, 1, 1.0)?;
//! m.set_coupling(1, 2, -1.0)?;
//!
//! let qc = build_qaoa_circuit(&m, 1)?;
//! let stats = CircuitStats::of(&qc);
//! assert_eq!(stats.cnot_count, 4); // 2 CNOTs per edge per layer
//!
//! let bound = qc.bind(&[0.3], &[0.7])?;
//! assert!(!bound.is_parametric());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod circuit;
mod error;
mod gate;
mod qaoa;
mod qasm;
mod stats;

pub use angle::Angle;
pub use circuit::QuantumCircuit;
pub use error::CircuitError;
pub use gate::Gate;
pub use qaoa::{build_qaoa_circuit, build_qaoa_template, qaoa_cnot_count, rebind_coefficients};
pub use qasm::to_qasm;
pub use stats::CircuitStats;
