//! Error type for circuit construction and parameter binding.

use std::error::Error;
use std::fmt;

/// Errors produced while building, editing or binding circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit index was at or beyond the circuit width.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A two-qubit gate was given identical operands.
    IdenticalOperands(usize),
    /// A symbolic angle referenced a layer beyond the parameter vectors.
    LayerOutOfRange {
        /// The referenced layer.
        layer: usize,
        /// Number of layers supplied.
        layers: usize,
    },
    /// γ and β vectors had different lengths.
    ParameterLengthMismatch {
        /// Length of the γ vector.
        gammas: usize,
        /// Length of the β vector.
        betas: usize,
    },
    /// QAOA synthesis was asked for zero layers.
    ZeroLayers,
    /// Template editing found a structural mismatch between circuit and
    /// model (different edge multiset).
    TemplateMismatch(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for width {num_qubits}")
            }
            CircuitError::IdenticalOperands(q) => {
                write!(f, "two-qubit gate needs distinct operands, got q{q} twice")
            }
            CircuitError::LayerOutOfRange { layer, layers } => {
                write!(
                    f,
                    "angle references layer {layer} but only {layers} parameters were bound"
                )
            }
            CircuitError::ParameterLengthMismatch { gammas, betas } => {
                write!(
                    f,
                    "expected equally many gammas and betas, got {gammas} and {betas}"
                )
            }
            CircuitError::ZeroLayers => write!(f, "qaoa circuits need at least one layer"),
            CircuitError::TemplateMismatch(msg) => write!(f, "template mismatch: {msg}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CircuitError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2,
            },
            CircuitError::IdenticalOperands(1),
            CircuitError::LayerOutOfRange {
                layer: 3,
                layers: 1,
            },
            CircuitError::ParameterLengthMismatch {
                gammas: 1,
                betas: 2,
            },
            CircuitError::ZeroLayers,
            CircuitError::TemplateMismatch("edges differ".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
