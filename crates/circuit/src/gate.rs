//! The gate set of the circuit IR.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Angle;

/// A gate instance acting on concrete qubit indices.
///
/// The set mirrors what QAOA circuits and IBM-style transpilation need:
/// Hadamard and rotations for the ansatz, CNOT as the native entangler
/// (each `Swap` counts as 3 CNOTs in the fidelity accounting, §2.2), and
/// terminal measurement.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H {
        /// Target qubit.
        q: usize,
    },
    /// Pauli-X.
    X {
        /// Target qubit.
        q: usize,
    },
    /// Z-rotation `Rz(θ)` — a "software" gate on IBM hardware (§3.3),
    /// treated as error-free and zero-duration.
    Rz {
        /// Target qubit.
        q: usize,
        /// Rotation angle.
        theta: Angle,
    },
    /// X-rotation `Rx(θ)` (the QAOA mixer).
    Rx {
        /// Target qubit.
        q: usize,
        /// Rotation angle.
        theta: Angle,
    },
    /// CNOT with `control` and `target`.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// SWAP, inserted by routing; decomposes into 3 CNOTs.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// Terminal `z`-basis measurement.
    Measure {
        /// Measured qubit.
        q: usize,
    },
}

impl Gate {
    /// The qubits this gate touches (one or two entries).
    #[must_use]
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H { q }
            | Gate::X { q }
            | Gate::Rz { q, .. }
            | Gate::Rx { q, .. }
            | Gate::Measure { q } => vec![q],
            Gate::Cx { control, target } => vec![control, target],
            Gate::Swap { a, b } => vec![a, b],
        }
    }

    /// Whether this is a two-qubit gate.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx { .. } | Gate::Swap { .. })
    }

    /// The number of physical CNOTs this gate costs (Swap = 3, Cx = 1).
    #[must_use]
    pub fn cnot_cost(&self) -> usize {
        match self {
            Gate::Cx { .. } => 1,
            Gate::Swap { .. } => 3,
            _ => 0,
        }
    }

    /// The symbolic angle, if the gate is a rotation.
    #[must_use]
    pub fn angle(&self) -> Option<Angle> {
        match *self {
            Gate::Rz { theta, .. } | Gate::Rx { theta, .. } => Some(theta),
            _ => None,
        }
    }

    /// A copy of the gate with every qubit index mapped through `f`
    /// (used when applying an initial layout).
    #[must_use]
    pub fn map_qubits(&self, mut f: impl FnMut(usize) -> usize) -> Gate {
        match *self {
            Gate::H { q } => Gate::H { q: f(q) },
            Gate::X { q } => Gate::X { q: f(q) },
            Gate::Rz { q, theta } => Gate::Rz { q: f(q), theta },
            Gate::Rx { q, theta } => Gate::Rx { q: f(q), theta },
            Gate::Cx { control, target } => Gate::Cx {
                control: f(control),
                target: f(target),
            },
            Gate::Swap { a, b } => Gate::Swap { a: f(a), b: f(b) },
            Gate::Measure { q } => Gate::Measure { q: f(q) },
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H { q } => write!(f, "h q{q}"),
            Gate::X { q } => write!(f, "x q{q}"),
            Gate::Rz { q, theta } => write!(f, "rz({theta}) q{q}"),
            Gate::Rx { q, theta } => write!(f, "rx({theta}) q{q}"),
            Gate::Cx { control, target } => write!(f, "cx q{control}, q{target}"),
            Gate::Swap { a, b } => write!(f, "swap q{a}, q{b}"),
            Gate::Measure { q } => write!(f, "measure q{q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::H { q: 3 }.qubits(), vec![3]);
        assert_eq!(
            Gate::Cx {
                control: 1,
                target: 2
            }
            .qubits(),
            vec![1, 2]
        );
        assert_eq!(Gate::Swap { a: 0, b: 4 }.qubits(), vec![0, 4]);
    }

    #[test]
    fn cnot_costs() {
        assert_eq!(
            Gate::Cx {
                control: 0,
                target: 1
            }
            .cnot_cost(),
            1
        );
        assert_eq!(Gate::Swap { a: 0, b: 1 }.cnot_cost(), 3);
        assert_eq!(Gate::H { q: 0 }.cnot_cost(), 0);
    }

    #[test]
    fn map_qubits_applies_layout() {
        let g = Gate::Cx {
            control: 0,
            target: 1,
        }
        .map_qubits(|q| q + 10);
        assert_eq!(
            g,
            Gate::Cx {
                control: 10,
                target: 11
            }
        );
    }

    #[test]
    fn display_is_qasm_like() {
        let g = Gate::Rz {
            q: 2,
            theta: Angle::Constant(0.5),
        };
        assert_eq!(g.to_string(), "rz(0.5) q2");
    }
}
