//! Aggregate circuit statistics used throughout the evaluation figures.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Gate, QuantumCircuit};

/// Summary counters of a circuit: the quantities plotted in Figs. 3, 7, 14
/// and 15 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Circuit width.
    pub num_qubits: usize,
    /// Total gate count, including measurements.
    pub total_gates: usize,
    /// CNOT cost (Cx = 1, Swap = 3).
    pub cnot_count: usize,
    /// Number of SWAP instances (pre-decomposition).
    pub swap_count: usize,
    /// Single-qubit gate count (H, X, Rz, Rx).
    pub single_qubit_count: usize,
    /// Measurement count.
    pub measure_count: usize,
    /// Critical-path depth.
    pub depth: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    ///
    /// # Example
    ///
    /// ```
    /// use fq_circuit::{CircuitStats, QuantumCircuit};
    ///
    /// let mut qc = QuantumCircuit::new(2);
    /// qc.h(0)?;
    /// qc.cx(0, 1)?;
    /// qc.swap(0, 1)?;
    /// qc.measure_all();
    /// let s = CircuitStats::of(&qc);
    /// assert_eq!(s.cnot_count, 4);
    /// assert_eq!(s.swap_count, 1);
    /// assert_eq!(s.measure_count, 2);
    /// # Ok::<(), fq_circuit::CircuitError>(())
    /// ```
    #[must_use]
    pub fn of(circuit: &QuantumCircuit) -> CircuitStats {
        let mut s = CircuitStats {
            num_qubits: circuit.num_qubits(),
            total_gates: circuit.len(),
            depth: circuit.depth(),
            ..CircuitStats::default()
        };
        for g in circuit.gates() {
            match g {
                Gate::Cx { .. } => s.cnot_count += 1,
                Gate::Swap { .. } => {
                    s.swap_count += 1;
                    s.cnot_count += 3;
                }
                Gate::Measure { .. } => s.measure_count += 1,
                Gate::H { .. } | Gate::X { .. } | Gate::Rz { .. } | Gate::Rx { .. } => {
                    s.single_qubit_count += 1;
                }
            }
        }
        s
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates (cnot {}, swap {}, 1q {}), depth {}",
            self.num_qubits,
            self.total_gates,
            self.cnot_count,
            self.swap_count,
            self.single_qubit_count,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Angle;

    #[test]
    fn counts_every_category() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.x(1).unwrap();
        qc.rz(2, Angle::Constant(0.1)).unwrap();
        qc.rx(0, Angle::Constant(0.2)).unwrap();
        qc.cx(0, 1).unwrap();
        qc.swap(1, 2).unwrap();
        qc.measure_all();
        let s = CircuitStats::of(&qc);
        assert_eq!(s.single_qubit_count, 4);
        assert_eq!(s.cnot_count, 4);
        assert_eq!(s.swap_count, 1);
        assert_eq!(s.measure_count, 3);
        assert_eq!(s.total_gates, 9);
        assert_eq!(s.depth, qc.depth());
    }

    #[test]
    fn display_mentions_core_numbers() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).unwrap();
        let text = CircuitStats::of(&qc).to_string();
        assert!(text.contains("1 qubits"));
        assert!(text.contains("depth 1"));
    }
}
