//! The circuit container: an ordered gate list over a fixed qubit register.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Angle, CircuitError, Gate};

/// An ordered sequence of gates over `num_qubits` qubits.
///
/// The IR is deliberately flat — a `Vec<Gate>` in program order — because
/// every consumer (simulator, router, scheduler) walks it linearly and
/// derives its own dependency structure.
///
/// # Example
///
/// ```
/// use fq_circuit::{Angle, QuantumCircuit};
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0)?;
/// qc.cx(0, 1)?;
/// qc.rz(1, Angle::Constant(0.3))?;
/// qc.measure_all();
/// assert_eq!(qc.depth(), 4);
/// assert_eq!(qc.cnot_count(), 1);
/// # Ok::<(), fq_circuit::CircuitError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct QuantumCircuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl QuantumCircuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    #[must_use]
    pub fn new(num_qubits: usize) -> QuantumCircuit {
        QuantumCircuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Circuit width.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gates in program order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates (including measurements).
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a validated gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] for operands beyond the
    /// register and [`CircuitError::IdenticalOperands`] for degenerate
    /// two-qubit gates.
    pub fn push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        let qs = gate.qubits();
        for &q in &qs {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        if qs.len() == 2 && qs[0] == qs[1] {
            return Err(CircuitError::IdenticalOperands(qs[0]));
        }
        self.gates.push(gate);
        Ok(())
    }

    /// Appends a Hadamard.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn h(&mut self, q: usize) -> Result<(), CircuitError> {
        self.push(Gate::H { q })
    }

    /// Appends a Pauli-X.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn x(&mut self, q: usize) -> Result<(), CircuitError> {
        self.push(Gate::X { q })
    }

    /// Appends an `Rz`.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn rz(&mut self, q: usize, theta: Angle) -> Result<(), CircuitError> {
        self.push(Gate::Rz { q, theta })
    }

    /// Appends an `Rx`.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn rx(&mut self, q: usize, theta: Angle) -> Result<(), CircuitError> {
        self.push(Gate::Rx { q, theta })
    }

    /// Appends a CNOT.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn cx(&mut self, control: usize, target: usize) -> Result<(), CircuitError> {
        self.push(Gate::Cx { control, target })
    }

    /// Appends a SWAP.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn swap(&mut self, a: usize, b: usize) -> Result<(), CircuitError> {
        self.push(Gate::Swap { a, b })
    }

    /// Appends a measurement on `q`.
    ///
    /// # Errors
    ///
    /// See [`QuantumCircuit::push`].
    pub fn measure(&mut self, q: usize) -> Result<(), CircuitError> {
        self.push(Gate::Measure { q })
    }

    /// Appends a measurement on every qubit.
    pub fn measure_all(&mut self) {
        for q in 0..self.num_qubits {
            self.gates.push(Gate::Measure { q });
        }
    }

    /// Total CNOT cost: `Cx` counts 1, `Swap` counts 3 (§2.2).
    #[must_use]
    pub fn cnot_count(&self) -> usize {
        self.gates.iter().map(Gate::cnot_cost).sum()
    }

    /// Number of two-qubit gate *instances* (Cx or Swap).
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Circuit depth: the longest chain of gates that share qubits,
    /// counting every gate (including measurement) as one level.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = l;
            }
            max = max.max(l);
        }
        max
    }

    /// Whether any angle is still symbolic.
    #[must_use]
    pub fn is_parametric(&self) -> bool {
        self.gates
            .iter()
            .filter_map(Gate::angle)
            .any(|a| a.is_symbolic())
    }

    /// The number of QAOA layers referenced by symbolic angles
    /// (`1 + max layer index`, or 0 for a fully bound circuit).
    #[must_use]
    pub fn num_parameter_layers(&self) -> usize {
        self.gates
            .iter()
            .filter_map(Gate::angle)
            .filter_map(|a| match a {
                Angle::Gamma { layer, .. } | Angle::Beta { layer, .. } => Some(layer + 1),
                Angle::Constant(_) => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Produces a concrete circuit by substituting `(γ, β)` parameters into
    /// every symbolic angle.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterLengthMismatch`] if the vectors
    /// differ in length and [`CircuitError::LayerOutOfRange`] if an angle
    /// references a missing layer.
    pub fn bind(&self, gammas: &[f64], betas: &[f64]) -> Result<QuantumCircuit, CircuitError> {
        if gammas.len() != betas.len() {
            return Err(CircuitError::ParameterLengthMismatch {
                gammas: gammas.len(),
                betas: betas.len(),
            });
        }
        let mut out = QuantumCircuit::new(self.num_qubits);
        for g in &self.gates {
            let mapped = match *g {
                Gate::Rz { q, theta } => Gate::Rz {
                    q,
                    theta: Angle::Constant(theta.bind(gammas, betas)?),
                },
                Gate::Rx { q, theta } => Gate::Rx {
                    q,
                    theta: Angle::Constant(theta.bind(gammas, betas)?),
                },
                other => other,
            };
            out.gates.push(mapped);
        }
        Ok(out)
    }

    /// A copy with all qubit indices mapped through `layout`
    /// (`new_index = layout[old_index]`), widened to `new_width`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the layout maps a qubit
    /// at or beyond `new_width`, or is shorter than the circuit width.
    pub fn remapped(
        &self,
        layout: &[usize],
        new_width: usize,
    ) -> Result<QuantumCircuit, CircuitError> {
        if layout.len() < self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: layout.len(),
                num_qubits: self.num_qubits,
            });
        }
        let mut out = QuantumCircuit::new(new_width);
        for g in &self.gates {
            out.push(g.map_qubits(|q| layout[q]))?;
        }
        Ok(out)
    }

    /// Appends all gates of `other` (widths must match).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if `other` is wider.
    pub fn extend(&mut self, other: &QuantumCircuit) -> Result<(), CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: other.num_qubits - 1,
                num_qubits: self.num_qubits,
            });
        }
        self.gates.extend_from_slice(&other.gates);
        Ok(())
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "qreg q[{}];", self.num_qubits)?;
        for g in &self.gates {
            writeln!(f, "{g};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates() {
        let mut qc = QuantumCircuit::new(2);
        assert!(qc.h(0).is_ok());
        assert!(matches!(qc.h(2), Err(CircuitError::QubitOutOfRange { .. })));
        assert!(matches!(
            qc.cx(1, 1),
            Err(CircuitError::IdenticalOperands(1))
        ));
    }

    #[test]
    fn depth_counts_critical_path() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).unwrap();
        qc.h(1).unwrap();
        qc.h(2).unwrap(); // depth 1, parallel
        qc.cx(0, 1).unwrap(); // depth 2
        qc.cx(1, 2).unwrap(); // depth 3
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn depth_of_empty_is_zero() {
        assert_eq!(QuantumCircuit::new(4).depth(), 0);
    }

    #[test]
    fn cnot_count_includes_swaps() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).unwrap();
        qc.swap(1, 2).unwrap();
        assert_eq!(qc.cnot_count(), 4);
        assert_eq!(qc.two_qubit_gate_count(), 2);
    }

    #[test]
    fn bind_resolves_all_angles() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 2.0,
                term: 0,
            },
        )
        .unwrap();
        qc.rx(
            0,
            Angle::Beta {
                layer: 0,
                scale: 2.0,
            },
        )
        .unwrap();
        assert!(qc.is_parametric());
        assert_eq!(qc.num_parameter_layers(), 1);
        let bound = qc.bind(&[0.5], &[0.25]).unwrap();
        assert!(!bound.is_parametric());
        assert_eq!(bound.gates()[0].angle(), Some(Angle::Constant(1.0)));
        assert_eq!(bound.gates()[1].angle(), Some(Angle::Constant(0.5)));
        assert!(qc.bind(&[0.5], &[]).is_err());
    }

    #[test]
    fn remap_applies_layout() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1).unwrap();
        let wide = qc.remapped(&[5, 3], 6).unwrap();
        assert_eq!(
            wide.gates()[0],
            Gate::Cx {
                control: 5,
                target: 3
            }
        );
        assert!(qc.remapped(&[5, 7], 6).is_err());
    }

    #[test]
    fn measure_all_measures_each_qubit() {
        let mut qc = QuantumCircuit::new(3);
        qc.measure_all();
        assert_eq!(qc.len(), 3);
    }

    #[test]
    fn display_renders_each_gate() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        let text = qc.to_string();
        assert!(text.contains("h q0;"));
        assert!(text.contains("cx q0, q1;"));
    }
}
