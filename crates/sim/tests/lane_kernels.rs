//! Property-style bit-identity pins for the SoA lane kernels.
//!
//! The contract under test: for every model (random or adversarial),
//! every finite angle, every lane width, and every β-row length,
//!
//! * `PreparedP1::row(γ).at(β)`            == `expectation_p1(m, γ, β)`
//! * `P1Row::eval_lanes::<W>` per point     == `P1Row::at` per point
//! * `PreparedP1::at` / `terms_at`          == the unprepared functions
//!
//! all compared through `f64::to_bits` — bit-for-bit, not approximately
//! (`assert_eq!` on `f64` would let `−0.0` masquerade as `+0.0`).

use fq_ising::IsingModel;
use fq_sim::analytic::{expectation_p1, term_expectations_p1, BetaTrig, P1Row, PreparedP1};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const GAMMAS: [f64; 6] = [-1.9, -0.4, -0.0, 0.0, 0.7, 1.3];
const ROW_LENS: [usize; 10] = [1, 2, 3, 5, 7, 8, 9, 11, 16, 33];

fn beta_row(len: usize) -> Vec<f64> {
    // Includes negative β (so sin(2β) goes negative) and exact 0.0.
    (0..len)
        .map(|j| -0.9 + 1.7 * j as f64 / len as f64)
        .chain(std::iter::once(0.0))
        .take(len)
        .collect()
}

/// Asserts every lane width against the scalar row evaluator on one
/// (model, γ, β-row) triple, plus the prepared-vs-unprepared pins.
fn assert_bit_identity(model: &IsingModel, label: &str) {
    let prepared = PreparedP1::new(model);
    for &gamma in &GAMMAS {
        let row = prepared.row(gamma);
        for &len in &ROW_LENS {
            let betas = beta_row(len);
            let trig = BetaTrig::new(&betas);
            assert_lanes_match_scalar::<1>(&row, &trig, &betas, label, gamma);
            assert_lanes_match_scalar::<2>(&row, &trig, &betas, label, gamma);
            assert_lanes_match_scalar::<4>(&row, &trig, &betas, label, gamma);
            assert_lanes_match_scalar::<8>(&row, &trig, &betas, label, gamma);
            assert_lanes_match_scalar::<16>(&row, &trig, &betas, label, gamma);
        }
        for &beta in &[-0.8, -0.0, 0.0, 0.35, 1.4] {
            let reference = expectation_p1(model, gamma, beta).unwrap();
            assert_eq!(
                row.at(beta).to_bits(),
                reference.to_bits(),
                "{label}: row.at(β) vs expectation_p1 at ({gamma}, {beta})"
            );
            assert_eq!(
                prepared.at(gamma, beta).to_bits(),
                reference.to_bits(),
                "{label}: prepared.at vs expectation_p1 at ({gamma}, {beta})"
            );
            let (z_ref, zz_ref) = term_expectations_p1(model, gamma, beta).unwrap();
            let (z, zz) = prepared.terms_at(gamma, beta);
            assert_eq!(bits(&z), bits(&z_ref), "{label}: terms_at z");
            assert_eq!(bits(&zz), bits(&zz_ref), "{label}: terms_at zz");
        }
    }
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_lanes_match_scalar<const W: usize>(
    row: &P1Row,
    trig: &BetaTrig,
    betas: &[f64],
    label: &str,
    gamma: f64,
) {
    let mut out = vec![f64::NAN; betas.len()];
    row.eval_lanes::<W>(trig, &mut out);
    for (j, (&got, &b)) in out.iter().zip(betas).enumerate() {
        assert_eq!(
            got.to_bits(),
            row.at(b).to_bits(),
            "{label}: lane width {W}, γ = {gamma}, row len {}, point {j} (β = {b})",
            betas.len()
        );
    }
}

fn random_model(n: usize, density: f64, pm1: bool, seed: u64) -> IsingModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = IsingModel::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < density {
                let w = if pm1 {
                    if rng.random::<bool>() {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    rng.random_range(-2.0..2.0)
                };
                m.set_coupling(i, j, w).unwrap();
            }
        }
        if rng.random::<bool>() {
            m.set_linear(i, rng.random_range(-1.5..1.5)).unwrap();
        }
    }
    m
}

#[test]
fn lanes_match_scalar_on_random_pm1_models() {
    for (seed, &n) in [5, 8, 9, 12, 17].iter().enumerate() {
        let m = random_model(n, 0.4, true, seed as u64);
        assert_bit_identity(&m, &format!("±1 model n={n}"));
    }
}

#[test]
fn lanes_match_scalar_on_random_weighted_models() {
    for (seed, &n) in [6, 7, 11, 16].iter().enumerate() {
        let m = random_model(n, 0.5, false, 100 + seed as u64);
        assert_bit_identity(&m, &format!("weighted model n={n}"));
    }
}

#[test]
fn lanes_match_scalar_on_isolated_nodes() {
    // Vars 5..9 have linear terms but no couplings: `⟨Z⟩` terms with an
    // empty incident-coupling product.
    let mut m = IsingModel::new(9);
    for (i, j) in [(0, 1), (1, 2), (2, 3), (0, 4)] {
        m.set_coupling(i, j, -1.0).unwrap();
    }
    for v in 5..9 {
        m.set_linear(v, 0.75 * v as f64).unwrap();
    }
    assert_bit_identity(&m, "isolated nodes");
}

#[test]
fn lanes_match_scalar_on_empty_couplings() {
    // Linear-only model: no `⟨ZZ⟩` terms at all.
    let mut m = IsingModel::new(6);
    for v in 0..6 {
        m.set_linear(v, (v as f64) - 2.5).unwrap();
    }
    assert_bit_identity(&m, "empty couplings");
}

#[test]
fn lanes_match_scalar_on_zero_weights() {
    // Zero linear terms are skipped (matching the unprepared filter);
    // setting a coupling to 0.0 removes it. One-sided third spins keep
    // an exact-0.0 partner coefficient in the SoA arrays — the case the
    // ungated `× cos(2γ·0) = × 1.0` chain multiply must get right.
    let mut m = IsingModel::new(7);
    m.set_coupling(0, 1, 1.0).unwrap();
    m.set_coupling(1, 2, -1.0).unwrap(); // third spin 2 couples to 1 only
    m.set_coupling(0, 3, 0.5).unwrap(); // third spin 3 couples to 0 only
    m.set_coupling(4, 5, 2.0).unwrap();
    m.set_coupling(4, 5, 0.0).unwrap(); // removed again
    m.set_linear(0, 0.0).unwrap(); // skipped term
    m.set_linear(6, -1.25).unwrap();
    assert_eq!(m.num_couplings(), 3);
    assert_bit_identity(&m, "zero weights");
}

#[test]
fn lanes_match_scalar_on_offset_only_and_trivial_models() {
    // Accumulators start at the offset; a −0.0 offset is the adversarial
    // case that would expose any spurious `+ 0.0` from padded terms
    // (−0.0 + 0.0 == +0.0 bitwise-differs from −0.0).
    let mut neg_zero = IsingModel::new(3);
    neg_zero.set_offset(-0.0);
    assert_eq!(neg_zero.offset().to_bits(), (-0.0f64).to_bits());
    assert_bit_identity(&neg_zero, "−0.0 offset, no terms");

    let mut offset_only = IsingModel::new(4);
    offset_only.set_offset(-17.5);
    assert_bit_identity(&offset_only, "offset only");

    assert_bit_identity(&IsingModel::new(0), "empty model");
    assert_bit_identity(&IsingModel::new(1), "single var, no terms");
}

#[test]
fn lanes_match_scalar_with_negative_zero_offset_and_terms() {
    let mut m = random_model(8, 0.4, true, 7);
    m.set_offset(-0.0);
    assert_bit_identity(&m, "−0.0 offset with terms");
}

#[test]
fn beta_trig_matches_scalar_sines() {
    let betas = beta_row(13);
    let trig = BetaTrig::new(&betas);
    assert_eq!(trig.len(), 13);
    assert!(!trig.is_empty());
    assert!(BetaTrig::new(&[]).is_empty());
}

#[test]
fn eval_lanes_handles_empty_rows() {
    let m = random_model(5, 0.5, true, 3);
    let prepared = PreparedP1::new(&m);
    let row = prepared.row(0.4);
    let trig = BetaTrig::new(&[]);
    let mut out: Vec<f64> = Vec::new();
    row.eval_lanes::<8>(&trig, &mut out);
    assert!(out.is_empty());
}

#[test]
#[should_panic(expected = "equal lengths")]
fn eval_lanes_rejects_mismatched_buffers() {
    let m = random_model(4, 0.5, true, 5);
    let prepared = PreparedP1::new(&m);
    let row = prepared.row(0.2);
    let trig = BetaTrig::new(&[0.1, 0.2]);
    let mut out = vec![0.0; 3];
    row.eval_lanes::<4>(&trig, &mut out);
}
