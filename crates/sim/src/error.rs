//! Error type for the simulation layer.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulators and noise models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Requested width exceeds the dense-statevector limit.
    TooManyQubits {
        /// Requested qubit count.
        requested: usize,
        /// The simulator's limit.
        limit: usize,
    },
    /// Circuit and state (or model) widths disagree.
    WidthMismatch {
        /// Circuit/model width.
        circuit: usize,
        /// State width.
        state: usize,
    },
    /// A gate still carries a symbolic (unbound) angle.
    ParametricCircuit,
    /// Invalid noise/sampling parameters.
    InvalidParameters(String),
    /// An Ising-layer error surfaced during simulation.
    Ising(fq_ising::IsingError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyQubits { requested, limit } => {
                write!(
                    f,
                    "statevector over {requested} qubits exceeds the limit of {limit}"
                )
            }
            SimError::WidthMismatch { circuit, state } => {
                write!(
                    f,
                    "circuit width {circuit} does not match state width {state}"
                )
            }
            SimError::ParametricCircuit => {
                write!(
                    f,
                    "circuit still carries symbolic angles; bind parameters first"
                )
            }
            SimError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            SimError::Ising(e) => write!(f, "ising error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Ising(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fq_ising::IsingError> for SimError {
    fn from(e: fq_ising::IsingError) -> Self {
        SimError::Ising(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SimError::TooManyQubits {
                requested: 30,
                limit: 25,
            },
            SimError::WidthMismatch {
                circuit: 3,
                state: 2,
            },
            SimError::ParametricCircuit,
            SimError::InvalidParameters("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
