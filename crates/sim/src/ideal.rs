//! Ideal (noise-free) execution helpers: run, sample, and compute
//! `EV_ideal` for the ARG metric (Eq. 4).

use fq_circuit::{build_qaoa_circuit, QuantumCircuit};
use fq_ising::{IsingModel, OutputDistribution};

use crate::{SimError, Statevector};

/// Runs a bound circuit from `|0…0⟩` and returns the final state.
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] beyond the statevector limit and
/// [`SimError::ParametricCircuit`] for unbound angles.
///
/// # Example
///
/// ```
/// use fq_circuit::QuantumCircuit;
/// use fq_sim::run_circuit;
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0)?;
/// qc.cx(0, 1)?;
/// let sv = run_circuit(&qc)?;
/// assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_circuit(circuit: &QuantumCircuit) -> Result<Statevector, SimError> {
    let mut sv = Statevector::zero_state(circuit.num_qubits())?;
    sv.run(circuit)?;
    Ok(sv)
}

/// Samples `shots` outcomes of a bound circuit into an
/// [`OutputDistribution`] over the circuit's qubits.
///
/// # Errors
///
/// Same conditions as [`run_circuit`].
pub fn sample_distribution(
    circuit: &QuantumCircuit,
    shots: u64,
    seed: u64,
) -> Result<OutputDistribution, SimError> {
    let sv = run_circuit(circuit)?;
    let mut dist = OutputDistribution::new(circuit.num_qubits());
    for z in sv.sample_spins(shots, seed) {
        dist.record(z, 1);
    }
    Ok(dist)
}

/// The exact `p`-layer QAOA expectation value by statevector simulation.
///
/// For `p = 1` prefer [`crate::analytic::expectation_p1`], which has no
/// width limit; this function is the reference oracle and the only exact
/// option for `p ≥ 2`.
///
/// # Errors
///
/// Returns circuit-construction errors wrapped as
/// [`SimError::InvalidParameters`], plus the [`run_circuit`] conditions.
pub fn qaoa_expectation_sv(
    model: &IsingModel,
    gammas: &[f64],
    betas: &[f64],
) -> Result<f64, SimError> {
    let qc = build_qaoa_circuit(model, gammas.len().max(1))
        .map_err(|e| SimError::InvalidParameters(e.to_string()))?;
    let bound = qc
        .bind(gammas, betas)
        .map_err(|e| SimError::InvalidParameters(e.to_string()))?;
    let sv = run_circuit(&bound)?;
    sv.expectation_ising(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::expectation_p1;

    fn pair_model() -> IsingModel {
        let mut m = IsingModel::new(2);
        m.set_coupling(0, 1, 1.0).unwrap();
        m
    }

    #[test]
    fn sampling_respects_circuit_distribution() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).unwrap();
        qc.cx(0, 1).unwrap();
        qc.measure_all();
        let d = sample_distribution(&qc, 4000, 3).unwrap();
        // Bell state: only 00 and 11 appear.
        assert_eq!(d.num_outcomes(), 2);
        let p00 = d.probability(&fq_ising::SpinVec::from_bits(&[0, 0]));
        assert!((p00 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sv_expectation_agrees_with_analytic_p1() {
        let m = pair_model();
        let sv = qaoa_expectation_sv(&m, &[0.37], &[0.61]).unwrap();
        let an = expectation_p1(&m, 0.37, 0.61).unwrap();
        assert!((sv - an).abs() < 1e-10);
    }

    #[test]
    fn multi_layer_expectation_runs() {
        let m = pair_model();
        let ev = qaoa_expectation_sv(&m, &[0.3, 0.2], &[0.5, 0.1]).unwrap();
        assert!(ev.abs() <= 1.0 + 1e-9); // single ±1 coupling bounds |⟨C⟩|
    }

    #[test]
    fn good_p1_angles_beat_random_guessing() {
        // For the antiferromagnetic pair, ⟨C⟩ < 0 is achievable at p=1.
        let m = pair_model();
        let ev = qaoa_expectation_sv(
            &m,
            &[std::f64::consts::FRAC_PI_4],
            &[3.0 * std::f64::consts::FRAC_PI_8],
        )
        .unwrap();
        assert!(ev < -0.4, "expected a clearly negative EV, got {ev}");
    }
}
