//! Quantum simulation substrate for the FrozenQubits reproduction.
//!
//! The paper measures `EV_ideal` on an ideal simulator and `EV_real` on
//! IBM hardware (Eq. 4), and falls back to an analytical success-
//! probability model at practical scale (§6.3). This crate provides all
//! three roles:
//!
//! * [`Statevector`] — an exact dense simulator (≤ 25 qubits) with
//!   seeded measurement sampling;
//! * [`analytic`] — exact closed-form p = 1 QAOA expectations valid at
//!   **any** width, cross-validated against the statevector;
//! * [`noise`] / [`sample_noisy`] — the hardware stand-in: a fidelity-
//!   product estimator for noisy expectation values and a Monte-Carlo
//!   Pauli-injection sampler, both driven by per-device calibration;
//! * [`eps`] / [`log_eps`] — the Expected Probability of Success metric of
//!   §6.3.
//!
//! Every simulation path is pure data in, pure data out: no interior
//! mutability, no globals, all RNG state seeded and local to a call. All
//! public types are therefore `Send + Sync` (asserted in the test suite),
//! which is what lets the core pipeline's `ParallelExecutor` fan
//! noisy-expectation and sampling work out across worker threads.
//!
//! # Example
//!
//! ```
//! use fq_ising::IsingModel;
//! use fq_sim::analytic::expectation_p1;
//! use fq_sim::qaoa_expectation_sv;
//!
//! let mut m = IsingModel::new(4);
//! m.set_coupling(0, 1, 1.0)?;
//! m.set_coupling(1, 2, -1.0)?;
//! m.set_coupling(2, 3, 1.0)?;
//! let exact = qaoa_expectation_sv(&m, &[0.4], &[0.8])?;
//! let closed_form = expectation_p1(&m, 0.4, 0.8)?;
//! assert!((exact - closed_form).abs() < 1e-10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod approx;
mod complex;
mod eps;
mod error;
mod ideal;
mod mc;
mod mitigation;
pub mod noise;
mod state;

pub use approx::{cos_poly, sin_poly, subsample_couplings, POLY_TRIG_MAX_ABS_ERROR};
pub use complex::Complex;
pub use eps::{eps, log_eps};
pub use error::SimError;
pub use ideal::{qaoa_expectation_sv, run_circuit, sample_distribution};
pub use mc::{sample_noisy, NoisySamplerConfig};
pub use mitigation::ReadoutMitigator;
pub use noise::{
    fidelity_model, gate_error_rates, lightcone_fidelities, lightcone_fidelities_truncated,
    noisy_expectation_from_lightcone, noisy_expectation_from_terms, noisy_expectation_lightcone,
    noisy_expectation_lightcone_truncated, FidelityModel, LightconeFidelity,
};
pub use state::{ising_expectation_from_terms, Statevector, MAX_STATEVECTOR_QUBITS};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// The noisy-expectation and sampling paths run on executor worker
    /// threads; a non-`Send + Sync` type slipping into the public surface
    /// would silently serialize the pipeline, so pin it at compile time.
    #[test]
    fn public_simulation_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Complex>();
        assert_send_sync::<SimError>();
        assert_send_sync::<NoisySamplerConfig>();
        assert_send_sync::<ReadoutMitigator>();
        assert_send_sync::<FidelityModel>();
        assert_send_sync::<LightconeFidelity>();
        assert_send_sync::<Statevector>();
    }
}
