//! Expected Probability of Success (EPS), the §6.3 metric.
//!
//! "EPS is the probability that gate and measurement operations remain
//! error-free and qubits remain free from decoherence." It is the standard
//! figure for comparing NISQ compilations too large to execute: a pure
//! product of per-gate success probabilities and per-qubit decoherence
//! survival factors. At 500 qubits the raw product underflows `f64`, so
//! the log-domain variant is the primary API.

use fq_transpile::{Compiled, Device};

use crate::gate_error_rates;

/// Natural log of the EPS of a compiled circuit on a device.
///
/// # Example
///
/// ```
/// use fq_circuit::build_qaoa_circuit;
/// use fq_ising::IsingModel;
/// use fq_sim::{eps, log_eps};
/// use fq_transpile::{compile, CompileOptions, Device};
///
/// let mut m = IsingModel::new(4);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, 1.0)?;
/// m.set_coupling(2, 3, 1.0)?;
/// let qc = build_qaoa_circuit(&m, 1)?;
/// let c = compile(&qc, &Device::grid_2500(), CompileOptions::level3())?;
/// let dev = Device::grid_2500();
/// assert!((eps(&c, &dev).ln() - log_eps(&c, &dev)).abs() < 1e-9);
/// assert!(eps(&c, &dev) > 0.9); // tiny circuit, optimistic device
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn log_eps(compiled: &Compiled, device: &Device) -> f64 {
    let mut log = 0.0f64;
    for e in gate_error_rates(compiled, device) {
        if e > 0.0 {
            log += (1.0 - e).ln();
        }
    }
    // Decoherence over each qubit's *busy* (gate-engaged) time. Idle
    // windows are excluded: at 500 qubits the idle-duration product would
    // swamp the gate terms with routing-depth noise, and idling errors are
    // the province of dynamical-decoupling passes (ADAPT et al.) that the
    // paper treats as orthogonal. Busy time scales with the gate count, so
    // EPS remains a faithful, stable function of the compiled circuit.
    for &p in &compiled.final_layout {
        let t1 = device.t1_us(p);
        if t1.is_finite() && t1 > 0.0 {
            // The schedule is over the physical register: busy_ns[p].
            let busy_us = compiled.schedule.busy_ns.get(p).copied().unwrap_or(0.0) / 1_000.0;
            log += -busy_us / t1;
        }
    }
    log
}

/// The EPS itself; underflows to 0 for very large circuits — use
/// [`log_eps`] for relative comparisons at scale (Fig. 16).
#[must_use]
pub fn eps(compiled: &Compiled, device: &Device) -> f64 {
    log_eps(compiled, device).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::build_qaoa_circuit;
    use fq_ising::IsingModel;
    use fq_transpile::{compile, CompileOptions, Topology};

    fn compiled(n: usize, dev: &Device) -> Compiled {
        let mut m = IsingModel::new(n);
        for i in 1..n {
            m.set_coupling(0, i, 1.0).unwrap();
        }
        let qc = build_qaoa_circuit(&m, 1).unwrap();
        compile(&qc, dev, CompileOptions::level3()).unwrap()
    }

    #[test]
    fn eps_is_one_on_ideal_hardware() {
        let dev = Device::ideal("ideal", Topology::grid(4, 4).unwrap());
        let c = compiled(6, &dev);
        assert!((eps(&c, &dev) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eps_decreases_with_circuit_size() {
        let dev = Device::ibm_montreal();
        let small = compiled(4, &dev);
        let large = compiled(12, &dev);
        assert!(eps(&large, &dev) < eps(&small, &dev));
        assert!(log_eps(&large, &dev) < log_eps(&small, &dev));
    }

    #[test]
    fn eps_lies_in_unit_interval() {
        let dev = Device::ibm_toronto();
        let c = compiled(10, &dev);
        let v = eps(&c, &dev);
        assert!(v > 0.0 && v < 1.0);
    }
}
