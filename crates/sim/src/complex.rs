//! Minimal complex arithmetic (kept in-crate to avoid a dependency).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use fq_sim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `r·e^{iθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Complex {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` (unit phase).
    #[must_use]
    pub fn cis(theta: f64) -> Complex {
        Complex::from_polar(1.0, theta)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplication by `i` (cheaper than a full complex multiply).
    #[must_use]
    pub fn mul_i(self) -> Complex {
        Complex {
            re: -self.im,
            im: self.re,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!((z * z.conj()).re, 25.0);
        assert!((z * z.conj()).im.abs() < 1e-12);
    }

    #[test]
    fn mul_i_matches_full_multiply() {
        let z = Complex::new(1.5, -2.5);
        assert_eq!(z.mul_i(), z * Complex::I);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.im.atan2(z.re) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..8 {
            let theta = k as f64 * 0.9;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-12);
        }
    }
}
