//! A dense statevector simulator.
//!
//! Basis states are indexed little-endian: bit `k` of the index is qubit
//! `k`, with bit value 0 meaning `|0⟩` (spin `+1`), matching
//! [`fq_ising::SpinVec::from_index`].

use fq_circuit::{Gate, QuantumCircuit};
use fq_ising::{IsingModel, SpinVec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Complex, SimError};

/// Hard cap on simulated width: 2^25 amplitudes ≈ 512 MiB.
pub const MAX_STATEVECTOR_QUBITS: usize = 25;

/// A normalized quantum state over `n` qubits.
///
/// # Example
///
/// ```
/// use fq_sim::Statevector;
///
/// let mut sv = Statevector::zero_state(1)?;
/// sv.apply_h(0);
/// // |+⟩: both amplitudes 1/√2.
/// assert!((sv.probability(0) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(1) - 0.5).abs() < 1e-12);
/// # Ok::<(), fq_sim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl Statevector {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] beyond
    /// [`MAX_STATEVECTOR_QUBITS`].
    pub fn zero_state(num_qubits: usize) -> Result<Statevector, SimError> {
        if num_qubits > MAX_STATEVECTOR_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                limit: MAX_STATEVECTOR_QUBITS,
            });
        }
        let mut amps = vec![Complex::ZERO; 1usize << num_qubits];
        amps[0] = Complex::ONE;
        Ok(Statevector { num_qubits, amps })
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amps[index]
    }

    /// The probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Total norm (should be 1 up to float error).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Applies a Hadamard to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_h(&mut self, k: usize) {
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        self.for_each_pair(k, |a0, a1| {
            let s = (a0 + a1).scale(inv_sqrt2);
            let d = (a0 - a1).scale(inv_sqrt2);
            (s, d)
        });
    }

    /// Applies a Pauli-X to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_x(&mut self, k: usize) {
        self.for_each_pair(k, |a0, a1| (a1, a0));
    }

    /// Applies a Pauli-Y to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_y(&mut self, k: usize) {
        self.for_each_pair(k, |a0, a1| ((-a1).mul_i(), a0.mul_i()));
    }

    /// Applies a Pauli-Z to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_z(&mut self, k: usize) {
        self.for_each_pair(k, |a0, a1| (a0, -a1));
    }

    /// Applies `Rz(θ) = diag(e^{−iθ/2}, e^{+iθ/2})` to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_rz(&mut self, k: usize, theta: f64) {
        let minus = Complex::cis(-theta / 2.0);
        let plus = Complex::cis(theta / 2.0);
        self.for_each_pair(k, |a0, a1| (a0 * minus, a1 * plus));
    }

    /// Applies `Rx(θ) = exp(−iθX/2)` to qubit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn apply_rx(&mut self, k: usize, theta: f64) {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        self.for_each_pair(k, |a0, a1| {
            (
                a0.scale(c) - a1.mul_i().scale(s),
                a1.scale(c) - a0.mul_i().scale(s),
            )
        });
    }

    /// Applies a CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they coincide.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control != target, "cx needs distinct qubits");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                self.amps.swap(i, i | tbit);
            }
        }
    }

    /// Applies a SWAP between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or they coincide.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a != b, "swap needs distinct qubits");
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for i in 0..self.amps.len() {
            if i & abit != 0 && i & bbit == 0 {
                self.amps.swap(i, (i & !abit) | bbit);
            }
        }
    }

    /// Applies a fully bound gate. `Measure` gates are ignored (sampling is
    /// a separate step).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ParametricCircuit`] if the gate still holds a
    /// symbolic angle.
    pub fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        match *gate {
            Gate::H { q } => self.apply_h(q),
            Gate::X { q } => self.apply_x(q),
            Gate::Rz { q, theta } => {
                let t = constant_angle(theta)?;
                self.apply_rz(q, t);
            }
            Gate::Rx { q, theta } => {
                let t = constant_angle(theta)?;
                self.apply_rx(q, t);
            }
            Gate::Cx { control, target } => self.apply_cx(control, target),
            Gate::Swap { a, b } => self.apply_swap(a, b),
            Gate::Measure { .. } => {}
        }
        Ok(())
    }

    /// Runs every gate of a bound circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the circuit is wider than the
    /// state and [`SimError::ParametricCircuit`] for unbound angles.
    pub fn run(&mut self, circuit: &QuantumCircuit) -> Result<(), SimError> {
        if circuit.num_qubits() > self.num_qubits {
            return Err(SimError::WidthMismatch {
                circuit: circuit.num_qubits(),
                state: self.num_qubits,
            });
        }
        for g in circuit.gates() {
            self.apply_gate(g)?;
        }
        Ok(())
    }

    /// Per-term expectations `(⟨Z_i⟩ per variable, ⟨Z_iZ_j⟩ per coupling in
    /// model order)` of a diagonal Ising Hamiltonian in this state — the
    /// statevector counterpart of
    /// [`crate::analytic::term_expectations_p1`], valid at any `p`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the model width differs from
    /// the state width.
    pub fn term_expectations(&self, model: &IsingModel) -> Result<(Vec<f64>, Vec<f64>), SimError> {
        if model.num_vars() != self.num_qubits {
            return Err(SimError::WidthMismatch {
                circuit: model.num_vars(),
                state: self.num_qubits,
            });
        }
        let mut z_exp = vec![0.0f64; self.num_qubits];
        let mut zz_exp = vec![0.0f64; model.num_couplings()];
        let pairs: Vec<(usize, usize)> = model.couplings().map(|(k, _)| k).collect();
        for (idx, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p == 0.0 {
                continue;
            }
            for (k, ze) in z_exp.iter_mut().enumerate() {
                let s = if idx >> k & 1 == 0 { 1.0 } else { -1.0 };
                *ze += p * s;
            }
            for ((i, j), acc) in pairs.iter().zip(zz_exp.iter_mut()) {
                let si = if idx >> *i & 1 == 0 { 1.0 } else { -1.0 };
                let sj = if idx >> *j & 1 == 0 { 1.0 } else { -1.0 };
                *acc += p * si * sj;
            }
        }
        Ok((z_exp, zz_exp))
    }

    /// The expectation value of a diagonal Ising Hamiltonian in this state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if the model width differs from
    /// the state width.
    pub fn expectation_ising(&self, model: &IsingModel) -> Result<f64, SimError> {
        let (z_exp, zz_exp) = self.term_expectations(model)?;
        ising_expectation_from_terms(model, &z_exp, &zz_exp)
    }

    /// Draws `shots` measurement outcomes (seeded), as basis indices.
    #[must_use]
    pub fn sample_indices(&self, shots: u64, seed: u64) -> Vec<usize> {
        let mut cumulative = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0f64;
        for a in &self.amps {
            acc += a.norm_sqr();
            cumulative.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..shots)
            .map(|_| {
                let u = rng.random::<f64>() * total;
                cumulative
                    .partition_point(|&c| c < u)
                    .min(self.amps.len() - 1)
            })
            .collect()
    }

    /// Draws `shots` outcomes as spin assignments.
    #[must_use]
    pub fn sample_spins(&self, shots: u64, seed: u64) -> Vec<SpinVec> {
        self.sample_indices(shots, seed)
            .into_iter()
            .map(|idx| SpinVec::from_index(idx as u64, self.num_qubits))
            .collect()
    }

    fn for_each_pair(
        &mut self,
        k: usize,
        mut f: impl FnMut(Complex, Complex) -> (Complex, Complex),
    ) {
        assert!(k < self.num_qubits, "qubit {k} out of range");
        let bit = 1usize << k;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let (a0, a1) = f(self.amps[i], self.amps[i | bit]);
                self.amps[i] = a0;
                self.amps[i | bit] = a1;
            }
        }
    }
}

/// Assembles an Ising expectation from per-term expectations in the exact
/// accumulation order of [`Statevector::expectation_ising`] (which
/// delegates here), so callers holding the output of
/// [`Statevector::term_expectations`] derive the scalar bit-identically
/// without traversing the state a second time.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] when `z` does not match the
/// model's variable count and [`SimError::InvalidParameters`] when `zz`
/// does not match its coupling count.
pub fn ising_expectation_from_terms(
    model: &IsingModel,
    z: &[f64],
    zz: &[f64],
) -> Result<f64, SimError> {
    if z.len() != model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: z.len(),
            state: model.num_vars(),
        });
    }
    if zz.len() != model.num_couplings() {
        return Err(SimError::InvalidParameters(format!(
            "{} coupling expectations for a model with {} couplings",
            zz.len(),
            model.num_couplings()
        )));
    }
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        ev += hi * z[i];
    }
    for (acc, (_, jij)) in zz.iter().zip(model.couplings()) {
        ev += jij * acc;
    }
    Ok(ev)
}

fn constant_angle(theta: fq_circuit::Angle) -> Result<f64, SimError> {
    match theta {
        fq_circuit::Angle::Constant(v) => Ok(v),
        _ => Err(SimError::ParametricCircuit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::Angle;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn bell_state_probabilities() {
        let mut sv = Statevector::zero_state(2).unwrap();
        sv.apply_h(0);
        sv.apply_cx(0, 1);
        assert_close(sv.probability(0b00), 0.5);
        assert_close(sv.probability(0b11), 0.5);
        assert_close(sv.probability(0b01), 0.0);
        assert_close(sv.norm(), 1.0);
    }

    #[test]
    fn x_flips_and_y_z_phase() {
        let mut sv = Statevector::zero_state(1).unwrap();
        sv.apply_x(0);
        assert_close(sv.probability(1), 1.0);
        sv.apply_z(0);
        assert_close(sv.amplitude(1).re, -1.0);
        let mut sy = Statevector::zero_state(1).unwrap();
        sy.apply_y(0);
        // Y|0⟩ = i|1⟩.
        assert_close(sy.amplitude(1).im, 1.0);
    }

    #[test]
    fn rotations_preserve_norm() {
        let mut sv = Statevector::zero_state(3).unwrap();
        sv.apply_h(0);
        sv.apply_rx(1, 0.7);
        sv.apply_rz(0, 1.3);
        sv.apply_cx(0, 2);
        sv.apply_swap(1, 2);
        assert_close(sv.norm(), 1.0);
    }

    #[test]
    fn rx_pi_equals_x_up_to_phase() {
        let mut a = Statevector::zero_state(1).unwrap();
        a.apply_rx(0, std::f64::consts::PI);
        // Rx(π)|0⟩ = −i|1⟩.
        assert_close(a.probability(1), 1.0);
        assert_close(a.amplitude(1).im, -1.0);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut sv = Statevector::zero_state(2).unwrap();
        sv.apply_x(0); // |01⟩ in (q1 q0) order = index 1
        sv.apply_swap(0, 1);
        assert_close(sv.probability(0b10), 1.0);
    }

    #[test]
    fn expectation_of_simple_models() {
        // |00⟩: ⟨Z0⟩ = ⟨Z1⟩ = +1, ⟨Z0Z1⟩ = +1.
        let sv = Statevector::zero_state(2).unwrap();
        let mut m = IsingModel::new(2);
        m.set_linear(0, 0.5).unwrap();
        m.set_coupling(0, 1, 2.0).unwrap();
        m.set_offset(1.0);
        assert_close(sv.expectation_ising(&m).unwrap(), 3.5);

        // Bell state: ⟨Z0⟩ = 0 but ⟨Z0Z1⟩ = +1.
        let mut bell = Statevector::zero_state(2).unwrap();
        bell.apply_h(0);
        bell.apply_cx(0, 1);
        assert_close(bell.expectation_ising(&m).unwrap(), 3.0);
    }

    #[test]
    fn run_rejects_parametric_circuits() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(
            0,
            Angle::Gamma {
                layer: 0,
                scale: 1.0,
                term: 0,
            },
        )
        .unwrap();
        let mut sv = Statevector::zero_state(1).unwrap();
        assert!(matches!(sv.run(&qc), Err(SimError::ParametricCircuit)));
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut sv = Statevector::zero_state(1).unwrap();
        sv.apply_h(0);
        let samples = sv.sample_indices(10_000, 42);
        let ones = samples.iter().filter(|&&s| s == 1).count();
        assert!((ones as f64 / 10_000.0 - 0.5).abs() < 0.03);
        // Determinism.
        assert_eq!(samples, sv.sample_indices(10_000, 42));
    }

    #[test]
    fn width_limits_enforced() {
        assert!(Statevector::zero_state(MAX_STATEVECTOR_QUBITS + 1).is_err());
        let mut sv = Statevector::zero_state(1).unwrap();
        let qc = QuantumCircuit::new(2);
        assert!(matches!(sv.run(&qc), Err(SimError::WidthMismatch { .. })));
    }
}
