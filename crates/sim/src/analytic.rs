//! Closed-form single-layer (p = 1) QAOA expectation values.
//!
//! For the state `|γ, β⟩ = e^{−iβ·ΣX} · e^{−iγ·C} · |+⟩^{⊗n}` over an
//! arbitrary Ising Hamiltonian, the expectations `⟨Z_a⟩` and `⟨Z_a Z_b⟩`
//! have exact product formulas (Ozaeta, van Dam & McMahon, *Quantum Sci.
//! Technol.* 2022). They evaluate in `O(deg)` per term — no statevector —
//! which is what makes the 500-qubit practical-scale figures and the 50×50
//! landscape scans tractable. The statevector simulator cross-validates
//! these formulas in this module's tests.

use fq_ising::IsingModel;

use crate::SimError;

/// `⟨Z_a⟩` after one QAOA layer with angles `(γ, β)`.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if `a` is out of range.
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_z;
///
/// // Zero linear term ⇒ ⟨Z⟩ = 0 by symmetry, at any angles.
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, 1.0)?;
/// assert_eq!(expectation_z(&m, 0, 0.4, 0.9)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_z(model: &IsingModel, a: usize, gamma: f64, beta: f64) -> Result<f64, SimError> {
    if a >= model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: a + 1,
            state: model.num_vars(),
        });
    }
    let h_a = model.linear(a);
    if h_a == 0.0 {
        // sin(2γ·0) = 0; skip the neighbour product entirely.
        return Ok(0.0);
    }
    let mut prod = 1.0;
    for ((i, j), jij) in model.couplings() {
        if i == a || j == a {
            prod *= (2.0 * gamma * jij).cos();
        }
    }
    Ok((2.0 * beta).sin() * (2.0 * gamma * h_a).sin() * prod)
}

/// `⟨Z_a Z_b⟩` after one QAOA layer with angles `(γ, β)`, for any pair.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] for out-of-range indices and
/// [`SimError::InvalidParameters`] when `a == b`.
pub fn expectation_zz(
    model: &IsingModel,
    a: usize,
    b: usize,
    gamma: f64,
    beta: f64,
) -> Result<f64, SimError> {
    let n = model.num_vars();
    if a >= n || b >= n {
        return Err(SimError::WidthMismatch {
            circuit: a.max(b) + 1,
            state: n,
        });
    }
    if a == b {
        return Err(SimError::InvalidParameters(
            "⟨Z_aZ_b⟩ needs distinct spins".into(),
        ));
    }

    // Gather coupling views J_ac and J_bc for every third spin c.
    let mut j_ac = vec![0.0f64; n];
    let mut j_bc = vec![0.0f64; n];
    let mut j_ab = 0.0f64;
    for ((i, j), jij) in model.couplings() {
        if (i, j) == (a.min(b), a.max(b)) {
            j_ab = jij;
        } else if i == a {
            j_ac[j] = jij;
        } else if j == a {
            j_ac[i] = jij;
        } else if i == b {
            j_bc[j] = jij;
        } else if j == b {
            j_bc[i] = jij;
        }
    }
    let h_a = model.linear(a);
    let h_b = model.linear(b);
    let g2 = 2.0 * gamma;

    // First term: (sin 4β / 2) · sin(2γJ_ab) · [cos-chain(a) + cos-chain(b)].
    let mut chain_a = (g2 * h_a).cos();
    let mut chain_b = (g2 * h_b).cos();
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 {
            chain_a *= (g2 * j_ac[c]).cos();
        }
        if j_bc[c] != 0.0 {
            chain_b *= (g2 * j_bc[c]).cos();
        }
    }
    let term1 = 0.5 * (4.0 * beta).sin() * (g2 * j_ab).sin() * (chain_a + chain_b);

    // Second term: −(sin²2β / 2)·[cos(2γ(h_a+h_b))·F⁺ − cos(2γ(h_a−h_b))·F⁻]
    // with F± = Π_c cos(2γ(J_ac ± J_bc)).
    let mut f_plus = 1.0;
    let mut f_minus = 1.0;
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 || j_bc[c] != 0.0 {
            f_plus *= (g2 * (j_ac[c] + j_bc[c])).cos();
            f_minus *= (g2 * (j_ac[c] - j_bc[c])).cos();
        }
    }
    let s2b = (2.0 * beta).sin();
    let term2 =
        -0.5 * s2b * s2b * ((g2 * (h_a + h_b)).cos() * f_plus - (g2 * (h_a - h_b)).cos() * f_minus);

    Ok(term1 + term2)
}

/// The full p = 1 QAOA expectation `⟨C⟩ = offset + Σ h·⟨Z⟩ + Σ J·⟨ZZ⟩`.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_p1;
///
/// let mut m = IsingModel::new(3);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, 1.0)?;
/// // At (γ, β) = (0, 0) the state is |+⟩^n: every Z-expectation vanishes.
/// assert_eq!(expectation_p1(&m, 0.0, 0.0)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_p1(model: &IsingModel, gamma: f64, beta: f64) -> Result<f64, SimError> {
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            ev += hi * expectation_z(model, i, gamma, beta)?;
        }
    }
    for ((i, j), jij) in model.couplings() {
        ev += jij * expectation_zz(model, i, j, gamma, beta)?;
    }
    Ok(ev)
}

/// All per-term expectations of a model at `(γ, β)`: `(z, zz)` where
/// `z[i] = ⟨Z_i⟩` and `zz[k]` matches the model's coupling order.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
pub fn term_expectations_p1(
    model: &IsingModel,
    gamma: f64,
    beta: f64,
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let mut z = Vec::with_capacity(model.num_vars());
    for i in 0..model.num_vars() {
        z.push(expectation_z(model, i, gamma, beta)?);
    }
    let mut zz = Vec::with_capacity(model.num_couplings());
    for ((i, j), _) in model.couplings() {
        zz.push(expectation_zz(model, i, j, gamma, beta)?);
    }
    Ok((z, zz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Statevector;
    use fq_circuit::build_qaoa_circuit;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Statevector reference for ⟨C⟩ at p = 1.
    fn sv_expectation(model: &IsingModel, gamma: f64, beta: f64) -> f64 {
        let qc = build_qaoa_circuit(model, 1).unwrap();
        let bound = qc.bind(&[gamma], &[beta]).unwrap();
        let mut sv = Statevector::zero_state(model.num_vars()).unwrap();
        sv.run(&bound).unwrap();
        sv.expectation_ising(model).unwrap()
    }

    fn random_model(n: usize, with_linear: bool, density: f64, seed: u64) -> IsingModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = IsingModel::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random::<f64>() < density {
                    let w = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    m.set_coupling(i, j, w).unwrap();
                }
            }
            if with_linear {
                m.set_linear(i, rng.random_range(-1.0..1.0)).unwrap();
            }
        }
        m
    }

    #[test]
    fn matches_statevector_on_pure_quadratic_models() {
        for seed in 0..4 {
            let m = random_model(6, false, 0.5, seed);
            for &(g, b) in &[(0.2, 0.3), (0.9, -0.4), (-1.1, 0.7)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!(
                    (exact - sv).abs() < 1e-9,
                    "seed {seed} ({g}, {b}): {exact} vs {sv}"
                );
            }
        }
    }

    #[test]
    fn matches_statevector_with_linear_terms() {
        for seed in 10..14 {
            let m = random_model(5, true, 0.6, seed);
            for &(g, b) in &[(0.15, 0.25), (0.8, 1.2)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!((exact - sv).abs() < 1e-9, "seed {seed}: {exact} vs {sv}");
            }
        }
    }

    #[test]
    fn matches_statevector_with_offset() {
        let mut m = random_model(4, true, 0.7, 21);
        m.set_offset(3.25);
        let exact = expectation_p1(&m, 0.3, 0.5).unwrap();
        let sv = sv_expectation(&m, 0.3, 0.5);
        assert!((exact - sv).abs() < 1e-9);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        let m = random_model(6, true, 0.5, 33);
        let ev = expectation_p1(&m, 0.0, 0.0).unwrap();
        assert!((ev - m.offset()).abs() < 1e-12);
    }

    #[test]
    fn symmetric_models_have_zero_single_z() {
        let m = random_model(6, false, 0.5, 44);
        for i in 0..6 {
            assert_eq!(expectation_z(&m, i, 0.7, 0.3).unwrap(), 0.0);
        }
    }

    #[test]
    fn rejects_bad_indices() {
        let m = random_model(3, false, 1.0, 0);
        assert!(expectation_z(&m, 5, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 0, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 9, 0.1, 0.1).is_err());
    }

    #[test]
    fn term_expectations_assemble_to_full_ev() {
        let m = random_model(5, true, 0.6, 55);
        let (z, zz) = term_expectations_p1(&m, 0.4, 0.6).unwrap();
        let mut ev = m.offset();
        for (i, hi) in m.linears() {
            ev += hi * z[i];
        }
        for ((_, jij), zzk) in m.couplings().zip(zz.iter()) {
            ev += jij * zzk;
        }
        let direct = expectation_p1(&m, 0.4, 0.6).unwrap();
        assert!((ev - direct).abs() < 1e-12);
    }
}
