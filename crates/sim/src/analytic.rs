//! Closed-form single-layer (p = 1) QAOA expectation values.
//!
//! For the state `|γ, β⟩ = e^{−iβ·ΣX} · e^{−iγ·C} · |+⟩^{⊗n}` over an
//! arbitrary Ising Hamiltonian, the expectations `⟨Z_a⟩` and `⟨Z_a Z_b⟩`
//! have exact product formulas (Ozaeta, van Dam & McMahon, *Quantum Sci.
//! Technol.* 2022). They evaluate in `O(deg)` per term — no statevector —
//! which is what makes the 500-qubit practical-scale figures and the 50×50
//! landscape scans tractable. The statevector simulator cross-validates
//! these formulas in this module's tests.

use fq_ising::IsingModel;

use crate::SimError;

/// `⟨Z_a⟩` after one QAOA layer with angles `(γ, β)`.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if `a` is out of range.
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_z;
///
/// // Zero linear term ⇒ ⟨Z⟩ = 0 by symmetry, at any angles.
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, 1.0)?;
/// assert_eq!(expectation_z(&m, 0, 0.4, 0.9)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_z(model: &IsingModel, a: usize, gamma: f64, beta: f64) -> Result<f64, SimError> {
    if a >= model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: a + 1,
            state: model.num_vars(),
        });
    }
    let h_a = model.linear(a);
    if h_a == 0.0 {
        // sin(2γ·0) = 0; skip the neighbour product entirely.
        return Ok(0.0);
    }
    let mut prod = 1.0;
    for ((i, j), jij) in model.couplings() {
        if i == a || j == a {
            prod *= (2.0 * gamma * jij).cos();
        }
    }
    Ok((2.0 * beta).sin() * (2.0 * gamma * h_a).sin() * prod)
}

/// `⟨Z_a Z_b⟩` after one QAOA layer with angles `(γ, β)`, for any pair.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] for out-of-range indices and
/// [`SimError::InvalidParameters`] when `a == b`.
pub fn expectation_zz(
    model: &IsingModel,
    a: usize,
    b: usize,
    gamma: f64,
    beta: f64,
) -> Result<f64, SimError> {
    let n = model.num_vars();
    if a >= n || b >= n {
        return Err(SimError::WidthMismatch {
            circuit: a.max(b) + 1,
            state: n,
        });
    }
    if a == b {
        return Err(SimError::InvalidParameters(
            "⟨Z_aZ_b⟩ needs distinct spins".into(),
        ));
    }

    // Gather coupling views J_ac and J_bc for every third spin c.
    let mut j_ac = vec![0.0f64; n];
    let mut j_bc = vec![0.0f64; n];
    let mut j_ab = 0.0f64;
    for ((i, j), jij) in model.couplings() {
        if (i, j) == (a.min(b), a.max(b)) {
            j_ab = jij;
        } else if i == a {
            j_ac[j] = jij;
        } else if j == a {
            j_ac[i] = jij;
        } else if i == b {
            j_bc[j] = jij;
        } else if j == b {
            j_bc[i] = jij;
        }
    }
    let h_a = model.linear(a);
    let h_b = model.linear(b);
    let g2 = 2.0 * gamma;

    // First term: (sin 4β / 2) · sin(2γJ_ab) · [cos-chain(a) + cos-chain(b)].
    let mut chain_a = (g2 * h_a).cos();
    let mut chain_b = (g2 * h_b).cos();
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 {
            chain_a *= (g2 * j_ac[c]).cos();
        }
        if j_bc[c] != 0.0 {
            chain_b *= (g2 * j_bc[c]).cos();
        }
    }
    let term1 = 0.5 * (4.0 * beta).sin() * (g2 * j_ab).sin() * (chain_a + chain_b);

    // Second term: −(sin²2β / 2)·[cos(2γ(h_a+h_b))·F⁺ − cos(2γ(h_a−h_b))·F⁻]
    // with F± = Π_c cos(2γ(J_ac ± J_bc)).
    let mut f_plus = 1.0;
    let mut f_minus = 1.0;
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 || j_bc[c] != 0.0 {
            f_plus *= (g2 * (j_ac[c] + j_bc[c])).cos();
            f_minus *= (g2 * (j_ac[c] - j_bc[c])).cos();
        }
    }
    let s2b = (2.0 * beta).sin();
    let term2 =
        -0.5 * s2b * s2b * ((g2 * (h_a + h_b)).cos() * f_plus - (g2 * (h_a - h_b)).cos() * f_minus);

    Ok(term1 + term2)
}

/// The full p = 1 QAOA expectation `⟨C⟩ = offset + Σ h·⟨Z⟩ + Σ J·⟨ZZ⟩`.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_p1;
///
/// let mut m = IsingModel::new(3);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, 1.0)?;
/// // At (γ, β) = (0, 0) the state is |+⟩^n: every Z-expectation vanishes.
/// assert_eq!(expectation_p1(&m, 0.0, 0.0)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_p1(model: &IsingModel, gamma: f64, beta: f64) -> Result<f64, SimError> {
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            ev += hi * expectation_z(model, i, gamma, beta)?;
        }
    }
    for ((i, j), jij) in model.couplings() {
        ev += jij * expectation_zz(model, i, j, gamma, beta)?;
    }
    Ok(ev)
}

/// All per-term expectations of a model at `(γ, β)`: `(z, zz)` where
/// `z[i] = ⟨Z_i⟩` and `zz[k]` matches the model's coupling order.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
pub fn term_expectations_p1(
    model: &IsingModel,
    gamma: f64,
    beta: f64,
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let mut z = Vec::with_capacity(model.num_vars());
    for i in 0..model.num_vars() {
        z.push(expectation_z(model, i, gamma, beta)?);
    }
    let mut zz = Vec::with_capacity(model.num_couplings());
    for ((i, j), _) in model.couplings() {
        zz.push(expectation_zz(model, i, j, gamma, beta)?);
    }
    Ok((z, zz))
}

/// Assembles the full p = 1 expectation from already-computed per-term
/// expectations — the output of [`term_expectations_p1`] — in **exactly**
/// the accumulation order of [`expectation_p1`], so the result is
/// bit-identical to a direct evaluation without re-deriving any term.
///
/// This is the hot-path half of the old
/// `expectation_p1` + `term_expectations_p1` double evaluation: callers
/// that need both the scalar and the terms now compute the terms once and
/// assemble the scalar for free.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] when `z` does not match the
/// model's variable count and [`SimError::InvalidParameters`] when `zz`
/// does not match its coupling count.
pub fn expectation_from_terms_p1(
    model: &IsingModel,
    z: &[f64],
    zz: &[f64],
) -> Result<f64, SimError> {
    if z.len() != model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: z.len(),
            state: model.num_vars(),
        });
    }
    if zz.len() != model.num_couplings() {
        return Err(SimError::InvalidParameters(format!(
            "{} coupling expectations for a model with {} couplings",
            zz.len(),
            model.num_couplings()
        )));
    }
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        // `expectation_p1` skips exact-zero linear terms; mirror that so
        // the accumulation sequence (and hence every bit) matches.
        if hi != 0.0 {
            ev += hi * z[i];
        }
    }
    for ((_, jij), zzk) in model.couplings().zip(zz.iter()) {
        ev += jij * zzk;
    }
    Ok(ev)
}

/// A model preprocessed for repeated p = 1 analytic evaluation.
///
/// [`expectation_z`] and [`expectation_zz`] re-gather the model's coupling
/// structure on **every call** — an `O(n)` dense scatter per `⟨Z_aZ_b⟩`
/// term — which dominates the parameter-optimization hot path (a grid
/// scan plus Nelder–Mead evaluates the same model thousands of times).
/// `PreparedP1` gathers that structure once; each subsequent evaluation is
/// `O(Σ deg)` with zero allocation, and [`PreparedP1::row`] additionally
/// hoists every γ-only subexpression out of a β sweep (the row axis of a
/// [`grid_scan_2d`](../../fq_optim/fn.grid_scan_2d.html)-style scan).
///
/// Every evaluation is **bit-identical** to the unprepared functions: the
/// preprocessing only reorders *when* subexpressions are computed, never
/// the floating-point operation order within them (pinned by tests).
#[derive(Clone, Debug)]
pub struct PreparedP1<'m> {
    model: &'m IsingModel,
    offset: f64,
    /// Vars with a nonzero linear term, in [`IsingModel::linears`] order:
    /// `(index, h_a, incident couplings in coupling-iteration order)`.
    lin: Vec<(usize, f64, Vec<f64>)>,
    /// One record per coupling, in [`IsingModel::couplings`] order.
    coup: Vec<PreparedPair>,
}

/// Preprocessed structure of one `⟨Z_aZ_b⟩` term.
#[derive(Clone, Debug)]
struct PreparedPair {
    j_ab: f64,
    h_a: f64,
    h_b: f64,
    /// Third-spin couplings `(J_ac, J_bc)` for every `c` (ascending) with
    /// at least one of the two nonzero — the traversal order of the
    /// dense `0..n` loops in [`expectation_zz`].
    third: Vec<(f64, f64)>,
}

/// The γ-dependent factors of one row of a `(γ, β)` scan, produced by
/// [`PreparedP1::row`]; evaluate points along the row with
/// [`P1Row::at`].
#[derive(Clone, Debug)]
pub struct P1Row {
    offset: f64,
    /// Per nonzero-linear var: `(h_a, sin(2γ·h_a), Π cos(2γ·J_inc))`.
    lin: Vec<(f64, f64, f64)>,
    /// Per coupling: `(J_ab, sin(2γ·J_ab), chain_a + chain_b, D)` where
    /// `D = cos(2γ(h_a+h_b))·F⁺ − cos(2γ(h_a−h_b))·F⁻`.
    coup: Vec<(f64, f64, f64, f64)>,
}

impl<'m> PreparedP1<'m> {
    /// Preprocesses `model` (one `O(|J|·n)` pass — about the cost of a
    /// single unprepared evaluation).
    #[must_use]
    pub fn new(model: &'m IsingModel) -> PreparedP1<'m> {
        let n = model.num_vars();
        let lin: Vec<(usize, f64, Vec<f64>)> = model
            .linears()
            .filter(|&(_, hi)| hi != 0.0)
            .map(|(a, hi)| {
                // The incident-coupling product of `expectation_z`, in
                // coupling-iteration order.
                let adj: Vec<f64> = model
                    .couplings()
                    .filter(|&((i, j), _)| i == a || j == a)
                    .map(|(_, jij)| jij)
                    .collect();
                (a, hi, adj)
            })
            .collect();
        let coup = model
            .couplings()
            .map(|((a, b), _)| {
                // Reproduce the dense gather of `expectation_zz` exactly,
                // then keep only the rows its loops would touch.
                let mut j_ac = vec![0.0f64; n];
                let mut j_bc = vec![0.0f64; n];
                let mut j_ab = 0.0f64;
                for ((i, j), jij) in model.couplings() {
                    if (i, j) == (a.min(b), a.max(b)) {
                        j_ab = jij;
                    } else if i == a {
                        j_ac[j] = jij;
                    } else if j == a {
                        j_ac[i] = jij;
                    } else if i == b {
                        j_bc[j] = jij;
                    } else if j == b {
                        j_bc[i] = jij;
                    }
                }
                let third = (0..n)
                    .filter(|&c| c != a && c != b && (j_ac[c] != 0.0 || j_bc[c] != 0.0))
                    .map(|c| (j_ac[c], j_bc[c]))
                    .collect();
                PreparedPair {
                    j_ab,
                    h_a: model.linear(a),
                    h_b: model.linear(b),
                    third,
                }
            })
            .collect();
        PreparedP1 {
            model,
            offset: model.offset(),
            lin,
            coup,
        }
    }

    /// The model this evaluator was prepared from.
    #[must_use]
    pub fn model(&self) -> &'m IsingModel {
        self.model
    }

    /// `⟨C⟩` at `(γ, β)` — bit-identical to [`expectation_p1`], without
    /// re-gathering the model structure or allocating.
    #[must_use]
    pub fn at(&self, gamma: f64, beta: f64) -> f64 {
        let s2b = (2.0 * beta).sin();
        let s4b = (4.0 * beta).sin();
        let mut ev = self.offset;
        for (_, hi, adj) in &self.lin {
            let (sgh, prod) = Self::lin_gamma(gamma, *hi, adj);
            ev += hi * ((s2b * sgh) * prod);
        }
        for pair in &self.coup {
            let (sj, chains, d) = Self::pair_gamma(gamma, pair);
            ev += pair.j_ab * (((0.5 * s4b) * sj) * chains + ((-0.5 * s2b) * s2b) * d);
        }
        ev
    }

    /// All per-term expectations at `(γ, β)` — bit-identical to
    /// [`term_expectations_p1`], in the same `(z, zz)` layout.
    #[must_use]
    pub fn terms_at(&self, gamma: f64, beta: f64) -> (Vec<f64>, Vec<f64>) {
        let s2b = (2.0 * beta).sin();
        let s4b = (4.0 * beta).sin();
        let mut z = vec![0.0f64; self.model.num_vars()];
        for (a, hi, adj) in &self.lin {
            let (sgh, prod) = Self::lin_gamma(gamma, *hi, adj);
            z[*a] = (s2b * sgh) * prod;
        }
        let zz = self
            .coup
            .iter()
            .map(|pair| {
                let (sj, chains, d) = Self::pair_gamma(gamma, pair);
                ((0.5 * s4b) * sj) * chains + ((-0.5 * s2b) * s2b) * d
            })
            .collect();
        (z, zz)
    }

    /// Hoists every γ-only subexpression for a β sweep at fixed `γ`: one
    /// `O(Σ deg)` row setup makes each [`P1Row::at`] call `O(V + E)`
    /// with no trigonometry beyond the two β sines.
    #[must_use]
    pub fn row(&self, gamma: f64) -> P1Row {
        P1Row {
            offset: self.offset,
            lin: self
                .lin
                .iter()
                .map(|(_, hi, adj)| {
                    let (sgh, prod) = Self::lin_gamma(gamma, *hi, adj);
                    (*hi, sgh, prod)
                })
                .collect(),
            coup: self
                .coup
                .iter()
                .map(|pair| {
                    let (sj, chains, d) = Self::pair_gamma(gamma, pair);
                    (pair.j_ab, sj, chains, d)
                })
                .collect(),
        }
    }

    /// γ-only factors of a `⟨Z_a⟩` term: `(sin(2γ·h_a), Π cos(2γ·J))`.
    fn lin_gamma(gamma: f64, h_a: f64, adj: &[f64]) -> (f64, f64) {
        let mut prod = 1.0;
        for &jij in adj {
            prod *= (2.0 * gamma * jij).cos();
        }
        ((2.0 * gamma * h_a).sin(), prod)
    }

    /// γ-only factors of a `⟨Z_aZ_b⟩` term:
    /// `(sin(2γ·J_ab), chain_a + chain_b, D)`.
    fn pair_gamma(gamma: f64, pair: &PreparedPair) -> (f64, f64, f64) {
        let g2 = 2.0 * gamma;
        let mut chain_a = (g2 * pair.h_a).cos();
        let mut chain_b = (g2 * pair.h_b).cos();
        let mut f_plus = 1.0;
        let mut f_minus = 1.0;
        for &(j_ac, j_bc) in &pair.third {
            if j_ac != 0.0 {
                chain_a *= (g2 * j_ac).cos();
            }
            if j_bc != 0.0 {
                chain_b *= (g2 * j_bc).cos();
            }
            f_plus *= (g2 * (j_ac + j_bc)).cos();
            f_minus *= (g2 * (j_ac - j_bc)).cos();
        }
        let d = (g2 * (pair.h_a + pair.h_b)).cos() * f_plus
            - (g2 * (pair.h_a - pair.h_b)).cos() * f_minus;
        ((g2 * pair.j_ab).sin(), chain_a + chain_b, d)
    }
}

impl P1Row {
    /// `⟨C⟩` at `(γ_row, β)` — bit-identical to
    /// [`expectation_p1`] at the row's γ.
    #[must_use]
    pub fn at(&self, beta: f64) -> f64 {
        let s2b = (2.0 * beta).sin();
        let s4b = (4.0 * beta).sin();
        let mut ev = self.offset;
        for &(hi, sgh, prod) in &self.lin {
            ev += hi * ((s2b * sgh) * prod);
        }
        for &(j_ab, sj, chains, d) in &self.coup {
            ev += j_ab * (((0.5 * s4b) * sj) * chains + ((-0.5 * s2b) * s2b) * d);
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Statevector;
    use fq_circuit::build_qaoa_circuit;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Statevector reference for ⟨C⟩ at p = 1.
    fn sv_expectation(model: &IsingModel, gamma: f64, beta: f64) -> f64 {
        let qc = build_qaoa_circuit(model, 1).unwrap();
        let bound = qc.bind(&[gamma], &[beta]).unwrap();
        let mut sv = Statevector::zero_state(model.num_vars()).unwrap();
        sv.run(&bound).unwrap();
        sv.expectation_ising(model).unwrap()
    }

    fn random_model(n: usize, with_linear: bool, density: f64, seed: u64) -> IsingModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = IsingModel::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random::<f64>() < density {
                    let w = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    m.set_coupling(i, j, w).unwrap();
                }
            }
            if with_linear {
                m.set_linear(i, rng.random_range(-1.0..1.0)).unwrap();
            }
        }
        m
    }

    #[test]
    fn matches_statevector_on_pure_quadratic_models() {
        for seed in 0..4 {
            let m = random_model(6, false, 0.5, seed);
            for &(g, b) in &[(0.2, 0.3), (0.9, -0.4), (-1.1, 0.7)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!(
                    (exact - sv).abs() < 1e-9,
                    "seed {seed} ({g}, {b}): {exact} vs {sv}"
                );
            }
        }
    }

    #[test]
    fn matches_statevector_with_linear_terms() {
        for seed in 10..14 {
            let m = random_model(5, true, 0.6, seed);
            for &(g, b) in &[(0.15, 0.25), (0.8, 1.2)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!((exact - sv).abs() < 1e-9, "seed {seed}: {exact} vs {sv}");
            }
        }
    }

    #[test]
    fn matches_statevector_with_offset() {
        let mut m = random_model(4, true, 0.7, 21);
        m.set_offset(3.25);
        let exact = expectation_p1(&m, 0.3, 0.5).unwrap();
        let sv = sv_expectation(&m, 0.3, 0.5);
        assert!((exact - sv).abs() < 1e-9);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        let m = random_model(6, true, 0.5, 33);
        let ev = expectation_p1(&m, 0.0, 0.0).unwrap();
        assert!((ev - m.offset()).abs() < 1e-12);
    }

    #[test]
    fn symmetric_models_have_zero_single_z() {
        let m = random_model(6, false, 0.5, 44);
        for i in 0..6 {
            assert_eq!(expectation_z(&m, i, 0.7, 0.3).unwrap(), 0.0);
        }
    }

    #[test]
    fn rejects_bad_indices() {
        let m = random_model(3, false, 1.0, 0);
        assert!(expectation_z(&m, 5, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 0, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 9, 0.1, 0.1).is_err());
    }

    #[test]
    fn prepared_evaluator_is_bit_identical() {
        for seed in 60..66 {
            let m = random_model(7, seed % 2 == 0, 0.55, seed);
            let prep = PreparedP1::new(&m);
            for &(g, b) in &[(0.2, 0.3), (0.9, -0.4), (-1.1, 0.7), (0.0, 0.0)] {
                // Exact equality, not tolerance: the prepared path must
                // reproduce every bit of the unprepared one.
                assert_eq!(prep.at(g, b), expectation_p1(&m, g, b).unwrap());
                assert_eq!(prep.row(g).at(b), expectation_p1(&m, g, b).unwrap());
                let (z, zz) = term_expectations_p1(&m, g, b).unwrap();
                assert_eq!(prep.terms_at(g, b), (z, zz));
            }
        }
    }

    #[test]
    fn expectation_from_terms_matches_direct_evaluation_exactly() {
        for seed in 70..76 {
            let m = random_model(6, seed % 2 == 0, 0.6, seed);
            let (g, b) = (0.37, -0.81);
            let (z, zz) = term_expectations_p1(&m, g, b).unwrap();
            assert_eq!(
                expectation_from_terms_p1(&m, &z, &zz).unwrap(),
                expectation_p1(&m, g, b).unwrap(),
                "seed {seed}: assembly must be bit-identical to the two-call path"
            );
        }
        let m = random_model(4, true, 0.8, 99);
        assert!(expectation_from_terms_p1(&m, &[0.0; 2], &[]).is_err());
    }

    #[test]
    fn term_expectations_assemble_to_full_ev() {
        let m = random_model(5, true, 0.6, 55);
        let (z, zz) = term_expectations_p1(&m, 0.4, 0.6).unwrap();
        let mut ev = m.offset();
        for (i, hi) in m.linears() {
            ev += hi * z[i];
        }
        for ((_, jij), zzk) in m.couplings().zip(zz.iter()) {
            ev += jij * zzk;
        }
        let direct = expectation_p1(&m, 0.4, 0.6).unwrap();
        assert!((ev - direct).abs() < 1e-12);
    }
}
