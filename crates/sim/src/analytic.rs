//! Closed-form single-layer (p = 1) QAOA expectation values.
//!
//! For the state `|γ, β⟩ = e^{−iβ·ΣX} · e^{−iγ·C} · |+⟩^{⊗n}` over an
//! arbitrary Ising Hamiltonian, the expectations `⟨Z_a⟩` and `⟨Z_a Z_b⟩`
//! have exact product formulas (Ozaeta, van Dam & McMahon, *Quantum Sci.
//! Technol.* 2022). They evaluate in `O(deg)` per term — no statevector —
//! which is what makes the 500-qubit practical-scale figures and the 50×50
//! landscape scans tractable. The statevector simulator cross-validates
//! these formulas in this module's tests.

use std::collections::HashMap;

use fq_ising::IsingModel;

use crate::SimError;

/// `⟨Z_a⟩` after one QAOA layer with angles `(γ, β)`.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if `a` is out of range.
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_z;
///
/// // Zero linear term ⇒ ⟨Z⟩ = 0 by symmetry, at any angles.
/// let mut m = IsingModel::new(2);
/// m.set_coupling(0, 1, 1.0)?;
/// assert_eq!(expectation_z(&m, 0, 0.4, 0.9)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_z(model: &IsingModel, a: usize, gamma: f64, beta: f64) -> Result<f64, SimError> {
    if a >= model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: a + 1,
            state: model.num_vars(),
        });
    }
    let h_a = model.linear(a);
    if h_a == 0.0 {
        // sin(2γ·0) = 0; skip the neighbour product entirely.
        return Ok(0.0);
    }
    let mut prod = 1.0;
    for ((i, j), jij) in model.couplings() {
        if i == a || j == a {
            prod *= (2.0 * gamma * jij).cos();
        }
    }
    Ok((2.0 * beta).sin() * (2.0 * gamma * h_a).sin() * prod)
}

/// `⟨Z_a Z_b⟩` after one QAOA layer with angles `(γ, β)`, for any pair.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] for out-of-range indices and
/// [`SimError::InvalidParameters`] when `a == b`.
pub fn expectation_zz(
    model: &IsingModel,
    a: usize,
    b: usize,
    gamma: f64,
    beta: f64,
) -> Result<f64, SimError> {
    let n = model.num_vars();
    if a >= n || b >= n {
        return Err(SimError::WidthMismatch {
            circuit: a.max(b) + 1,
            state: n,
        });
    }
    if a == b {
        return Err(SimError::InvalidParameters(
            "⟨Z_aZ_b⟩ needs distinct spins".into(),
        ));
    }

    // Gather coupling views J_ac and J_bc for every third spin c.
    let mut j_ac = vec![0.0f64; n];
    let mut j_bc = vec![0.0f64; n];
    let mut j_ab = 0.0f64;
    for ((i, j), jij) in model.couplings() {
        if (i, j) == (a.min(b), a.max(b)) {
            j_ab = jij;
        } else if i == a {
            j_ac[j] = jij;
        } else if j == a {
            j_ac[i] = jij;
        } else if i == b {
            j_bc[j] = jij;
        } else if j == b {
            j_bc[i] = jij;
        }
    }
    let h_a = model.linear(a);
    let h_b = model.linear(b);
    let g2 = 2.0 * gamma;

    // First term: (sin 4β / 2) · sin(2γJ_ab) · [cos-chain(a) + cos-chain(b)].
    let mut chain_a = (g2 * h_a).cos();
    let mut chain_b = (g2 * h_b).cos();
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 {
            chain_a *= (g2 * j_ac[c]).cos();
        }
        if j_bc[c] != 0.0 {
            chain_b *= (g2 * j_bc[c]).cos();
        }
    }
    let term1 = 0.5 * (4.0 * beta).sin() * (g2 * j_ab).sin() * (chain_a + chain_b);

    // Second term: −(sin²2β / 2)·[cos(2γ(h_a+h_b))·F⁺ − cos(2γ(h_a−h_b))·F⁻]
    // with F± = Π_c cos(2γ(J_ac ± J_bc)).
    let mut f_plus = 1.0;
    let mut f_minus = 1.0;
    for c in 0..n {
        if c == a || c == b {
            continue;
        }
        if j_ac[c] != 0.0 || j_bc[c] != 0.0 {
            f_plus *= (g2 * (j_ac[c] + j_bc[c])).cos();
            f_minus *= (g2 * (j_ac[c] - j_bc[c])).cos();
        }
    }
    let s2b = (2.0 * beta).sin();
    let term2 =
        -0.5 * s2b * s2b * ((g2 * (h_a + h_b)).cos() * f_plus - (g2 * (h_a - h_b)).cos() * f_minus);

    Ok(term1 + term2)
}

/// The full p = 1 QAOA expectation `⟨C⟩ = offset + Σ h·⟨Z⟩ + Σ J·⟨ZZ⟩`.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
///
/// # Example
///
/// ```
/// use fq_ising::IsingModel;
/// use fq_sim::analytic::expectation_p1;
///
/// let mut m = IsingModel::new(3);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, 1.0)?;
/// // At (γ, β) = (0, 0) the state is |+⟩^n: every Z-expectation vanishes.
/// assert_eq!(expectation_p1(&m, 0.0, 0.0)?, 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn expectation_p1(model: &IsingModel, gamma: f64, beta: f64) -> Result<f64, SimError> {
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            ev += hi * expectation_z(model, i, gamma, beta)?;
        }
    }
    for ((i, j), jij) in model.couplings() {
        ev += jij * expectation_zz(model, i, j, gamma, beta)?;
    }
    Ok(ev)
}

/// All per-term expectations of a model at `(γ, β)`: `(z, zz)` where
/// `z[i] = ⟨Z_i⟩` and `zz[k]` matches the model's coupling order.
///
/// # Errors
///
/// Propagates the per-term errors (none for a well-formed model).
pub fn term_expectations_p1(
    model: &IsingModel,
    gamma: f64,
    beta: f64,
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let mut z = Vec::with_capacity(model.num_vars());
    for i in 0..model.num_vars() {
        z.push(expectation_z(model, i, gamma, beta)?);
    }
    let mut zz = Vec::with_capacity(model.num_couplings());
    for ((i, j), _) in model.couplings() {
        zz.push(expectation_zz(model, i, j, gamma, beta)?);
    }
    Ok((z, zz))
}

/// Assembles the full p = 1 expectation from already-computed per-term
/// expectations — the output of [`term_expectations_p1`] — in **exactly**
/// the accumulation order of [`expectation_p1`], so the result is
/// bit-identical to a direct evaluation without re-deriving any term.
///
/// This is the hot-path half of the old
/// `expectation_p1` + `term_expectations_p1` double evaluation: callers
/// that need both the scalar and the terms now compute the terms once and
/// assemble the scalar for free.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] when `z` does not match the
/// model's variable count and [`SimError::InvalidParameters`] when `zz`
/// does not match its coupling count.
pub fn expectation_from_terms_p1(
    model: &IsingModel,
    z: &[f64],
    zz: &[f64],
) -> Result<f64, SimError> {
    if z.len() != model.num_vars() {
        return Err(SimError::WidthMismatch {
            circuit: z.len(),
            state: model.num_vars(),
        });
    }
    if zz.len() != model.num_couplings() {
        return Err(SimError::InvalidParameters(format!(
            "{} coupling expectations for a model with {} couplings",
            zz.len(),
            model.num_couplings()
        )));
    }
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        // `expectation_p1` skips exact-zero linear terms; mirror that so
        // the accumulation sequence (and hence every bit) matches.
        if hi != 0.0 {
            ev += hi * z[i];
        }
    }
    for ((_, jij), zzk) in model.couplings().zip(zz.iter()) {
        ev += jij * zzk;
    }
    Ok(ev)
}

/// A model preprocessed for repeated p = 1 analytic evaluation.
///
/// [`expectation_z`] and [`expectation_zz`] re-gather the model's coupling
/// structure on **every call** — an `O(n)` dense scatter per `⟨Z_aZ_b⟩`
/// term — which dominates the parameter-optimization hot path (a grid
/// scan plus Nelder–Mead evaluates the same model thousands of times).
/// `PreparedP1` gathers that structure once into a structure-of-arrays
/// layout: contiguous `h` and `J` coefficient arrays, CSR
/// degree/neighbour arrays for the per-term products, and — the key to
/// the γ-row speed — an **interned table of trig arguments**. Every
/// multiplier `m` that ever appears under `cos(2γ·m)` or `sin(2γ·m)` is
/// deduplicated by bit pattern at prepare time, so one row setup calls
/// `cos`/`sin` once per *distinct coefficient value* instead of once per
/// term occurrence (for the common ±1-weight models that is a handful of
/// calls instead of thousands), then assembles the per-term factors with
/// pure multiplies over the index arrays.
///
/// Every evaluation is **bit-identical** to the unprepared functions for
/// finite angles: interning only deduplicates *identical argument bits*
/// (identical `cos` results), and the remaining reordering moves *when*
/// subexpressions are computed, never the floating-point operation order
/// within them (pinned by tests, including the lane kernels of
/// [`P1Row::eval_lanes`]).
#[derive(Clone, Debug)]
pub struct PreparedP1<'m> {
    model: &'m IsingModel,
    offset: f64,
    /// Distinct multipliers appearing under `cos(2γ·m)`, interned by bit
    /// pattern in first-use order.
    cos_args: Vec<f64>,
    /// Distinct multipliers appearing under `sin(2γ·m)`, interned likewise.
    sin_args: Vec<f64>,
    /// Cos-table index of `+0.0` (`u32::MAX` if never interned) — the
    /// marker for one-sided third-spin entries in the row assembly.
    zero_cos: u32,
    lin: LinTerms,
    coup: PairTerms,
}

/// SoA storage of the `⟨Z_a⟩` terms (vars with a nonzero linear term, in
/// [`IsingModel::linears`] order).
#[derive(Clone, Debug, Default)]
struct LinTerms {
    /// Variable index `a` of each term.
    var: Vec<u32>,
    /// `h_a` of each term (contiguous coefficient array).
    h: Vec<f64>,
    /// Sin-table index of `h_a`.
    sin_h: Vec<u32>,
    /// CSR offsets into `adj` (`len + 1` entries; the slice
    /// `adj[off[i]..off[i+1]]` is term `i`'s incident-coupling degree).
    adj_off: Vec<u32>,
    /// Cos-table indices of the incident couplings, in
    /// coupling-iteration order — the product chain of [`expectation_z`].
    adj: Vec<u32>,
}

/// SoA storage of the `⟨Z_aZ_b⟩` terms, one per coupling in
/// [`IsingModel::couplings`] order.
#[derive(Clone, Debug, Default)]
struct PairTerms {
    /// `J_ab` of each pair (contiguous coefficient array).
    j: Vec<f64>,
    /// Sin-table index of `J_ab`.
    sin_j: Vec<u32>,
    /// Cos-table indices of `h_a`, `h_b`, `h_a + h_b`, `h_a − h_b`.
    cos_ha: Vec<u32>,
    cos_hb: Vec<u32>,
    cos_hsum: Vec<u32>,
    cos_hdif: Vec<u32>,
    /// CSR offsets into `thirds` (`len + 1` entries — the per-pair
    /// third-spin degree).
    third_off: Vec<u32>,
    /// Per third spin `c` (ascending, at least one of `J_ac`, `J_bc`
    /// nonzero — the traversal order of the dense `0..n` loops in
    /// [`expectation_zz`]): cos-table indices of
    /// `[J_ac, J_bc, J_ac + J_bc, J_ac − J_bc]`, interleaved so the row
    /// assembly's hottest loop walks one contiguous stream.
    thirds: Vec<[u32; 4]>,
}

/// Bit-pattern interner for trig multipliers: identical `f64` bits map to
/// one table slot, so the per-row trig tables stay as small as the set of
/// distinct coefficient values. (`−0.0` and `+0.0` intern separately —
/// they are different bits and `sin` is sign-sensitive at zero.)
fn intern(args: &mut Vec<f64>, index: &mut HashMap<u64, u32>, value: f64) -> u32 {
    *index.entry(value.to_bits()).or_insert_with(|| {
        args.push(value);
        u32::try_from(args.len() - 1).expect("trig table exceeds u32 indexing")
    })
}

/// The γ-dependent factors of one row of a `(γ, β)` scan, produced by
/// [`PreparedP1::row`], stored as contiguous per-term arrays. Evaluate
/// single points along the row with [`P1Row::at`], or whole β rows in
/// fixed-width lanes with [`P1Row::eval_lanes`].
#[derive(Clone, Debug)]
pub struct P1Row<'p> {
    offset: f64,
    /// Per nonzero-linear var: `h_a`, `sin(2γ·h_a)`, `Π cos(2γ·J_inc)`.
    /// The γ-independent coefficient array is borrowed from the
    /// preparation — rows are built once per γ in the scan hot loop, and
    /// cloning the coefficients there would be pure memcpy overhead.
    lin_h: &'p [f64],
    lin_sgh: Vec<f64>,
    lin_prod: Vec<f64>,
    /// Per coupling: `J_ab` (borrowed like `lin_h`), `sin(2γ·J_ab)`,
    /// `chain_a + chain_b`, and
    /// `D = cos(2γ(h_a+h_b))·F⁺ − cos(2γ(h_a−h_b))·F⁻`.
    coup_j: &'p [f64],
    coup_sj: Vec<f64>,
    coup_chains: Vec<f64>,
    coup_d: Vec<f64>,
}

/// Precomputed β-axis trigonometry (`sin 2β`, `sin 4β`) for a lane-kernel
/// sweep: the β grid of a 2-D scan is identical for every γ row, so its
/// per-point sines are computed **once per scan** and shared by all rows
/// ([`P1Row::eval_lanes`]) instead of twice per grid point.
#[derive(Clone, Debug)]
pub struct BetaTrig {
    s2b: Vec<f64>,
    s4b: Vec<f64>,
}

impl BetaTrig {
    /// Precomputes `sin(2β)` and `sin(4β)` for each β — the exact
    /// expressions [`P1Row::at`] evaluates per point.
    #[must_use]
    pub fn new(betas: &[f64]) -> BetaTrig {
        BetaTrig {
            s2b: betas.iter().map(|&b| (2.0 * b).sin()).collect(),
            s4b: betas.iter().map(|&b| (4.0 * b).sin()).collect(),
        }
    }

    /// Number of β points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.s2b.len()
    }

    /// Whether the β axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.s2b.is_empty()
    }
}

impl<'m> PreparedP1<'m> {
    /// Preprocesses `model` (one `O(|J|·n)` pass — about the cost of a
    /// single unprepared evaluation).
    #[must_use]
    pub fn new(model: &'m IsingModel) -> PreparedP1<'m> {
        let n = model.num_vars();
        let mut cos_args = Vec::new();
        let mut cos_ix = HashMap::new();
        let mut sin_args = Vec::new();
        let mut sin_ix = HashMap::new();
        let mut lin = LinTerms::default();
        lin.adj_off.push(0);
        for (a, hi) in model.linears().filter(|&(_, hi)| hi != 0.0) {
            lin.var.push(a as u32);
            lin.h.push(hi);
            lin.sin_h.push(intern(&mut sin_args, &mut sin_ix, hi));
            // The incident-coupling product of `expectation_z`, in
            // coupling-iteration order.
            for ((i, j), jij) in model.couplings() {
                if i == a || j == a {
                    lin.adj.push(intern(&mut cos_args, &mut cos_ix, jij));
                }
            }
            lin.adj_off
                .push(u32::try_from(lin.adj.len()).expect("adjacency exceeds u32 indexing"));
        }
        // Ascending adjacency lists (the BTreeMap key order guarantees
        // each list comes out sorted by neighbour index), so the
        // per-pair gather is O(deg a + deg b) instead of the dense
        // O(|J| + n) rescan of `expectation_zz` — with identical output:
        // stored couplings are never exactly 0.0, so "some J nonzero"
        // is exactly "c neighbours a or b", and untouched scratch slots
        // hold the same +0.0 the dense arrays were initialized with.
        let mut adj_list: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for ((i, j), jij) in model.couplings() {
            adj_list[i].push((j, jij));
            adj_list[j].push((i, jij));
        }
        let mut j_ac = vec![0.0f64; n];
        let mut j_bc = vec![0.0f64; n];
        let mut cands: Vec<usize> = Vec::new();
        let mut coup = PairTerms::default();
        coup.third_off.push(0);
        for ((a, b), j_ab) in model.couplings() {
            for &(c, jij) in &adj_list[a] {
                j_ac[c] = jij;
            }
            for &(c, jij) in &adj_list[b] {
                j_bc[c] = jij;
            }
            cands.clear();
            cands.extend(adj_list[a].iter().map(|&(c, _)| c));
            cands.extend(adj_list[b].iter().map(|&(c, _)| c));
            cands.sort_unstable();
            cands.dedup();
            let (h_a, h_b) = (model.linear(a), model.linear(b));
            coup.j.push(j_ab);
            coup.sin_j.push(intern(&mut sin_args, &mut sin_ix, j_ab));
            coup.cos_ha.push(intern(&mut cos_args, &mut cos_ix, h_a));
            coup.cos_hb.push(intern(&mut cos_args, &mut cos_ix, h_b));
            coup.cos_hsum
                .push(intern(&mut cos_args, &mut cos_ix, h_a + h_b));
            coup.cos_hdif
                .push(intern(&mut cos_args, &mut cos_ix, h_a - h_b));
            for &c in cands.iter().filter(|&&c| c != a && c != b) {
                coup.thirds.push([
                    intern(&mut cos_args, &mut cos_ix, j_ac[c]),
                    intern(&mut cos_args, &mut cos_ix, j_bc[c]),
                    intern(&mut cos_args, &mut cos_ix, j_ac[c] + j_bc[c]),
                    intern(&mut cos_args, &mut cos_ix, j_ac[c] - j_bc[c]),
                ]);
            }
            coup.third_off.push(
                u32::try_from(coup.thirds.len()).expect("third-spin list exceeds u32 indexing"),
            );
            // Reset only the touched scratch slots for the next pair.
            for &(c, _) in &adj_list[a] {
                j_ac[c] = 0.0;
            }
            for &(c, _) in &adj_list[b] {
                j_bc[c] = 0.0;
            }
        }
        // The cos-table slot holding `+0.0` (multiplier 1.0), if any
        // term interned it. A third-spin entry carrying this slot on its
        // `J_ac` or `J_bc` side is *one-sided* — `c` neighbours only one
        // endpoint — which is the overwhelmingly common case on sparse
        // graphs, and the row assembly specializes on it.
        let zero_cos = cos_ix.get(&0.0f64.to_bits()).copied().unwrap_or(u32::MAX);
        PreparedP1 {
            model,
            offset: model.offset(),
            cos_args,
            sin_args,
            zero_cos,
            lin,
            coup,
        }
    }

    /// The model this evaluator was prepared from.
    #[must_use]
    pub fn model(&self) -> &'m IsingModel {
        self.model
    }

    /// Number of analytic terms (`⟨Z⟩` + `⟨ZZ⟩`).
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.lin.h.len() + self.coup.j.len()
    }

    /// A machine-free estimate of the flop count of evaluating one full
    /// β row of `resolution` points (row setup plus lane assembly).
    /// Callers use it to decide when fanning rows across threads pays.
    #[must_use]
    pub fn row_flops(&self, resolution: usize) -> usize {
        let setup = self.cos_args.len() * 8 // trig ≈ several flops each
            + self.sin_args.len() * 8
            + self.lin.adj.len()
            + 4 * self.coup.thirds.len()
            + 6 * self.coup.j.len();
        let per_point = 3 * self.lin.h.len() + 7 * self.coup.j.len();
        setup + resolution * per_point
    }

    /// `⟨C⟩` at `(γ, β)` — bit-identical to [`expectation_p1`], without
    /// re-gathering the model structure. Equivalent to
    /// `self.row(gamma).at(beta)`; for β sweeps at fixed γ build the row
    /// once instead.
    #[must_use]
    pub fn at(&self, gamma: f64, beta: f64) -> f64 {
        self.row(gamma).at(beta)
    }

    /// All per-term expectations at `(γ, β)` — bit-identical to
    /// [`term_expectations_p1`], in the same `(z, zz)` layout.
    #[must_use]
    pub fn terms_at(&self, gamma: f64, beta: f64) -> (Vec<f64>, Vec<f64>) {
        let row = self.row(gamma);
        let s2b = (2.0 * beta).sin();
        let s4b = (4.0 * beta).sin();
        let mut z = vec![0.0f64; self.model.num_vars()];
        for (i, &a) in self.lin.var.iter().enumerate() {
            z[a as usize] = (s2b * row.lin_sgh[i]) * row.lin_prod[i];
        }
        let zz = (0..row.coup_j.len())
            .map(|k| {
                ((0.5 * s4b) * row.coup_sj[k]) * row.coup_chains[k]
                    + ((-0.5 * s2b) * s2b) * row.coup_d[k]
            })
            .collect();
        (z, zz)
    }

    /// Hoists every γ-only subexpression for a β sweep at fixed `γ`: the
    /// trig tables are evaluated once per **distinct** coefficient value,
    /// then the per-term factors are assembled with pure multiplies over
    /// the SoA index arrays. Each subsequent [`P1Row::at`] call is
    /// `O(V + E)` with no trigonometry beyond the two β sines, and
    /// [`P1Row::eval_lanes`] removes even those from the per-row cost.
    ///
    /// Where the unprepared code *skips* a `cos` factor for a zero
    /// coupling, this path multiplies by `cos(2γ·0) = 1.0` instead — a
    /// bitwise no-op on the finite chain values, so the gated and
    /// ungated forms agree bit-for-bit (finite γ; pinned by tests).
    #[must_use]
    pub fn row(&self, gamma: f64) -> P1Row<'_> {
        let g2 = 2.0 * gamma;
        // The only trig in the row: one call per distinct multiplier.
        // `g2 * m` reproduces the argument bits of the unprepared
        // `(2.0 * gamma * m).cos()` exactly (same two factors, same
        // association), so every table entry is bit-identical to the
        // per-occurrence call it replaces.
        let ct: Vec<f64> = self.cos_args.iter().map(|&m| (g2 * m).cos()).collect();
        let st: Vec<f64> = self.sin_args.iter().map(|&m| (g2 * m).sin()).collect();
        self.assemble_row(&ct, &st)
    }

    /// Like [`PreparedP1::row`], but the per-coefficient trig tables are
    /// filled with the polynomial kernels [`crate::approx::sin_poly`] /
    /// [`crate::approx::cos_poly`] instead of libm — the `fast` QoS
    /// tier's scan path. Each table entry deviates from the exact row by
    /// at most [`crate::approx::POLY_TRIG_MAX_ABS_ERROR`]; everything
    /// downstream of the tables (the row assembly and the lane kernels)
    /// is the identical code path.
    #[must_use]
    pub fn row_poly(&self, gamma: f64) -> P1Row<'_> {
        let g2 = 2.0 * gamma;
        let ct: Vec<f64> = self
            .cos_args
            .iter()
            .map(|&m| crate::approx::cos_poly(g2 * m))
            .collect();
        let st: Vec<f64> = self
            .sin_args
            .iter()
            .map(|&m| crate::approx::sin_poly(g2 * m))
            .collect();
        self.assemble_row(&ct, &st)
    }

    /// Assembles a [`P1Row`] from already-evaluated trig tables (`ct[i] =
    /// cos(2γ·cos_args[i])`, `st[i] = sin(2γ·sin_args[i])` — or their
    /// polynomial stand-ins). Shared by [`PreparedP1::row`] and
    /// [`PreparedP1::row_poly`] so the two paths differ **only** in how
    /// the tables were filled.
    fn assemble_row(&self, ct: &[f64], st: &[f64]) -> P1Row<'_> {
        let nl = self.lin.h.len();
        let mut lin_sgh = Vec::with_capacity(nl);
        let mut lin_prod = Vec::with_capacity(nl);
        for i in 0..nl {
            lin_sgh.push(st[self.lin.sin_h[i] as usize]);
            let mut prod = 1.0;
            for t in self.lin.adj_off[i]..self.lin.adj_off[i + 1] {
                prod *= ct[self.lin.adj[t as usize] as usize];
            }
            lin_prod.push(prod);
        }
        let nc = self.coup.j.len();
        let mut coup_sj = Vec::with_capacity(nc);
        let mut coup_chains = Vec::with_capacity(nc);
        let mut coup_d = Vec::with_capacity(nc);
        for k in 0..nc {
            let mut chain_a = ct[self.coup.cos_ha[k] as usize];
            let mut chain_b = ct[self.coup.cos_hb[k] as usize];
            let mut f_plus = 1.0;
            let mut f_minus = 1.0;
            let (s, e) = (
                self.coup.third_off[k] as usize,
                self.coup.third_off[k + 1] as usize,
            );
            // One-sided specialization (bit-identical): when `c`
            // neighbours only `a`, the scratch `J_bc` is `+0.0`, so
            // `ib` is the `+0.0` slot (`ct[ib] == 1.0`, a bitwise no-op
            // multiplier that can be dropped) and the interner mapped
            // `J_ac + 0.0` and `J_ac − 0.0` to `ia`'s own slot
            // (identical bits in, identical slot out) — one gather and
            // three multiplies instead of four of each. Mirrored for
            // `b`-only, except `0.0 − J_bc = −J_bc` keeps its own slot.
            // The per-chain multiply *order* is unchanged, so every
            // product has the exact scalar op tree.
            let z = self.zero_cos;
            for &[ia, ib, isum, idif] in &self.coup.thirds[s..e] {
                if ib == z {
                    let v = ct[ia as usize];
                    chain_a *= v;
                    f_plus *= v;
                    f_minus *= v;
                } else if ia == z {
                    let v = ct[ib as usize];
                    chain_b *= v;
                    f_plus *= v;
                    f_minus *= ct[idif as usize];
                } else {
                    chain_a *= ct[ia as usize];
                    chain_b *= ct[ib as usize];
                    f_plus *= ct[isum as usize];
                    f_minus *= ct[idif as usize];
                }
            }
            let d = ct[self.coup.cos_hsum[k] as usize] * f_plus
                - ct[self.coup.cos_hdif[k] as usize] * f_minus;
            coup_sj.push(st[self.coup.sin_j[k] as usize]);
            coup_chains.push(chain_a + chain_b);
            coup_d.push(d);
        }
        P1Row {
            offset: self.offset,
            lin_h: &self.lin.h,
            lin_sgh,
            lin_prod,
            coup_j: &self.coup.j,
            coup_sj,
            coup_chains,
            coup_d,
        }
    }
}

impl P1Row<'_> {
    /// `⟨C⟩` at `(γ_row, β)` — bit-identical to
    /// [`expectation_p1`] at the row's γ.
    #[must_use]
    pub fn at(&self, beta: f64) -> f64 {
        let s2b = (2.0 * beta).sin();
        let s4b = (4.0 * beta).sin();
        // β-only subexpressions of the pair term, hoisted out of the term
        // loop: they are pure functions of the two sines, so every term
        // sees the exact values the per-term computation produced.
        let half_s4b = 0.5 * s4b;
        let msq_s2b = (-0.5 * s2b) * s2b;
        let mut ev = self.offset;
        for ((&hi, &sgh), &prod) in self.lin_h.iter().zip(&self.lin_sgh).zip(&self.lin_prod) {
            ev += hi * ((s2b * sgh) * prod);
        }
        for (((&j_ab, &sj), &chains), &d) in self
            .coup_j
            .iter()
            .zip(&self.coup_sj)
            .zip(&self.coup_chains)
            .zip(&self.coup_d)
        {
            ev += j_ab * ((half_s4b * sj) * chains + msq_s2b * d);
        }
        ev
    }

    /// Evaluates every β point of a row through the `W`-wide lane kernel
    /// (`W = 4` and `W = 8` are the tuned widths), writing `out[j] =`
    /// [`P1Row::at`]`(betas[j])` **bit-identically**: lanes are fully
    /// independent accumulators, and each lane runs the exact scalar
    /// operation sequence, so vector evaluation never reassociates a
    /// term sum. The β-axis tail (`len % W`) is padded to a full lane
    /// with zeros whose results are discarded; the *term* arrays are
    /// deliberately **not** zero-padded, because accumulating a padding
    /// term would be `ev += 0.0` — not a bitwise no-op when the running
    /// sum is `−0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `W == 0` or `out.len() != trig.len()`.
    pub fn eval_lanes<const W: usize>(&self, trig: &BetaTrig, out: &mut [f64]) {
        assert!(W > 0, "lane width must be at least 1");
        assert_eq!(
            trig.len(),
            out.len(),
            "β trig table and output row must have equal lengths"
        );
        let n = out.len();
        let full = n / W * W;
        let mut i = 0;
        while i < full {
            let s2b: &[f64; W] = self.lane_slice(&trig.s2b, i);
            let s4b: &[f64; W] = self.lane_slice(&trig.s4b, i);
            let mut ev = [0.0f64; W];
            self.lanes_kernel(s2b, s4b, &mut ev);
            out[i..i + W].copy_from_slice(&ev);
            i += W;
        }
        if i < n {
            // Tail: pad the β lanes (not the terms) to a full width.
            let mut s2b = [0.0f64; W];
            let mut s4b = [0.0f64; W];
            s2b[..n - i].copy_from_slice(&trig.s2b[i..]);
            s4b[..n - i].copy_from_slice(&trig.s4b[i..]);
            let mut ev = [0.0f64; W];
            self.lanes_kernel(&s2b, &s4b, &mut ev);
            out[i..].copy_from_slice(&ev[..n - i]);
        }
    }

    /// A full-width window into a trig table (bounds checked by caller).
    fn lane_slice<'a, const W: usize>(&self, table: &'a [f64], i: usize) -> &'a [f64; W] {
        table[i..i + W]
            .try_into()
            .expect("window is exactly W wide")
    }

    /// The fixed-width kernel: term-major over the SoA arrays, with `W`
    /// independent per-lane accumulators. Per lane the operation
    /// sequence is exactly [`P1Row::at`]'s, so each lane's result is
    /// bit-identical to the scalar evaluation at its β.
    fn lanes_kernel<const W: usize>(&self, s2b: &[f64; W], s4b: &[f64; W], ev: &mut [f64; W]) {
        *ev = [self.offset; W];
        // Per-lane β-only subexpressions, hoisted out of the term loop
        // exactly as in [`P1Row::at`] — same op tree, same bits.
        let mut half_s4b = [0.0f64; W];
        let mut msq_s2b = [0.0f64; W];
        for l in 0..W {
            half_s4b[l] = 0.5 * s4b[l];
            msq_s2b[l] = (-0.5 * s2b[l]) * s2b[l];
        }
        // Fixed-bound `0..W` inner loops over `[f64; W]` arrays: the
        // compiler fully unrolls them and keeps the lane accumulators in
        // registers, which the equivalent zip-iterator chains defeat.
        for ((&hi, &sgh), &prod) in self.lin_h.iter().zip(&self.lin_sgh).zip(&self.lin_prod) {
            for l in 0..W {
                ev[l] += hi * ((s2b[l] * sgh) * prod);
            }
        }
        for (((&j_ab, &sj), &chains), &d) in self
            .coup_j
            .iter()
            .zip(&self.coup_sj)
            .zip(&self.coup_chains)
            .zip(&self.coup_d)
        {
            for l in 0..W {
                ev[l] += j_ab * ((half_s4b[l] * sj) * chains + msq_s2b[l] * d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Statevector;
    use fq_circuit::build_qaoa_circuit;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Statevector reference for ⟨C⟩ at p = 1.
    fn sv_expectation(model: &IsingModel, gamma: f64, beta: f64) -> f64 {
        let qc = build_qaoa_circuit(model, 1).unwrap();
        let bound = qc.bind(&[gamma], &[beta]).unwrap();
        let mut sv = Statevector::zero_state(model.num_vars()).unwrap();
        sv.run(&bound).unwrap();
        sv.expectation_ising(model).unwrap()
    }

    fn random_model(n: usize, with_linear: bool, density: f64, seed: u64) -> IsingModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = IsingModel::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random::<f64>() < density {
                    let w = if rng.random::<bool>() { 1.0 } else { -1.0 };
                    m.set_coupling(i, j, w).unwrap();
                }
            }
            if with_linear {
                m.set_linear(i, rng.random_range(-1.0..1.0)).unwrap();
            }
        }
        m
    }

    #[test]
    fn matches_statevector_on_pure_quadratic_models() {
        for seed in 0..4 {
            let m = random_model(6, false, 0.5, seed);
            for &(g, b) in &[(0.2, 0.3), (0.9, -0.4), (-1.1, 0.7)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!(
                    (exact - sv).abs() < 1e-9,
                    "seed {seed} ({g}, {b}): {exact} vs {sv}"
                );
            }
        }
    }

    #[test]
    fn matches_statevector_with_linear_terms() {
        for seed in 10..14 {
            let m = random_model(5, true, 0.6, seed);
            for &(g, b) in &[(0.15, 0.25), (0.8, 1.2)] {
                let exact = expectation_p1(&m, g, b).unwrap();
                let sv = sv_expectation(&m, g, b);
                assert!((exact - sv).abs() < 1e-9, "seed {seed}: {exact} vs {sv}");
            }
        }
    }

    #[test]
    fn matches_statevector_with_offset() {
        let mut m = random_model(4, true, 0.7, 21);
        m.set_offset(3.25);
        let exact = expectation_p1(&m, 0.3, 0.5).unwrap();
        let sv = sv_expectation(&m, 0.3, 0.5);
        assert!((exact - sv).abs() < 1e-9);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        let m = random_model(6, true, 0.5, 33);
        let ev = expectation_p1(&m, 0.0, 0.0).unwrap();
        assert!((ev - m.offset()).abs() < 1e-12);
    }

    #[test]
    fn symmetric_models_have_zero_single_z() {
        let m = random_model(6, false, 0.5, 44);
        for i in 0..6 {
            assert_eq!(expectation_z(&m, i, 0.7, 0.3).unwrap(), 0.0);
        }
    }

    #[test]
    fn rejects_bad_indices() {
        let m = random_model(3, false, 1.0, 0);
        assert!(expectation_z(&m, 5, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 0, 0.1, 0.1).is_err());
        assert!(expectation_zz(&m, 0, 9, 0.1, 0.1).is_err());
    }

    #[test]
    fn prepared_evaluator_is_bit_identical() {
        for seed in 60..66 {
            let m = random_model(7, seed % 2 == 0, 0.55, seed);
            let prep = PreparedP1::new(&m);
            for &(g, b) in &[(0.2, 0.3), (0.9, -0.4), (-1.1, 0.7), (0.0, 0.0)] {
                // Exact equality, not tolerance: the prepared path must
                // reproduce every bit of the unprepared one.
                assert_eq!(prep.at(g, b), expectation_p1(&m, g, b).unwrap());
                assert_eq!(prep.row(g).at(b), expectation_p1(&m, g, b).unwrap());
                let (z, zz) = term_expectations_p1(&m, g, b).unwrap();
                assert_eq!(prep.terms_at(g, b), (z, zz));
            }
        }
    }

    #[test]
    fn poly_rows_track_exact_rows_within_term_count_times_trig_bound() {
        use crate::approx::POLY_TRIG_MAX_ABS_ERROR;
        for seed in 80..84 {
            let m = random_model(8, seed % 2 == 0, 0.5, seed);
            let prep = PreparedP1::new(&m);
            // Each term mixes a handful of bounded trig factors, so the
            // row error scales like (terms × degree) × per-call error.
            let budget = 64.0 * prep.num_terms() as f64 * POLY_TRIG_MAX_ABS_ERROR;
            for &g in &[0.0, 0.3, -0.9, 1.4] {
                for &b in &[0.1, -0.6, 0.75] {
                    let exact = prep.row(g).at(b);
                    let poly = prep.row_poly(g).at(b);
                    assert!(
                        (exact - poly).abs() <= budget,
                        "seed {seed} ({g}, {b}): |{exact} - {poly}| > {budget:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn poly_rows_share_the_exact_assembly_and_lane_kernels() {
        let m = random_model(7, true, 0.6, 91);
        let prep = PreparedP1::new(&m);
        let betas: Vec<f64> = (0..11).map(|i| -0.7 + 0.14 * f64::from(i)).collect();
        let trig = BetaTrig::new(&betas);
        let row = prep.row_poly(0.42);
        let mut lanes = vec![0.0f64; betas.len()];
        row.eval_lanes::<8>(&trig, &mut lanes);
        for (j, &b) in betas.iter().enumerate() {
            // Lane evaluation of a poly row is bit-identical to its own
            // scalar path — the approximation lives only in the tables.
            assert_eq!(lanes[j], row.at(b));
        }
    }

    #[test]
    fn expectation_from_terms_matches_direct_evaluation_exactly() {
        for seed in 70..76 {
            let m = random_model(6, seed % 2 == 0, 0.6, seed);
            let (g, b) = (0.37, -0.81);
            let (z, zz) = term_expectations_p1(&m, g, b).unwrap();
            assert_eq!(
                expectation_from_terms_p1(&m, &z, &zz).unwrap(),
                expectation_p1(&m, g, b).unwrap(),
                "seed {seed}: assembly must be bit-identical to the two-call path"
            );
        }
        let m = random_model(4, true, 0.8, 99);
        assert!(expectation_from_terms_p1(&m, &[0.0; 2], &[]).is_err());
    }

    #[test]
    fn term_expectations_assemble_to_full_ev() {
        let m = random_model(5, true, 0.6, 55);
        let (z, zz) = term_expectations_p1(&m, 0.4, 0.6).unwrap();
        let mut ev = m.offset();
        for (i, hi) in m.linears() {
            ev += hi * z[i];
        }
        for ((_, jij), zzk) in m.couplings().zip(zz.iter()) {
            ev += jij * zzk;
        }
        let direct = expectation_p1(&m, 0.4, 0.6).unwrap();
        assert!((ev - direct).abs() < 1e-12);
    }
}
