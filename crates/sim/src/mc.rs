//! Monte-Carlo noisy sampling: stochastic Pauli injection over statevector
//! trajectories, plus readout and decoherence bit errors at sampling time.
//!
//! This is the small-`N` high-fidelity noise engine (the analytic
//! fidelity-product model in [`crate::noise`] covers arbitrary `N`). Each
//! *trajectory* realizes one random error pattern: after every gate, with
//! the gate's calibrated error probability, a uniformly random non-identity
//! Pauli is injected on the gate's qubits. Measurement outcomes are drawn
//! from each trajectory's final state and then corrupted by per-qubit
//! readout flips and a depolarizing decoherence flip derived from the
//! schedule duration and `T1`.

use fq_circuit::Gate;
use fq_ising::{OutputDistribution, Spin, SpinVec};
use fq_transpile::{Compiled, Device};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{gate_error_rates, SimError, Statevector};

/// Configuration of the Monte-Carlo sampler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoisySamplerConfig {
    /// Total measurement shots across all trajectories.
    pub shots: u64,
    /// Independent noise realizations (trajectories). More trajectories
    /// capture gate-error variance better; shots are split evenly.
    pub trajectories: u32,
    /// RNG seed; the sampler is fully deterministic per seed.
    pub seed: u64,
}

impl Default for NoisySamplerConfig {
    fn default() -> Self {
        NoisySamplerConfig {
            shots: 4096,
            trajectories: 32,
            seed: 7,
        }
    }
}

/// Samples a compiled circuit under the device's noise, returning a
/// distribution over the **logical** qubits (decoded through the final
/// layout).
///
/// # Errors
///
/// Returns [`SimError::TooManyQubits`] if the compacted circuit exceeds
/// the statevector limit, and [`SimError::InvalidParameters`] for zero
/// shots/trajectories.
///
/// # Example
///
/// ```
/// use fq_circuit::build_qaoa_circuit;
/// use fq_ising::IsingModel;
/// use fq_sim::{sample_noisy, NoisySamplerConfig};
/// use fq_transpile::{compile, CompileOptions, Device};
///
/// let mut m = IsingModel::new(3);
/// m.set_coupling(0, 1, 1.0)?;
/// m.set_coupling(1, 2, 1.0)?;
/// let qc = build_qaoa_circuit(&m, 1)?.bind(&[0.4], &[0.8])?;
/// let compiled = compile(&qc, &Device::ibm_montreal(), CompileOptions::level3())?;
/// let dist = sample_noisy(&compiled, &Device::ibm_montreal(), NoisySamplerConfig::default())?;
/// assert_eq!(dist.num_vars(), 3);
/// assert_eq!(dist.total_shots(), 4096);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sample_noisy(
    compiled: &Compiled,
    device: &Device,
    config: NoisySamplerConfig,
) -> Result<OutputDistribution, SimError> {
    if config.shots == 0 || config.trajectories == 0 {
        return Err(SimError::InvalidParameters(
            "shots and trajectories must be positive".into(),
        ));
    }
    let (compact, layout) = compiled.compact();
    let width = compact.num_qubits();
    let n_logical = compiled.logical_qubits;

    let errors = gate_error_rates(compiled, device);
    debug_assert_eq!(errors.len(), compact.len());

    // Per-logical-qubit classical error rates applied at sampling time.
    let duration_us = compiled.schedule.duration_ns / 1_000.0;
    let readout_flip: Vec<f64> = compiled
        .final_layout
        .iter()
        .map(|&p| device.readout_error(p))
        .collect();
    let decoherence_flip: Vec<f64> = compiled
        .final_layout
        .iter()
        .map(|&p| {
            let t1 = device.t1_us(p);
            if t1.is_finite() && t1 > 0.0 {
                // Depolarizing approximation: half of the depolarized
                // population flips the measured bit.
                0.5 * (1.0 - (-duration_us / t1).exp())
            } else {
                0.0
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut dist = OutputDistribution::new(n_logical);
    let traj = u64::from(config.trajectories);
    let base = config.shots / traj;
    let extra = config.shots % traj;

    for t in 0..traj {
        let shots_here = base + u64::from(t < extra);
        if shots_here == 0 {
            continue;
        }
        let mut sv = Statevector::zero_state(width)?;
        for (g, &e) in compact.gates().iter().zip(&errors) {
            sv.apply_gate(g)?;
            if matches!(g, Gate::Measure { .. }) || e <= 0.0 {
                continue;
            }
            if rng.random::<f64>() < e {
                for q in g.qubits() {
                    inject_random_pauli(&mut sv, q, &mut rng);
                }
            }
        }
        let sample_seed = rng.random::<u64>();
        for idx in sv.sample_indices(shots_here, sample_seed) {
            let mut spins = SpinVec::all_up(n_logical);
            for (l, &c) in layout.iter().enumerate() {
                let mut bit = (idx >> c) & 1;
                if rng.random::<f64>() < decoherence_flip[l] {
                    bit ^= 1;
                }
                if rng.random::<f64>() < readout_flip[l] {
                    bit ^= 1;
                }
                spins.set(l, if bit == 0 { Spin::UP } else { Spin::DOWN });
            }
            dist.record(spins, 1);
        }
    }
    Ok(dist)
}

fn inject_random_pauli(sv: &mut Statevector, q: usize, rng: &mut StdRng) {
    // Uniform over {X, Y, Z}; identity is excluded per-qubit, which makes
    // two-qubit injections a uniform draw over 9 of the 15 non-identity
    // two-qubit Paulis plus single-qubit strays — adequate for a
    // depolarizing-style channel.
    match rng.random_range(0..3) {
        0 => sv.apply_x(q),
        1 => sv.apply_y(q),
        _ => sv.apply_z(q),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_circuit::build_qaoa_circuit;
    use fq_ising::IsingModel;
    use fq_transpile::{compile, CompileOptions, Topology};

    fn chain_model(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 1..n {
            m.set_coupling(i - 1, i, 1.0).unwrap();
        }
        m
    }

    fn compile_chain(n: usize, device: &Device) -> (IsingModel, Compiled) {
        let m = chain_model(n);
        let qc = build_qaoa_circuit(&m, 1)
            .unwrap()
            .bind(&[0.5], &[0.9])
            .unwrap();
        (m, compile(&qc, device, CompileOptions::level3()).unwrap())
    }

    #[test]
    fn ideal_device_reproduces_ideal_expectation() {
        let dev = Device::ideal("ideal", Topology::grid(3, 3).unwrap());
        let (m, c) = compile_chain(4, &dev);
        let dist = sample_noisy(
            &c,
            &dev,
            NoisySamplerConfig {
                shots: 20_000,
                trajectories: 4,
                seed: 1,
            },
        )
        .unwrap();
        let noisy_ev = dist.expectation(&m).unwrap();
        let ideal_ev = crate::analytic::expectation_p1(&m, 0.5, 0.9).unwrap();
        assert!(
            (noisy_ev - ideal_ev).abs() < 0.05,
            "sampled {noisy_ev} vs ideal {ideal_ev}"
        );
    }

    #[test]
    fn noise_pushes_expectation_toward_zero() {
        let ideal_dev = Device::ideal("ideal", Topology::grid(3, 3).unwrap());
        let noisy_dev = Device::ibm_toronto();
        let (m, ci) = compile_chain(6, &ideal_dev);
        let (_, cn) = compile_chain(6, &noisy_dev);
        let cfg = NoisySamplerConfig {
            shots: 20_000,
            trajectories: 64,
            seed: 5,
        };
        let ev_ideal = sample_noisy(&ci, &ideal_dev, cfg)
            .unwrap()
            .expectation(&m)
            .unwrap();
        let ev_noisy = sample_noisy(&cn, &noisy_dev, cfg)
            .unwrap()
            .expectation(&m)
            .unwrap();
        assert!(
            ev_noisy.abs() < ev_ideal.abs(),
            "noise must attenuate: ideal {ev_ideal}, noisy {ev_noisy}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let dev = Device::ibm_montreal();
        let (_, c) = compile_chain(4, &dev);
        let cfg = NoisySamplerConfig {
            shots: 500,
            trajectories: 8,
            seed: 42,
        };
        let a = sample_noisy(&c, &dev, cfg).unwrap();
        let b = sample_noisy(&c, &dev, cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shot_accounting_is_exact() {
        let dev = Device::ibm_montreal();
        let (_, c) = compile_chain(3, &dev);
        // 1000 shots over 7 trajectories does not divide evenly.
        let dist = sample_noisy(
            &c,
            &dev,
            NoisySamplerConfig {
                shots: 1000,
                trajectories: 7,
                seed: 2,
            },
        )
        .unwrap();
        assert_eq!(dist.total_shots(), 1000);
    }

    #[test]
    fn zero_config_is_rejected() {
        let dev = Device::ibm_montreal();
        let (_, c) = compile_chain(3, &dev);
        assert!(sample_noisy(
            &c,
            &dev,
            NoisySamplerConfig {
                shots: 0,
                trajectories: 1,
                seed: 0
            }
        )
        .is_err());
        assert!(sample_noisy(
            &c,
            &dev,
            NoisySamplerConfig {
                shots: 10,
                trajectories: 0,
                seed: 0
            }
        )
        .is_err());
    }
}
