//! Tensored readout-error mitigation.
//!
//! The paper classifies measurement-error mitigation as an orthogonal
//! policy that "one may combine with FrozenQubits" (§7). This module
//! implements the standard tensored-inverse scheme: under independent
//! per-qubit readout flips with probability `ε_q`, the measured
//! expectation of any Z-string is the true one scaled by
//! `Π_q (1 − 2ε_q)`, so dividing each term by its qubits' factors undoes
//! the bias. Distributions are mitigated per qubit with the 2×2 inverse
//! confusion matrix applied to marginals via importance re-weighting.

use fq_ising::{IsingModel, OutputDistribution};
use serde::{Deserialize, Serialize};

use crate::SimError;

/// A tensored readout-mitigation operator built from per-qubit flip
/// probabilities.
///
/// # Example
///
/// ```
/// use fq_sim::ReadoutMitigator;
///
/// let mit = ReadoutMitigator::new(vec![0.02, 0.05])?;
/// // A Z-string over both qubits is attenuated by (1-0.04)(1-0.1).
/// assert!((mit.attenuation(&[0, 1]) - 0.96 * 0.9).abs() < 1e-12);
/// # Ok::<(), fq_sim::SimError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReadoutMitigator {
    epsilon: Vec<f64>,
}

impl ReadoutMitigator {
    /// Builds a mitigator from per-qubit readout-flip probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameters`] for probabilities outside
    /// `[0, 0.5)` — at ε = 0.5 readout carries no information and the
    /// inverse diverges.
    pub fn new(epsilon: Vec<f64>) -> Result<ReadoutMitigator, SimError> {
        if epsilon.iter().any(|&e| !(0.0..0.5).contains(&e)) {
            return Err(SimError::InvalidParameters(
                "readout flip probabilities must lie in [0, 0.5)".into(),
            ));
        }
        Ok(ReadoutMitigator { epsilon })
    }

    /// Number of qubits covered.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.epsilon.len()
    }

    /// The attenuation `Π (1 − 2ε_q)` a Z-string over `qubits` suffers.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    #[must_use]
    pub fn attenuation(&self, qubits: &[usize]) -> f64 {
        qubits
            .iter()
            .map(|&q| 1.0 - 2.0 * self.epsilon[q])
            .product()
    }

    /// Corrects a *measured* expectation value of an Ising Hamiltonian by
    /// dividing each term's contribution... which requires per-term
    /// measured values; use [`ReadoutMitigator::mitigate_terms`] for that.
    /// This convenience instead rescales per-term ideal attenuations into
    /// a corrected total, given the measured per-term expectations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WidthMismatch`] if vector lengths disagree with
    /// the model.
    pub fn mitigate_terms(
        &self,
        model: &IsingModel,
        z_measured: &[f64],
        zz_measured: &[f64],
    ) -> Result<f64, SimError> {
        if z_measured.len() != model.num_vars()
            || zz_measured.len() != model.num_couplings()
            || self.epsilon.len() < model.num_vars()
        {
            return Err(SimError::WidthMismatch {
                circuit: model.num_vars(),
                state: z_measured.len(),
            });
        }
        let mut ev = model.offset();
        for (i, hi) in model.linears() {
            if hi != 0.0 {
                ev += hi * z_measured[i] / self.attenuation(&[i]);
            }
        }
        for (k, ((i, j), jij)) in model.couplings().enumerate() {
            ev += jij * zz_measured[k] / self.attenuation(&[i, j]);
        }
        Ok(ev)
    }

    /// Mitigates a sampled distribution's expectation value directly:
    /// computes the empirical per-term expectations and inverts their
    /// attenuations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Ising`]-wrapped errors for width mismatches and
    /// empty distributions.
    pub fn mitigate_expectation(
        &self,
        model: &IsingModel,
        dist: &OutputDistribution,
    ) -> Result<f64, SimError> {
        if dist.total_shots() == 0 {
            return Err(SimError::Ising(fq_ising::IsingError::Empty));
        }
        let n = model.num_vars();
        let total = dist.total_shots() as f64;
        let mut z = vec![0.0f64; n];
        let mut zz = vec![0.0f64; model.num_couplings()];
        for (outcome, count) in dist.iter() {
            if outcome.len() != n {
                return Err(SimError::WidthMismatch {
                    circuit: n,
                    state: outcome.len(),
                });
            }
            let w = count as f64 / total;
            for (i, acc) in z.iter_mut().enumerate() {
                *acc += w * outcome.spin(i).as_f64();
            }
            for (k, ((i, j), _)) in model.couplings().enumerate() {
                zz[k] += w * outcome.spin(i).as_f64() * outcome.spin(j).as_f64();
            }
        }
        self.mitigate_terms(model, &z, &zz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_ising::SpinVec;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn pair_model() -> IsingModel {
        let mut m = IsingModel::new(2);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_linear(0, 0.5).unwrap();
        m
    }

    #[test]
    fn rejects_uninformative_readout() {
        assert!(ReadoutMitigator::new(vec![0.5]).is_err());
        assert!(ReadoutMitigator::new(vec![-0.1]).is_err());
        assert!(ReadoutMitigator::new(vec![0.0, 0.49]).is_ok());
    }

    #[test]
    fn zero_error_is_identity() {
        let m = pair_model();
        let mit = ReadoutMitigator::new(vec![0.0, 0.0]).unwrap();
        let mut d = OutputDistribution::new(2);
        d.record(SpinVec::from_bits(&[0, 1]), 3);
        d.record(SpinVec::from_bits(&[1, 1]), 1);
        let raw = d.expectation(&m).unwrap();
        let fixed = mit.mitigate_expectation(&m, &d).unwrap();
        assert!((raw - fixed).abs() < 1e-12);
    }

    #[test]
    fn recovers_expectation_under_synthetic_flips() {
        // Corrupt a known distribution with per-qubit flips, then check the
        // mitigated EV is far closer to the truth than the raw one.
        let m = pair_model();
        let eps = [0.08, 0.12];
        let truth = SpinVec::from_bits(&[0, 1]); // energy 0.5*1 + (−1) = −0.5
        let true_ev = m.energy(&truth).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let mut noisy = OutputDistribution::new(2);
        for _ in 0..200_000u32 {
            let mut s = truth.clone();
            for (q, &e) in eps.iter().enumerate() {
                if rng.random::<f64>() < e {
                    s.flip(q);
                }
            }
            noisy.record(s, 1);
        }
        let raw = noisy.expectation(&m).unwrap();
        let mit = ReadoutMitigator::new(eps.to_vec()).unwrap();
        let fixed = mit.mitigate_expectation(&m, &noisy).unwrap();
        assert!(
            (fixed - true_ev).abs() < 0.02,
            "mitigated {fixed} vs true {true_ev}"
        );
        assert!((fixed - true_ev).abs() < (raw - true_ev).abs() / 3.0);
    }

    #[test]
    fn mitigation_is_unbiased_on_superpositions() {
        // A Bell-like 50/50 over |00> and |11>: ⟨Z0Z1⟩ = 1, ⟨Z0⟩ = 0.
        let mut m = IsingModel::new(2);
        m.set_coupling(0, 1, 1.0).unwrap();
        let eps = [0.1, 0.05];
        let mut rng = StdRng::seed_from_u64(9);
        let mut noisy = OutputDistribution::new(2);
        for k in 0..100_000u32 {
            let mut s = if k % 2 == 0 {
                SpinVec::from_bits(&[0, 0])
            } else {
                SpinVec::from_bits(&[1, 1])
            };
            for (q, &e) in eps.iter().enumerate() {
                if rng.random::<f64>() < e {
                    s.flip(q);
                }
            }
            noisy.record(s, 1);
        }
        let mit = ReadoutMitigator::new(eps.to_vec()).unwrap();
        let fixed = mit.mitigate_expectation(&m, &noisy).unwrap();
        assert!((fixed - 1.0).abs() < 0.03, "mitigated {fixed}");
    }

    #[test]
    fn attenuation_composes_per_qubit() {
        let mit = ReadoutMitigator::new(vec![0.1, 0.2, 0.0]).unwrap();
        assert!((mit.attenuation(&[0]) - 0.8).abs() < 1e-12);
        assert!((mit.attenuation(&[0, 1]) - 0.48).abs() < 1e-12);
        assert!((mit.attenuation(&[2]) - 1.0).abs() < 1e-12);
        assert_eq!(mit.num_qubits(), 3);
    }

    #[test]
    fn empty_distribution_is_rejected() {
        let mit = ReadoutMitigator::new(vec![0.0, 0.0]).unwrap();
        let d = OutputDistribution::new(2);
        assert!(mit.mitigate_expectation(&pair_model(), &d).is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mit = ReadoutMitigator::new(vec![0.0]).unwrap();
        let m = pair_model();
        assert!(mit.mitigate_terms(&m, &[0.0, 0.0], &[0.0]).is_err());
    }
}
