//! Noise modelling: per-gate error rates, the fidelity-product estimator
//! for noisy expectation values, and readout attenuation.
//!
//! The estimator follows the standard NISQ-compiler methodology the paper
//! itself uses at scale (§6.3): gate errors act as a global depolarizing
//! channel whose survival probability is the product of per-gate success
//! probabilities, so every traceless observable shrinks by that factor.
//! Decoherence and readout act **per qubit**: under a Pauli-twirled
//! relaxation model, `⟨Z_i⟩` decays by qubit `i`'s `exp(−T/T1)` and is
//! further attenuated by `(1 − 2ε_i)` readout error, and `⟨Z_i Z_j⟩` by
//! both qubits' factors.

use fq_circuit::Gate;
use fq_ising::IsingModel;
use fq_transpile::{Compiled, Device};
use serde::{Deserialize, Serialize};

use crate::SimError;

/// Per-gate error probabilities, parallel to a compiled circuit's gates.
///
/// `Cx` uses the coupler's calibration; `Swap` counts as three CNOTs on its
/// coupler; `Measure` uses the qubit's readout error; `Rz` is virtual and
/// error-free; other single-qubit gates use a small fixed rate (one tenth
/// of the mean CNOT error, mirroring the ~10× gap on IBM hardware).
#[must_use]
pub fn gate_error_rates(compiled: &Compiled, device: &Device) -> Vec<f64> {
    let single_err = device.mean_cnot_error() / 10.0;
    compiled
        .circuit
        .gates()
        .iter()
        .map(|g| match *g {
            Gate::Cx { control, target } => device.cnot_error(control, target),
            Gate::Swap { a, b } => {
                let e = device.cnot_error(a, b);
                1.0 - (1.0 - e).powi(3)
            }
            Gate::Measure { q } => device.readout_error(q),
            Gate::Rz { .. } => 0.0,
            Gate::H { .. } | Gate::X { .. } | Gate::Rx { .. } => single_err,
        })
        .collect()
}

/// The decomposed fidelity of a compiled circuit on a device.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FidelityModel {
    /// Product of `(1 − e)` over all gates except measurements — the
    /// global depolarizing survival factor.
    pub gate_fidelity: f64,
    /// Per-logical-qubit decoherence survival `exp(−duration/T1)` at the
    /// qubit's physical home.
    pub qubit_decay: Vec<f64>,
    /// Per-logical-qubit readout attenuation `(1 − 2ε)` at the final
    /// physical position.
    pub readout_attenuation: Vec<f64>,
    /// Log of `gate_fidelity · Π qubit_decay` — the whole-circuit survival
    /// probability (safe at 500 qubits where the plain product
    /// underflows).
    pub log_process_fidelity: f64,
}

impl FidelityModel {
    /// The whole-circuit survival factor (may underflow to 0 for huge
    /// circuits; use [`FidelityModel::log_process_fidelity`] then).
    #[must_use]
    pub fn process_fidelity(&self) -> f64 {
        self.log_process_fidelity.exp()
    }

    /// The attenuation applied to `⟨Z_i⟩`.
    #[must_use]
    pub fn z_attenuation(&self, i: usize) -> f64 {
        self.gate_fidelity * self.qubit_decay[i] * self.readout_attenuation[i]
    }

    /// The attenuation applied to `⟨Z_i Z_j⟩`.
    #[must_use]
    pub fn zz_attenuation(&self, i: usize, j: usize) -> f64 {
        self.gate_fidelity
            * self.qubit_decay[i]
            * self.qubit_decay[j]
            * self.readout_attenuation[i]
            * self.readout_attenuation[j]
    }
}

/// Computes the [`FidelityModel`] of a compiled circuit.
#[must_use]
pub fn fidelity_model(compiled: &Compiled, device: &Device) -> FidelityModel {
    let mut log_gate = 0.0f64;
    for (g, e) in compiled
        .circuit
        .gates()
        .iter()
        .zip(gate_error_rates(compiled, device))
    {
        if !matches!(g, Gate::Measure { .. }) && e > 0.0 {
            log_gate += (1.0 - e).ln();
        }
    }
    let duration_us = compiled.schedule.duration_ns / 1_000.0;
    let mut log_decay_total = 0.0f64;
    let qubit_decay: Vec<f64> = compiled
        .final_layout
        .iter()
        .map(|&p| {
            let t1 = device.t1_us(p);
            if t1.is_finite() && t1 > 0.0 {
                let d = -duration_us / t1;
                log_decay_total += d;
                d.exp()
            } else {
                1.0
            }
        })
        .collect();
    let readout_attenuation = compiled
        .final_layout
        .iter()
        .map(|&p| 1.0 - 2.0 * device.readout_error(p))
        .collect();
    FidelityModel {
        gate_fidelity: log_gate.exp(),
        qubit_decay,
        readout_attenuation,
        log_process_fidelity: log_gate + log_decay_total,
    }
}

/// Estimates the noisy expectation value `⟨C⟩_noisy` from per-term ideal
/// expectations: every traceless term is attenuated by the gate-survival
/// factor and the participating qubits' decoherence/readout factors; the
/// offset survives unattenuated (the maximally mixed state has `⟨Z⟩ = 0`).
///
/// `z_ideal[i]` must hold `⟨Z_i⟩` and `zz_ideal[k]` the `k`-th coupling's
/// `⟨Z_iZ_j⟩`, e.g. from
/// [`crate::analytic::term_expectations_p1`].
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if the vectors do not match the
/// model.
pub fn noisy_expectation_from_terms(
    model: &IsingModel,
    z_ideal: &[f64],
    zz_ideal: &[f64],
    fidelity: &FidelityModel,
) -> Result<f64, SimError> {
    if z_ideal.len() != model.num_vars()
        || zz_ideal.len() != model.num_couplings()
        || fidelity.readout_attenuation.len() < model.num_vars()
        || fidelity.qubit_decay.len() < model.num_vars()
    {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: z_ideal.len(),
        });
    }
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            ev += hi * fidelity.z_attenuation(i) * z_ideal[i];
        }
    }
    for (k, ((i, j), jij)) in model.couplings().enumerate() {
        ev += jij * fidelity.zz_attenuation(i, j) * zz_ideal[k];
    }
    Ok(ev)
}

/// Per-term gate fidelities from the backward **lightcone** of each
/// Hamiltonian term in the compiled circuit.
///
/// A measured observable on qubits `S` is only affected by gates inside
/// its backward causal cone: walking the circuit in reverse from the final
/// physical positions of `S`, a gate joins the cone when it touches an
/// already-active qubit, and a two-qubit gate then activates its partner.
/// Hotspot edges have cones that cover nearly the whole circuit, while
/// post-freezing terms have small cones — this is the mechanism by which
/// FrozenQubits' CNOT savings turn into fidelity (§3.1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LightconeFidelity {
    /// `z[i]` = gate-survival probability of `⟨Z_i⟩`'s cone.
    pub z: Vec<f64>,
    /// `zz[k]` = gate-survival probability of the `k`-th coupling's cone
    /// (model coupling order).
    pub zz: Vec<f64>,
}

/// Computes per-term lightcone gate fidelities for `model`'s terms in
/// `compiled` on `device`.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if the model is wider than the
/// compiled circuit's logical register.
pub fn lightcone_fidelities(
    model: &IsingModel,
    compiled: &Compiled,
    device: &Device,
) -> Result<LightconeFidelity, SimError> {
    if model.num_vars() > compiled.final_layout.len() {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: compiled.final_layout.len(),
        });
    }
    let errors = gate_error_rates(compiled, device);
    let gates = compiled.circuit.gates();
    let width = compiled.circuit.num_qubits();

    let cone = |seed: &[usize]| -> f64 {
        let mut active = vec![false; width];
        for &l in seed {
            active[compiled.final_layout[l]] = true;
        }
        let mut log = 0.0f64;
        for (g, &e) in gates.iter().zip(&errors).rev() {
            if matches!(g, Gate::Measure { .. }) {
                continue;
            }
            let qs = g.qubits();
            if qs.iter().any(|&q| active[q]) {
                if e > 0.0 {
                    log += (1.0 - e).ln();
                }
                for q in qs {
                    active[q] = true;
                }
            }
        }
        log.exp()
    };

    let z = (0..model.num_vars()).map(|i| cone(&[i])).collect();
    let zz = model.couplings().map(|((i, j), _)| cone(&[i, j])).collect();
    Ok(LightconeFidelity { z, zz })
}

/// Like [`lightcone_fidelities`], but the reverse cone walk only visits
/// the **last** `max_depth` gates; every earlier gate contributes to a
/// shared conservative survival factor applied to every term, exactly as
/// if it were inside each cone.
///
/// This caps the per-term walk at `O(max_depth)` instead of `O(gates)`,
/// which is the `balanced` QoS tier's noise-model speedup. The estimate
/// is **conservative**: a truncated cone's fidelity is never larger than
/// the exact cone's (the prefix counts all its gates, a superset of the
/// cone's prefix gates), and never smaller than the whole-circuit gate
/// fidelity — so the truncated noisy EV always lies between the global
/// and the exact-lightcone estimates. Two exact endpoints, pinned by
/// tests: `max_depth ≥ gates` reproduces [`lightcone_fidelities`]
/// bit-for-bit, and `max_depth == 0` reproduces the global
/// [`FidelityModel::gate_fidelity`] for every term.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] if the model is wider than the
/// compiled circuit's logical register.
pub fn lightcone_fidelities_truncated(
    model: &IsingModel,
    compiled: &Compiled,
    device: &Device,
    max_depth: usize,
) -> Result<LightconeFidelity, SimError> {
    if model.num_vars() > compiled.final_layout.len() {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: compiled.final_layout.len(),
        });
    }
    let errors = gate_error_rates(compiled, device);
    let gates = compiled.circuit.gates();
    let width = compiled.circuit.num_qubits();
    let split = gates.len().saturating_sub(max_depth);

    // Everything before the walk window survives as one shared factor,
    // accumulated in forward gate order — the exact accumulation of
    // `fidelity_model`, so the `max_depth == 0` endpoint is bit-identical
    // to `gate_fidelity`.
    let mut prefix_log = 0.0f64;
    for (g, &e) in gates[..split].iter().zip(&errors[..split]) {
        if !matches!(g, Gate::Measure { .. }) && e > 0.0 {
            prefix_log += (1.0 - e).ln();
        }
    }

    let cone = |seed: &[usize]| -> f64 {
        let mut active = vec![false; width];
        for &l in seed {
            active[compiled.final_layout[l]] = true;
        }
        let mut log = 0.0f64;
        for (g, &e) in gates[split..].iter().zip(&errors[split..]).rev() {
            if matches!(g, Gate::Measure { .. }) {
                continue;
            }
            let qs = g.qubits();
            if qs.iter().any(|&q| active[q]) {
                if e > 0.0 {
                    log += (1.0 - e).ln();
                }
                for q in qs {
                    active[q] = true;
                }
            }
        }
        (prefix_log + log).exp()
    };

    let z = (0..model.num_vars()).map(|i| cone(&[i])).collect();
    let zz = model.couplings().map(|((i, j), _)| cone(&[i, j])).collect();
    Ok(LightconeFidelity { z, zz })
}

/// The noisy expectation value with **lightcone** gate attenuation:
/// like [`noisy_expectation_from_terms`], but each term's gate-survival
/// factor is its own causal cone's instead of the whole circuit's.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] on any dimension mismatch.
pub fn noisy_expectation_lightcone(
    model: &IsingModel,
    z_ideal: &[f64],
    zz_ideal: &[f64],
    compiled: &Compiled,
    device: &Device,
) -> Result<f64, SimError> {
    if z_ideal.len() != model.num_vars() || zz_ideal.len() != model.num_couplings() {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: z_ideal.len(),
        });
    }
    let fid = fidelity_model(compiled, device);
    let cones = lightcone_fidelities(model, compiled, device)?;
    noisy_expectation_from_lightcone(model, z_ideal, zz_ideal, &fid, &cones)
}

/// Assembles the noisy expectation from **precomputed** attenuation
/// tables — the amortized half of the lightcone estimators, split out so
/// callers that reuse one `FidelityModel` + [`LightconeFidelity`] across
/// many evaluations (all branches of a freezing plan share the compiled
/// template, and cone fidelities depend only on circuit structure and
/// term qubit sets, never on coefficient values) pay the `O(gates)`
/// table construction once instead of per evaluation.
///
/// Bit-identical to [`noisy_expectation_lightcone`] /
/// [`noisy_expectation_lightcone_truncated`] fed the same tables: those
/// functions now delegate here for the assembly loop.
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] when the ideal-term slices or the
/// cone tables do not match the model's term counts.
pub fn noisy_expectation_from_lightcone(
    model: &IsingModel,
    z_ideal: &[f64],
    zz_ideal: &[f64],
    fid: &FidelityModel,
    cones: &LightconeFidelity,
) -> Result<f64, SimError> {
    if z_ideal.len() != model.num_vars()
        || zz_ideal.len() != model.num_couplings()
        || cones.z.len() != model.num_vars()
        || cones.zz.len() != model.num_couplings()
    {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: z_ideal.len(),
        });
    }
    let mut ev = model.offset();
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            ev += hi * cones.z[i] * fid.qubit_decay[i] * fid.readout_attenuation[i] * z_ideal[i];
        }
    }
    for (k, ((i, j), jij)) in model.couplings().enumerate() {
        let att = cones.zz[k]
            * fid.qubit_decay[i]
            * fid.qubit_decay[j]
            * fid.readout_attenuation[i]
            * fid.readout_attenuation[j];
        ev += jij * att * zz_ideal[k];
    }
    Ok(ev)
}

/// [`noisy_expectation_lightcone`] with the cone walk truncated to the
/// last `max_depth` gates ([`lightcone_fidelities_truncated`]) — the
/// approximate QoS tiers' noise estimator. `max_depth == 0` degenerates
/// to pure whole-circuit attenuation (every cone factor equals the
/// global gate fidelity), and `max_depth ≥ gates` is bit-identical to
/// [`noisy_expectation_lightcone`].
///
/// # Errors
///
/// Returns [`SimError::WidthMismatch`] on any dimension mismatch.
pub fn noisy_expectation_lightcone_truncated(
    model: &IsingModel,
    z_ideal: &[f64],
    zz_ideal: &[f64],
    compiled: &Compiled,
    device: &Device,
    max_depth: usize,
) -> Result<f64, SimError> {
    if z_ideal.len() != model.num_vars() || zz_ideal.len() != model.num_couplings() {
        return Err(SimError::WidthMismatch {
            circuit: model.num_vars(),
            state: z_ideal.len(),
        });
    }
    let fid = fidelity_model(compiled, device);
    let cones = lightcone_fidelities_truncated(model, compiled, device, max_depth)?;
    noisy_expectation_from_lightcone(model, z_ideal, zz_ideal, &fid, &cones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::term_expectations_p1;
    use fq_circuit::build_qaoa_circuit;
    use fq_transpile::{compile, CompileOptions, Topology};

    fn ring_model(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        for i in 0..n {
            m.set_coupling(i, (i + 1) % n, 1.0).unwrap();
        }
        m
    }

    fn compiled_on(device: &Device, n: usize) -> (IsingModel, Compiled) {
        let m = ring_model(n);
        let qc = build_qaoa_circuit(&m, 1).unwrap();
        let c = compile(&qc, device, CompileOptions::level3()).unwrap();
        (m, c)
    }

    #[test]
    fn ideal_device_has_unit_fidelity() {
        let dev = Device::ideal("ideal", Topology::grid(3, 3).unwrap());
        let (_, c) = compiled_on(&dev, 6);
        let f = fidelity_model(&c, &dev);
        assert!((f.process_fidelity() - 1.0).abs() < 1e-12);
        assert!((f.zz_attenuation(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_device_attenuates() {
        let dev = Device::ibm_montreal();
        let (_, c) = compiled_on(&dev, 8);
        let f = fidelity_model(&c, &dev);
        assert!(f.gate_fidelity > 0.0 && f.gate_fidelity < 1.0);
        assert!(f.qubit_decay.iter().all(|&d| d > 0.0 && d < 1.0));
        assert!(f.z_attenuation(0) < 1.0);
        assert!(f.zz_attenuation(0, 1) < f.z_attenuation(0));
    }

    #[test]
    fn more_cnots_means_lower_fidelity() {
        let dev = Device::ibm_montreal();
        let (_, small) = compiled_on(&dev, 4);
        let (_, big) = compiled_on(&dev, 12);
        assert!(
            fidelity_model(&big, &dev).gate_fidelity < fidelity_model(&small, &dev).gate_fidelity
        );
    }

    #[test]
    fn gate_error_vector_is_parallel_to_gates() {
        let dev = Device::ibm_montreal();
        let (_, c) = compiled_on(&dev, 6);
        let errors = gate_error_rates(&c, &dev);
        assert_eq!(errors.len(), c.circuit.len());
        for (g, e) in c.circuit.gates().iter().zip(&errors) {
            match g {
                Gate::Rz { .. } => assert_eq!(*e, 0.0),
                Gate::Cx { .. } | Gate::Swap { .. } | Gate::Measure { .. } => assert!(*e > 0.0),
                _ => assert!(*e >= 0.0),
            }
        }
    }

    #[test]
    fn noisy_ev_interpolates_toward_offset() {
        let dev = Device::ibm_montreal();
        let (m, c) = compiled_on(&dev, 8);
        let (z, zz) = term_expectations_p1(&m, 0.4, 0.7).unwrap();
        let f = fidelity_model(&c, &dev);
        let noisy = noisy_expectation_from_terms(&m, &z, &zz, &f).unwrap();
        let ideal: f64 = {
            let mut ev = m.offset();
            for ((_, jij), zzk) in m.couplings().zip(zz.iter()) {
                ev += jij * zzk;
            }
            ev
        };
        // Attenuation shrinks the magnitude but keeps the sign.
        assert!(noisy.abs() <= ideal.abs() + 1e-12);
        assert!(noisy * ideal >= 0.0);
    }

    #[test]
    fn log_process_fidelity_matches_products() {
        let dev = Device::ibm_toronto();
        let (_, c) = compiled_on(&dev, 6);
        let f = fidelity_model(&c, &dev);
        let direct: f64 = f.gate_fidelity * f.qubit_decay.iter().product::<f64>();
        assert!((f.log_process_fidelity.exp() - direct).abs() < 1e-12);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let dev = Device::ibm_montreal();
        let (m, c) = compiled_on(&dev, 6);
        let f = fidelity_model(&c, &dev);
        assert!(noisy_expectation_from_terms(&m, &[0.0; 2], &[0.0; 6], &f).is_err());
        assert!(noisy_expectation_lightcone(&m, &[0.0; 2], &[0.0; 6], &c, &dev).is_err());
    }

    #[test]
    fn lightcones_are_at_least_as_faithful_as_global() {
        let dev = Device::ibm_montreal();
        let (m, c) = compiled_on(&dev, 8);
        let f = fidelity_model(&c, &dev);
        let cones = lightcone_fidelities(&m, &c, &dev).unwrap();
        for &zf in cones.z.iter().chain(&cones.zz) {
            assert!(
                zf >= f.gate_fidelity - 1e-12,
                "cone {zf} vs global {}",
                f.gate_fidelity
            );
            assert!(zf <= 1.0);
        }
    }

    #[test]
    fn lightcone_ev_dominates_global_ev() {
        // Per-term cones keep strictly more signal than whole-circuit
        // attenuation, so |EV_lightcone| >= |EV_global| for aligned terms.
        let dev = Device::ibm_toronto();
        let (m, c) = compiled_on(&dev, 8);
        let (z, zz) = term_expectations_p1(&m, 0.35, 0.62).unwrap();
        let f = fidelity_model(&c, &dev);
        let global = noisy_expectation_from_terms(&m, &z, &zz, &f).unwrap();
        let cone = noisy_expectation_lightcone(&m, &z, &zz, &c, &dev).unwrap();
        assert!(
            cone.abs() >= global.abs() - 1e-12,
            "cone {cone} vs global {global}"
        );
    }

    #[test]
    fn truncated_cones_pin_both_exact_endpoints() {
        let dev = Device::ibm_montreal();
        let (m, c) = compiled_on(&dev, 8);
        let exact = lightcone_fidelities(&m, &c, &dev).unwrap();
        let full_depth = lightcone_fidelities_truncated(&m, &c, &dev, c.circuit.len()).unwrap();
        assert_eq!(exact, full_depth, "full depth must reproduce every bit");
        let zero_depth = lightcone_fidelities_truncated(&m, &c, &dev, 0).unwrap();
        let global = fidelity_model(&c, &dev).gate_fidelity;
        for &f in zero_depth.z.iter().chain(&zero_depth.zz) {
            assert_eq!(f, global, "depth 0 must be the global gate fidelity");
        }
    }

    #[test]
    fn truncated_cones_interpolate_monotonically() {
        let dev = Device::ibm_toronto();
        let (m, c) = compiled_on(&dev, 8);
        let exact = lightcone_fidelities(&m, &c, &dev).unwrap();
        let global = fidelity_model(&c, &dev).gate_fidelity;
        for depth in [0, 4, 16, 64, c.circuit.len()] {
            let t = lightcone_fidelities_truncated(&m, &c, &dev, depth).unwrap();
            for (k, (&tf, &ef)) in t.zz.iter().zip(&exact.zz).enumerate() {
                assert!(
                    tf <= ef + 1e-15 && tf >= global - 1e-15,
                    "depth {depth} term {k}: {tf} outside [{global}, {ef}]"
                );
            }
        }
    }

    #[test]
    fn truncated_noisy_ev_lies_between_global_and_lightcone() {
        let dev = Device::ibm_montreal();
        let (m, c) = compiled_on(&dev, 8);
        let (z, zz) = term_expectations_p1(&m, 0.35, 0.62).unwrap();
        let global = {
            let f = fidelity_model(&c, &dev);
            noisy_expectation_from_terms(&m, &z, &zz, &f).unwrap()
        };
        let cone = noisy_expectation_lightcone(&m, &z, &zz, &c, &dev).unwrap();
        let trunc = noisy_expectation_lightcone_truncated(&m, &z, &zz, &c, &dev, 32).unwrap();
        let (lo, hi) = (global.abs().min(cone.abs()), global.abs().max(cone.abs()));
        assert!(
            trunc.abs() >= lo - 1e-12 && trunc.abs() <= hi + 1e-12,
            "truncated {trunc} outside [{lo}, {hi}]"
        );
        let full =
            noisy_expectation_lightcone_truncated(&m, &z, &zz, &c, &dev, c.circuit.len()).unwrap();
        assert_eq!(full, cone, "full depth reproduces the exact lightcone EV");
    }

    #[test]
    fn disjoint_subcircuits_have_independent_cones() {
        // Two disconnected 2-qubit problems on an ideal 2x2 grid: each
        // pair's cone must exclude the other pair's gates entirely.
        let mut m = IsingModel::new(4);
        m.set_coupling(0, 1, 1.0).unwrap();
        m.set_coupling(2, 3, 1.0).unwrap();
        let dev = Device::uniform(
            "uniform-grid",
            Topology::grid(2, 2).unwrap(),
            0.01,
            0.0,
            1e9,
            fq_transpile::GateDurations::default(),
        )
        .unwrap();
        let qc = build_qaoa_circuit(&m, 1).unwrap();
        let c = compile(
            &qc,
            &dev,
            CompileOptions {
                optimize: false,
                ..CompileOptions::level3()
            },
        )
        .unwrap();
        if c.swap_count == 0 {
            let cones = lightcone_fidelities(&m, &c, &dev).unwrap();
            // Each edge cone: 2 CX + 2 Rx + 2 H singles; the other edge's
            // 2 CX excluded, so cone fidelity ≈ (1−0.01)² on CX terms.
            let full = fidelity_model(&c, &dev).gate_fidelity;
            for &zz in &cones.zz {
                assert!(zz > full, "cone {zz} must beat global {full}");
            }
        }
    }
}
