//! Approximate-computing kernels for the QoS tiers: polynomial
//! trigonometry and deterministic coupling subsampling.
//!
//! The `fast` tier trades exactness for speed in two places that this
//! module isolates so the approximations stay auditable:
//!
//! * [`sin_poly`] / [`cos_poly`] — range-reduced truncated-Taylor
//!   trigonometry with a stated worst-case error, feeding
//!   [`crate::analytic::PreparedP1::row_poly`];
//! * [`subsample_couplings`] — a seeded, deterministic Monte-Carlo term
//!   sample of an Ising model, used to *locate* good QAOA angles on a
//!   sparsified landscape (the located angles are then evaluated exactly
//!   on the full model, so the subsample never biases a reported
//!   expectation value).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use fq_ising::IsingModel;

use std::f64::consts::{FRAC_PI_2, PI, TAU};

/// Worst-case absolute error of [`sin_poly`] and [`cos_poly`] over all
/// finite arguments that survive range reduction (≈ the truncated-Taylor
/// remainder at π/2, plus one reduction rounding).
pub const POLY_TRIG_MAX_ABS_ERROR: f64 = 1e-7;

/// Reduces `x` to `[-π, π]` (mod 2π), then folds into `[-π/2, π/2]`
/// using `sin(π − r) = sin r`.
#[inline]
fn reduce_for_sin(x: f64) -> f64 {
    let r = x - TAU * (x / TAU).round();
    if r > FRAC_PI_2 {
        PI - r
    } else if r < -FRAC_PI_2 {
        -PI - r
    } else {
        r
    }
}

/// `sin x` via an odd degree-11 truncated Taylor polynomial after range
/// reduction to `[-π/2, π/2]`.
///
/// Absolute error is below [`POLY_TRIG_MAX_ABS_ERROR`] for every finite
/// argument — accurate enough for the `fast` QoS tier's landscape scan,
/// whose located angles are re-evaluated with exact trigonometry anyway.
#[inline]
#[must_use]
pub fn sin_poly(x: f64) -> f64 {
    let r = reduce_for_sin(x);
    let x2 = r * r;
    // Horner over the odd Taylor coefficients 1/(2k+1)!.
    r * (1.0
        + x2 * (-1.0 / 6.0
            + x2 * (1.0 / 120.0
                + x2 * (-1.0 / 5040.0 + x2 * (1.0 / 362_880.0 - x2 / 39_916_800.0)))))
}

/// `cos x` as `sin(x + π/2)` through the same reduced polynomial, with
/// the same [`POLY_TRIG_MAX_ABS_ERROR`] bound.
#[inline]
#[must_use]
pub fn cos_poly(x: f64) -> f64 {
    sin_poly(x + FRAC_PI_2)
}

/// A deterministic seeded subsample of a model's couplings: keeps
/// `max(min_keep, ⌈keep_fraction · |J|⌉)` couplings chosen by a partial
/// Fisher–Yates shuffle of `StdRng::seed_from_u64(seed)`, with all linear
/// terms and the offset intact.
///
/// Kept couplings retain their **original** coefficient values — scaling
/// them to unbias the magnitude would distort the `sin(2γJ)`/`cos(2γJ)`
/// periodic structure that makes the sparsified landscape's *argmin* line
/// up with the full model's, and the `fast` tier only ever uses the
/// subsample to locate angles, never to report a value.
///
/// Same `(model, keep_fraction, min_keep, seed)` in, same model out —
/// byte-for-byte — regardless of process or thread count.
#[must_use]
pub fn subsample_couplings(
    model: &IsingModel,
    keep_fraction: f64,
    min_keep: usize,
    seed: u64,
) -> IsingModel {
    let total = model.num_couplings();
    let frac = keep_fraction.clamp(0.0, 1.0);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = min_keep.max((frac * total as f64).ceil() as usize);
    if target >= total {
        return model.clone();
    }
    // Partial Fisher–Yates: draw `target` distinct positions in the
    // model's deterministic coupling-iteration order.
    let mut order: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..target {
        let pick = rng.random_range(k..total);
        order.swap(k, pick);
    }
    let mut keep = vec![false; total];
    for &k in &order[..target] {
        keep[k] = true;
    }
    let mut out = IsingModel::new(model.num_vars());
    out.set_offset(model.offset());
    for (i, hi) in model.linears() {
        if hi != 0.0 {
            out.set_linear(i, hi).expect("index is in range");
        }
    }
    for (k, ((i, j), jij)) in model.couplings().enumerate() {
        if keep[k] {
            out.set_coupling(i, j, jij).expect("indices are in range");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_trig_stays_inside_the_stated_bound() {
        let mut worst = 0.0f64;
        for k in -4000..=4000 {
            let x = f64::from(k) * 0.01;
            worst = worst.max((sin_poly(x) - x.sin()).abs());
            worst = worst.max((cos_poly(x) - x.cos()).abs());
        }
        assert!(
            worst < POLY_TRIG_MAX_ABS_ERROR,
            "worst poly-trig error {worst:e} exceeds the documented bound"
        );
    }

    #[test]
    fn poly_trig_hits_the_exact_special_points() {
        assert_eq!(sin_poly(0.0), 0.0);
        assert!((sin_poly(FRAC_PI_2) - 1.0).abs() < POLY_TRIG_MAX_ABS_ERROR);
        assert!((cos_poly(PI) + 1.0).abs() < POLY_TRIG_MAX_ABS_ERROR);
    }

    fn dense_model(n: usize) -> IsingModel {
        let mut m = IsingModel::new(n);
        m.set_offset(2.5);
        for i in 0..n {
            m.set_linear(i, 0.25 * (i as f64) - 1.0).unwrap();
            for j in (i + 1)..n {
                m.set_coupling(i, j, if (i + j) % 2 == 0 { 1.0 } else { -1.0 })
                    .unwrap();
            }
        }
        m
    }

    #[test]
    fn subsample_is_deterministic_and_sized() {
        let m = dense_model(12);
        let total = m.num_couplings();
        let a = subsample_couplings(&m, 0.25, 8, 42);
        let b = subsample_couplings(&m, 0.25, 8, 42);
        assert_eq!(a, b, "same seed, same model");
        let target = 8usize.max((0.25 * total as f64).ceil() as usize);
        assert_eq!(a.num_couplings(), target);
        assert_eq!(a.num_vars(), m.num_vars());
        assert_eq!(a.offset(), m.offset());
        // Kept couplings are a subset with identical coefficients.
        for ((i, j), jij) in a.couplings() {
            assert_eq!(m.coupling(i, j), jij);
        }
        // Linear terms survive untouched.
        for (i, hi) in m.linears() {
            assert_eq!(a.linear(i), hi);
        }
        // A different seed picks a different subset (overwhelmingly).
        let c = subsample_couplings(&m, 0.25, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn full_fraction_or_small_models_pass_through_unchanged() {
        let m = dense_model(8);
        let full = subsample_couplings(&m, 1.0, 0, 7);
        assert_eq!(full, m);
        let floor = subsample_couplings(&m, 0.01, m.num_couplings(), 7);
        assert_eq!(floor.num_couplings(), m.num_couplings());
    }
}
