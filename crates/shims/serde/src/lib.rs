//! Offline stand-in for `serde`.
//!
//! Exposes the two marker traits and the no-op derive macros under their
//! usual names, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged while the build
//! stays dependency-free (see `serde_derive`'s crate docs for why).
//!
//! Types that need a real wire format (the `frozenqubits::api` job specs)
//! implement it by hand against the [`json`] document model, whose
//! canonical writer makes byte-for-byte golden tests possible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
