//! Offline stand-in for `serde`.
//!
//! Exposes the two marker traits and the no-op derive macros under their
//! usual names, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged while the build
//! stays dependency-free (see `serde_derive`'s crate docs for why).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
