//! A minimal JSON document model with a deterministic writer and a strict
//! parser.
//!
//! The derive half of this shim is inert (see the crate docs), so types
//! that need an actual wire format implement it against this module by
//! hand. The writer is **canonical**: objects keep insertion order, no
//! whitespace is emitted, and numbers print in Rust's shortest
//! round-trip `f64` form — so `write(parse(write(v))) == write(v)`
//! byte for byte, which lets golden tests pin a format before any
//! service layer exists.

use std::fmt;

/// A parsed or under-construction JSON document.
///
/// Objects are ordered `(key, value)` pairs — not a map — so the writer
/// is deterministic and round-trips preserve byte-level layout.
///
/// Numbers come in two shapes: [`Value::UInt`] holds non-negative
/// integers **exactly** (all of `u64`, beyond `f64`'s 2^53 integer
/// range), and [`Value::Number`] holds everything else. The parser maps
/// plain digit runs to `UInt` and the numeric accessors bridge the two,
/// so `Number(7.0)` and `UInt(7)` compare equal and write identical
/// bytes.
#[derive(Clone, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number that is not a plain non-negative integer.
    /// Non-finite values are not representable in JSON; the writer emits
    /// the strings `"inf"`, `"-inf"`, `"nan"` instead, and
    /// [`Value::as_f64`] reads them back.
    Number(f64),
    /// A non-negative integer, kept exact across the full `u64` range.
    UInt(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            // Numeric bridge: 7 == 7.0 regardless of which variant the
            // builder or parser produced (exact only within 2^53, which
            // is the most an f64 literal can promise anyway).
            (Value::Number(a), Value::UInt(b)) | (Value::UInt(b), Value::Number(a)) => {
                *a == *b as f64
            }
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

/// A JSON parse or access error, with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Value {
    /// Convenience constructor for an object from ordered pairs.
    #[must_use]
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for a string value.
    #[must_use]
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value under `key`, or an error naming the missing field.
    ///
    /// # Errors
    ///
    /// When `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// Reads a number, accepting the writer's `"inf"`/`"-inf"`/`"nan"`
    /// encodings of non-finite values.
    ///
    /// # Errors
    ///
    /// When the value is neither a number nor a non-finite marker string.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Number(x) => Ok(*x),
            Value::UInt(x) => Ok(*x as f64),
            Value::String(s) if s == "inf" => Ok(f64::INFINITY),
            Value::String(s) if s == "-inf" => Ok(f64::NEG_INFINITY),
            Value::String(s) if s == "nan" => Ok(f64::NAN),
            other => err(format!("expected number, found {}", other.kind())),
        }
    }

    /// Reads a non-negative integer (counts, indices, seeds) — exact
    /// across the full `u64` range when the document used a plain
    /// integer literal.
    ///
    /// # Errors
    ///
    /// When the value is not a non-negative integral number.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Value::UInt(x) => Ok(*x),
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Ok(*x as u64)
            }
            other => err(format!("expected unsigned integer, found {}", other.kind())),
        }
    }

    /// Reads an index-sized integer.
    ///
    /// # Errors
    ///
    /// When the value is not a non-negative integral number.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// When the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {}", other.kind())),
        }
    }

    /// Reads a string slice.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }

    /// Reads an array slice.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            other => err(format!("expected array, found {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) | Value::UInt(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Writes the canonical (compact, order-preserving) JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => write_number(*x, out),
            Value::UInt(x) => out.push_str(&format!("{x}")),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text (strict: one document, standard grammar).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_number(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("\"nan\"");
    } else if x == f64::INFINITY {
        out.push_str("\"inf\"");
    } else if x == f64::NEG_INFINITY {
        out.push_str("\"-inf\"");
    } else {
        // Rust's shortest round-trip form; re-parsing and re-writing the
        // result reproduces these exact bytes.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid utf-8 in number".into()))?;
        // Plain digit runs stay exact u64 (seeds, shot counts beyond
        // 2^53); everything else goes through f64.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError(format!("invalid \\u escape `{hex}`")))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's formats; reject rather than
                            // silently corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError(format!("invalid codepoint {code}")))?;
                            out.push(c);
                        }
                        other => {
                            return err(format!("unknown escape `\\{}`", char::from(other)));
                        }
                    }
                }
                b if b < 0x80 => out.push(char::from(b)),
                b => {
                    // Decode exactly one multi-byte UTF-8 sequence (the
                    // leading byte's prefix gives the length) — never
                    // re-validating the rest of the document, so parsing
                    // stays linear.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return err("invalid utf-8 in string"),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return err("truncated utf-8 sequence in string");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| JsonError("invalid utf-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_canonical_and_round_trips() {
        let v = Value::object(vec![
            ("name", Value::string("fq \"job\"\n")),
            ("n", Value::Number(12.0)),
            ("x", Value::Number(0.1)),
            ("flag", Value::Bool(true)),
            ("items", Value::Array(vec![Value::Number(1.0), Value::Null])),
        ]);
        let text = v.to_json();
        assert_eq!(
            text,
            "{\"name\":\"fq \\\"job\\\"\\n\",\"n\":12,\"x\":0.1,\"flag\":true,\"items\":[1,null]}"
        );
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.to_json(), text, "byte-for-byte round trip");
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        for x in [0.0, -1.5, 1e-9, 123456789.25, 2f64.powi(52)] {
            let text = Value::Number(x).to_json();
            let back = Value::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap(), x);
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn non_finite_numbers_use_marker_strings() {
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "\"inf\"");
        assert_eq!(Value::Number(f64::NEG_INFINITY).to_json(), "\"-inf\"");
        assert_eq!(Value::Number(f64::NAN).to_json(), "\"nan\"");
        assert_eq!(
            Value::parse("\"inf\"").unwrap().as_f64().unwrap(),
            f64::INFINITY
        );
        assert!(Value::parse("\"nan\"").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn accessors_report_useful_errors() {
        let v = Value::parse("{\"a\":1}").unwrap();
        assert_eq!(v.field("a").unwrap().as_u64().unwrap(), 1);
        assert!(v.field("b").unwrap_err().to_string().contains("`b`"));
        assert!(v.field("a").unwrap().as_str().is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("\"\\q\"").is_err());
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = Value::parse(" { \"a\" : [ 1 , { \"b\" : \"c\\u0041\" } ] } ").unwrap();
        assert_eq!(
            v.field("a").unwrap().as_array().unwrap()[1]
                .field("b")
                .unwrap()
                .as_str()
                .unwrap(),
            "cA"
        );
    }
}
