//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small* slice of the `rand 0.9` API it actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`RngExt`] sampling extension (`random::<T>()` / `random_range`), and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic across platforms, which is all the
//! seeded reproduction pipeline requires (it is *not* cryptographic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate orbit; nudge out of it.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from the generator's "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u64() >> 63) == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching `rand`'s behaviour.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                self.start + v as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                start + v as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The sampling extension every generator gets for free.
pub trait RngExt: RngCore {
    /// A value from the standard distribution of `T` (uniform `[0,1)` for
    /// `f64`, fair coin for `bool`, full-range for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniform over `range`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4u64);
            assert!(w <= 4);
            let x = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&x));
        }
        // Every residue of a small range is reachable.
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4500..5500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
