//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data
//! types so they are serialization-ready, but nothing in the tree actually
//! serializes (there is no `serde_json` and no wire format). Since the
//! build environment cannot reach crates.io, these derives expand to
//! nothing: the attribute remains valid and the types stay source-
//! compatible with the real serde, at zero dependency cost.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
