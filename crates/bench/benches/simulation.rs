//! Criterion benches of the simulation substrate: statevector gate
//! throughput, sampling, analytic p=1 expectations (the engine behind the
//! ARG figures and the 50×50 landscape), and the Monte-Carlo noisy
//! sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_sim::analytic::expectation_p1;
use fq_sim::{run_circuit, sample_noisy, NoisySamplerConfig};
use fq_transpile::{compile, CompileOptions, Device};

fn bench_statevector(c: &mut Criterion) {
    let model = to_ising_pm1(&gen::barabasi_albert(16, 1, 1).unwrap(), 1);
    let qc = build_qaoa_circuit(&model, 1)
        .unwrap()
        .bind(&[0.4], &[0.8])
        .unwrap();
    let mut group = c.benchmark_group("simulation");
    group.bench_function("statevector_qaoa_16q", |b| {
        b.iter(|| black_box(run_circuit(black_box(&qc)).unwrap()));
    });

    let sv = run_circuit(&qc).unwrap();
    group.bench_function("sample_4096_shots_16q", |b| {
        b.iter(|| black_box(sv.sample_indices(4096, 7)));
    });

    let big = to_ising_pm1(&gen::barabasi_albert(500, 1, 1).unwrap(), 1);
    group.bench_function("analytic_p1_ev_500q", |b| {
        b.iter(|| black_box(expectation_p1(black_box(&big), 0.4, 0.8).unwrap()));
    });

    let dev = Device::ibm_montreal();
    let compiled = compile(&qc, &dev, CompileOptions::level3()).unwrap();
    group.sample_size(10);
    group.bench_function("mc_noisy_sampler_16q_1024shots", |b| {
        b.iter(|| {
            black_box(
                sample_noisy(
                    &compiled,
                    &dev,
                    NoisySamplerConfig { shots: 1024, trajectories: 8, seed: 3 },
                )
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_statevector);
criterion_main!(benches);
