//! Benches of the simulation substrate: statevector gate throughput,
//! sampling, analytic p=1 expectations (the engine behind the ARG figures
//! and the 50×50 landscape), and the Monte-Carlo noisy sampler.

use std::hint::black_box;

use fq_bench::harness::bench;
use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_sim::analytic::expectation_p1;
use fq_sim::{run_circuit, sample_noisy, NoisySamplerConfig};
use fq_transpile::{compile, CompileOptions, Device};

fn main() {
    println!("== simulation micro-benches ==");
    let model = to_ising_pm1(&gen::barabasi_albert(16, 1, 1).unwrap(), 1);
    let qc = build_qaoa_circuit(&model, 1)
        .unwrap()
        .bind(&[0.4], &[0.8])
        .unwrap();
    bench("statevector_qaoa_16q", 1, 20, || {
        run_circuit(black_box(&qc)).unwrap()
    });

    let sv = run_circuit(&qc).unwrap();
    bench("sample_4096_shots_16q", 1, 20, || {
        sv.sample_indices(4096, 7)
    });

    let big = to_ising_pm1(&gen::barabasi_albert(500, 1, 1).unwrap(), 1);
    bench("analytic_p1_ev_500q", 1, 20, || {
        expectation_p1(black_box(&big), 0.4, 0.8).unwrap()
    });

    let dev = Device::ibm_montreal();
    let compiled = compile(&qc, &dev, CompileOptions::level3()).unwrap();
    bench("mc_noisy_sampler_1024x8_16q", 1, 5, || {
        sample_noisy(
            &compiled,
            &dev,
            NoisySamplerConfig {
                shots: 1024,
                trajectories: 8,
                seed: 3,
            },
        )
        .unwrap()
    });
}
