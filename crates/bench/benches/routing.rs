//! Benches of the transpiler: layout + SABRE routing on heavy-hex and
//! grid devices (the cost FrozenQubits amortizes via templates).

use std::hint::black_box;

use fq_bench::harness::bench;
use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_transpile::{compile, CompileOptions, Device};

fn main() {
    println!("== transpile micro-benches ==");

    let small = to_ising_pm1(&gen::barabasi_albert(16, 1, 1).unwrap(), 1);
    let small_qc = build_qaoa_circuit(&small, 1).unwrap();
    let falcon = Device::ibm_montreal();
    bench("compile_ba16_falcon27", 2, 50, || {
        compile(black_box(&small_qc), &falcon, CompileOptions::level3()).unwrap()
    });

    let dense = to_ising_pm1(&gen::complete(12), 2);
    let dense_qc = build_qaoa_circuit(&dense, 1).unwrap();
    bench("compile_sk12_falcon27", 2, 50, || {
        compile(black_box(&dense_qc), &falcon, CompileOptions::level3()).unwrap()
    });

    let big = to_ising_pm1(&gen::barabasi_albert(200, 1, 1).unwrap(), 1);
    let big_qc = build_qaoa_circuit(&big, 1).unwrap();
    let grid = Device::grid_2500();
    bench("compile_ba200_grid2500", 1, 5, || {
        compile(black_box(&big_qc), &grid, CompileOptions::level3()).unwrap()
    });
}
