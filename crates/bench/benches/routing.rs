//! Criterion benches of the transpiler: layout + SABRE routing on heavy-hex
//! and grid devices (the cost FrozenQubits amortizes via templates).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_transpile::{compile, CompileOptions, Device};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");

    let small = to_ising_pm1(&gen::barabasi_albert(16, 1, 1).unwrap(), 1);
    let small_qc = build_qaoa_circuit(&small, 1).unwrap();
    let falcon = Device::ibm_montreal();
    group.bench_function("compile_ba16_falcon27", |b| {
        b.iter(|| black_box(compile(black_box(&small_qc), &falcon, CompileOptions::level3()).unwrap()));
    });

    let dense = to_ising_pm1(&gen::complete(12), 2);
    let dense_qc = build_qaoa_circuit(&dense, 1).unwrap();
    group.bench_function("compile_sk12_falcon27", |b| {
        b.iter(|| black_box(compile(black_box(&dense_qc), &falcon, CompileOptions::level3()).unwrap()));
    });

    group.sample_size(10);
    let big = to_ising_pm1(&gen::barabasi_albert(200, 1, 1).unwrap(), 1);
    let big_qc = build_qaoa_circuit(&big, 1).unwrap();
    let grid = Device::grid_2500();
    group.bench_function("compile_ba200_grid2500", |b| {
        b.iter(|| black_box(compile(black_box(&big_qc), &grid, CompileOptions::level3()).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
