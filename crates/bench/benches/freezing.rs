//! Criterion benches of the freezing algebra and classical solvers — the
//! §3.8 complexity claims (freezing is `O(m·N)` per sub-problem, decoding
//! is linear).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fq_graphs::{gen, to_ising_pm1};
use fq_ising::solve::{simulated_annealing, AnnealConfig};
use fq_ising::{Spin, SpinVec};
use frozenqubits::{partition_problem, select_hotspots, HotspotStrategy};

fn bench_freezing(c: &mut Criterion) {
    let model = to_ising_pm1(&gen::barabasi_albert(500, 1, 1).unwrap(), 1);
    let hub = model.hotspots()[0];

    let mut group = c.benchmark_group("freezing");
    group.bench_function("freeze_one_hotspot_500q", |b| {
        b.iter(|| black_box(model.freeze(black_box(&[(hub, Spin::UP)])).unwrap()));
    });

    let hotspots = select_hotspots(&model, 8, &HotspotStrategy::MaxDegree).unwrap();
    group.bench_function("partition_m8_pruned_500q", |b| {
        b.iter(|| black_box(partition_problem(&model, black_box(&hotspots), true).unwrap()));
    });

    let frozen = model.freeze(&[(hub, Spin::UP)]).unwrap();
    let sub_solution = SpinVec::all_up(499);
    group.bench_function("decode_outcome_500q", |b| {
        b.iter(|| black_box(frozen.decode(black_box(&sub_solution)).unwrap()));
    });

    group.bench_function("hotspot_selection_500q", |b| {
        b.iter(|| black_box(select_hotspots(&model, 10, &HotspotStrategy::MaxDegree).unwrap()));
    });

    group.sample_size(10);
    group.bench_function("simulated_annealing_500q", |b| {
        let cfg = AnnealConfig { sweeps: 50, restarts: 1, ..AnnealConfig::default() };
        b.iter(|| black_box(simulated_annealing(&model, &cfg, 3).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_freezing);
criterion_main!(benches);
