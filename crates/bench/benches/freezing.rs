//! Benches of the freezing algebra and classical solvers — the §3.8
//! complexity claims (freezing is `O(m·N)` per sub-problem, decoding is
//! linear).

use std::hint::black_box;

use fq_bench::harness::bench;
use fq_graphs::{gen, to_ising_pm1};
use fq_ising::solve::{simulated_annealing, AnnealConfig};
use fq_ising::{Spin, SpinVec};
use frozenqubits::{partition_problem, select_hotspots, HotspotStrategy};

fn main() {
    let model = to_ising_pm1(&gen::barabasi_albert(500, 1, 1).unwrap(), 1);
    let hub = model.hotspots()[0];

    println!("== freezing micro-benches ==");
    bench("freeze_one_hotspot_500q", 3, 100, || {
        model.freeze(black_box(&[(hub, Spin::UP)])).unwrap()
    });

    let hotspots = select_hotspots(&model, 8, &HotspotStrategy::MaxDegree).unwrap();
    bench("partition_m8_pruned_500q", 1, 10, || {
        partition_problem(&model, black_box(&hotspots), true).unwrap()
    });

    let frozen = model.freeze(&[(hub, Spin::UP)]).unwrap();
    let sub_solution = SpinVec::all_up(499);
    bench("decode_outcome_500q", 3, 200, || {
        frozen.decode(black_box(&sub_solution)).unwrap()
    });

    bench("hotspot_selection_500q", 3, 100, || {
        select_hotspots(&model, 10, &HotspotStrategy::MaxDegree).unwrap()
    });

    let cfg = AnnealConfig {
        sweeps: 50,
        restarts: 1,
        ..AnnealConfig::default()
    };
    bench("simulated_annealing_500q", 1, 5, || {
        simulated_annealing(&model, &cfg, 3).unwrap()
    });
}
