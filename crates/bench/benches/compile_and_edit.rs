//! Benches behind Fig. 17: full compilation vs template editing.
//!
//! The paper's claim is that generating all 2^m executables by editing one
//! compiled template costs ~1e-4 of a compilation. These benches measure
//! both operations on a mid-size instance.

use std::hint::black_box;

use fq_bench::harness::bench;
use fq_circuit::build_qaoa_circuit;
use fq_graphs::{gen, to_ising_pm1};
use fq_transpile::{compile, CompileOptions, Device};
use frozenqubits::{partition_problem, select_hotspots, CompiledTemplate, HotspotStrategy};

fn main() {
    let model = to_ising_pm1(&gen::barabasi_albert(64, 1, 1).unwrap(), 1);
    let device = Device::ibm_washington();
    let options = CompileOptions::level3();

    let hotspots = select_hotspots(&model, 2, &HotspotStrategy::MaxDegree).unwrap();
    let plan = partition_problem(&model, &hotspots, true).unwrap();
    let rep = plan.executed[0].problem.model().clone();
    let sibling = plan.executed[1].problem.model().clone();
    let template = CompiledTemplate::compile(&rep, 1, &device, options).unwrap();

    println!("== fig17 micro-benches ==");
    let t_compile = bench("full_compile_64q_washington", 1, 10, || {
        let qc = build_qaoa_circuit(black_box(&rep), 1).unwrap();
        compile(&qc, &device, options).unwrap()
    });
    let t_edit = bench("template_edit_64q", 3, 200, || {
        template.edit_for(black_box(&sibling)).unwrap()
    });
    println!("edit/compile ratio: {:.2e}", t_edit / t_compile);
}
