//! Branch fan-out benchmark: the same [`ExecutionPlan`] executed by the
//! sequential and the parallel backend.
//!
//! Freezing `m` hotspots fans execution out into `2^{m−1}` independent
//! branches; this bench measures how much of that fan-out the
//! `ParallelExecutor` turns into wall-clock speedup, and verifies that the
//! two backends agree bit-for-bit while doing so.

use fq_bench::harness::{bench, fmt_time};
use fq_graphs::{gen, to_ising_pm1};
use fq_transpile::Device;
use frozenqubits::{
    plan_execution, Executor, FrozenQubitsConfig, ParallelExecutor, SequentialExecutor,
};

fn main() {
    let model = to_ising_pm1(&gen::barabasi_albert(24, 1, 1).unwrap(), 1);
    let device = Device::ibm_montreal();
    println!("== branch fan-out: sequential vs parallel executor ==");
    println!(
        "cores available: {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    for m in [2usize, 3, 4, 5] {
        let cfg = FrozenQubitsConfig::with_frozen(m);
        let plan = plan_execution(&model, &device, &cfg).unwrap();
        let branches = plan.num_branches();

        let seq = SequentialExecutor.execute(&plan, &device, &cfg).unwrap();
        let par = ParallelExecutor::default()
            .execute(&plan, &device, &cfg)
            .unwrap();
        assert_eq!(seq, par, "backends must agree bit-for-bit");

        let t_seq = bench(
            &format!("m={m} ({branches} branches) sequential"),
            1,
            5,
            || SequentialExecutor.execute(&plan, &device, &cfg).unwrap(),
        );
        let t_par = bench(
            &format!("m={m} ({branches} branches) parallel"),
            1,
            5,
            || {
                ParallelExecutor::default()
                    .execute(&plan, &device, &cfg)
                    .unwrap()
            },
        );
        println!(
            "  -> speedup {:.2}x  (saved {} per run)\n",
            t_seq / t_par,
            fmt_time((t_seq - t_par).max(0.0))
        );
    }
}
