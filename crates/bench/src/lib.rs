//! Shared helpers for the figure-regeneration binaries (`src/bin/fig*.rs`)
//! and the Criterion benches.
//!
//! Every binary regenerates one table or figure of the paper: it prints
//! the same rows/series the paper reports and writes a CSV under
//! `results/`. Run them all with `cargo run --release -p fq-bench --bin
//! all_figures`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod scale;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use fq_ising::IsingModel;

/// The benchmark sizes of the small-scale ARG figures (Figs. 7, 8, 10, 11).
pub const ARG_SIZES: [usize; 6] = [4, 8, 12, 16, 20, 24];

/// Seeds per size: each paper point averages several random instances.
pub const SEEDS_PER_SIZE: u64 = 3;

/// The `results/` directory at the workspace root.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("can create results directory");
    dir
}

/// Writes a CSV file into `results/` and announces it on stdout.
///
/// # Panics
///
/// Panics on I/O errors — a bench harness has nothing useful to do about
/// them.
pub fn write_csv(name: &str, header: &str, rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut f = fs::File::create(&path).expect("can create csv");
    writeln!(f, "{header}").expect("can write csv");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("can write csv");
    }
    println!("  -> wrote {}", path.display());
}

/// A Barabási–Albert benchmark instance of §4.1: `d_BA`-preferential
/// attachment, ±1 edge weights, zero node weights. Delegates to
/// [`fq_suite::models`], the workspace's single source of model
/// construction.
///
/// # Panics
///
/// Panics for infeasible `(n, d)` (not used by the harness).
#[must_use]
pub fn ba_instance(n: usize, d: usize, seed: u64) -> IsingModel {
    fq_suite::models::ba_pm1(n, d, seed).expect("valid BA parameters")
}

/// A random 3-regular benchmark instance, via [`fq_suite::models`].
///
/// # Panics
///
/// Panics for infeasible sizes (odd `3n`).
#[must_use]
pub fn regular3_instance(n: usize, seed: u64) -> IsingModel {
    fq_suite::models::regular_pm1(n, 3, seed).expect("valid size")
}

/// A fully-connected SK-model benchmark instance, via
/// [`fq_suite::models`].
#[must_use]
pub fn sk_instance(n: usize, seed: u64) -> IsingModel {
    fq_suite::models::dense_pm1(n, seed).expect("valid size")
}

/// Geometric mean over per-instance values (the paper's aggregate).
///
/// # Panics
///
/// Panics on empty input.
#[must_use]
pub fn gmean(values: &[f64]) -> f64 {
    frozenqubits::metrics::gmean(values)
}

/// Runs the standard-QAOA baseline through the job API.
///
/// # Panics
///
/// Panics on pipeline errors — a bench harness has nothing useful to do
/// about them.
#[must_use]
pub fn baseline_summary(
    model: &IsingModel,
    device: &fq_transpile::Device,
    config: &frozenqubits::FrozenQubitsConfig,
) -> frozenqubits::RunSummary {
    frozenqubits::Job::from_parts(model, device, config, frozenqubits::JobKind::Baseline)
        .run()
        .expect("baseline job runs")
        .into_baseline()
        .expect("baseline job yields a baseline summary")
}

/// Runs FrozenQubits at `config.num_frozen` through the job API.
///
/// # Panics
///
/// Panics on pipeline errors — a bench harness has nothing useful to do
/// about them.
#[must_use]
pub fn frozen_summary(
    model: &IsingModel,
    device: &fq_transpile::Device,
    config: &frozenqubits::FrozenQubitsConfig,
) -> (frozenqubits::RunSummary, Vec<usize>) {
    frozenqubits::Job::from_parts(model, device, config, frozenqubits::JobKind::Frozen)
        .run()
        .expect("frozen job runs")
        .into_frozen()
        .expect("frozen job yields a frozen summary")
}

/// Formats a float for tables.
#[must_use]
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_have_expected_shapes() {
        assert_eq!(ba_instance(12, 1, 0).num_couplings(), 11);
        assert_eq!(regular3_instance(8, 0).num_couplings(), 12);
        assert_eq!(sk_instance(6, 0).num_couplings(), 15);
    }

    #[test]
    fn csv_roundtrip() {
        write_csv("selftest.csv", "a,b", &[vec!["1".into(), "2".into()]]);
        let content = std::fs::read_to_string(results_dir().join("selftest.csv")).unwrap();
        assert!(content.contains("a,b"));
        assert!(content.contains("1,2"));
        std::fs::remove_file(results_dir().join("selftest.csv")).unwrap();
    }
}
