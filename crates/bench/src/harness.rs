//! A minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! The offline build cannot fetch Criterion, so the bench targets are
//! plain `harness = false` mains built on this module: warm up, run a
//! fixed number of timed iterations, and report min/mean per-iteration
//! time. Results are indicative (no outlier rejection), which is enough
//! for the order-of-magnitude claims the paper's Fig. 17/18 make.

use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations after `warmup` untimed runs and
/// prints a `name: mean ± min` line. Returns the mean seconds/iteration.
pub fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "at least one timed iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / iters as f64;
    println!(
        "{name:<40} {:>12} mean  {:>12} min  ({iters} iters)",
        fmt_time(mean),
        fmt_time(min)
    );
    mean
}

/// Formats seconds with an adaptive unit.
#[must_use]
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_mean() {
        let mean = bench("noop", 1, 3, || std::hint::black_box(1 + 1));
        assert!(mean >= 0.0);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
