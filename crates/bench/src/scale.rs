//! Regeneration of the practical-scale figures (§6, Figs. 14–18): 500
//! qubits on the optimistic 50×50 grid device.

use std::time::Instant;

use fq_circuit::{build_qaoa_circuit, qaoa_cnot_count};
use fq_sim::log_eps;
use fq_transpile::{compile, compile_invocations, CompileOptions, Device};
use frozenqubits::runtime::{end_to_end_runtime_hours, ExecutionModel, RuntimeParams};
use frozenqubits::{
    partition_problem, plan_execution, select_hotspots, FrozenQubitsConfig, HotspotStrategy,
};

use crate::{ba_instance, write_csv};

/// Problem size of the practical-scale study; override with the
/// `FQ_SCALE_N` environment variable for quicker smoke runs.
#[must_use]
pub fn scale_n() -> usize {
    std::env::var("FQ_SCALE_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}

/// One point of the practical-scale sweep.
pub struct ScalePoint {
    /// Frozen qubit count.
    pub m: usize,
    /// Pre-compilation CNOTs of the representative sub-circuit.
    pub pre_cx: usize,
    /// Post-compilation CNOTs.
    pub post_cx: usize,
    /// Router-inserted SWAPs.
    pub swaps: usize,
    /// Circuit depth.
    pub depth: usize,
    /// Log-EPS on the grid device.
    pub log_eps: f64,
}

/// Compiles the representative sub-circuit for every `m` in `0..=max_m`
/// on the 50×50 grid (m = 0 is the baseline).
#[must_use]
pub fn scale_sweep(d_ba: usize, n: usize, max_m: usize) -> Vec<ScalePoint> {
    let model = ba_instance(n, d_ba, 1);
    let device = Device::grid_2500();
    let options = CompileOptions::level3();
    let mut out = Vec::new();
    for m in 0..=max_m {
        let sub_owned;
        let sub = if m == 0 {
            &model
        } else {
            let hotspots =
                select_hotspots(&model, m, &HotspotStrategy::MaxDegree).expect("valid m");
            let plan = partition_problem(&model, &hotspots, true).expect("valid plan");
            sub_owned = plan.executed[0].problem.model().clone();
            &sub_owned
        };
        let qc = build_qaoa_circuit(sub, 1).expect("p=1");
        let compiled = compile(&qc, &device, options).expect("compiles");
        out.push(ScalePoint {
            m,
            pre_cx: qaoa_cnot_count(sub, 1),
            post_cx: compiled.stats.cnot_count,
            swaps: compiled.swap_count,
            depth: compiled.stats.depth,
            log_eps: log_eps(&compiled, &device),
        });
    }
    out
}

/// Fig. 14: the CNOT-reduction breakdown (edge drops vs SWAP savings) on
/// BA d=1.
pub fn fig14_cnot_breakdown() {
    let n = scale_n();
    println!("== Fig 14: CNOT reduction breakdown (BA d=1, N = {n}, 50x50 grid) ==");
    let sweep = scale_sweep(1, n, 10);
    let base = &sweep[0];
    let base_swap_cx = base.post_cx - base.pre_cx;
    println!(
        "baseline: {} pre-CX + {} SWAP-CX = {} total",
        base.pre_cx, base_swap_cx, base.post_cx
    );
    println!(
        "{:>3} | {:>9} | {:>9} | {:>9} | {:>11}",
        "m", "edge-red", "swap-red", "total-red", "swap share"
    );
    let mut rows = Vec::new();
    for p in &sweep[1..] {
        let edge_red = base.pre_cx - p.pre_cx;
        let swap_cx = p.post_cx - p.pre_cx;
        let swap_red = base_swap_cx as i64 - swap_cx as i64;
        let total_red = base.post_cx as i64 - p.post_cx as i64;
        let share = if total_red > 0 {
            swap_red as f64 / total_red as f64
        } else {
            0.0
        };
        println!(
            "{:>3} | {:>9} | {:>9} | {:>9} | {:>10.1}%",
            p.m,
            edge_red,
            swap_red,
            total_red,
            100.0 * share
        );
        rows.push(vec![
            p.m.to_string(),
            edge_red.to_string(),
            swap_red.to_string(),
            total_red.to_string(),
            format!("{share:.4}"),
        ]);
    }
    write_csv(
        "fig14_cnot_breakdown.csv",
        "m,edge_reduction,swap_reduction,total_reduction,swap_share",
        &rows,
    );
}

/// Figs. 15 + 16: relative CNOTs, depth and EPS for d = 1, 2, 3.
pub fn fig15_16_scale() {
    let n = scale_n();
    println!("== Fig 15+16: relative CX / depth / EPS (N = {n}, 50x50 grid) ==");
    let mut rows = Vec::new();
    for d in 1..=3usize {
        let sweep = scale_sweep(d, n, 10);
        let base = &sweep[0];
        println!(
            "d_BA = {d}: baseline CX {}, depth {}, log10 EPS {:.1}",
            base.post_cx,
            base.depth,
            base.log_eps / std::f64::consts::LN_10
        );
        println!(
            "{:>3} | {:>8} | {:>9} | {:>12}",
            "m", "rel CX", "rel depth", "rel EPS(log10)"
        );
        for p in &sweep[1..] {
            let rel_cx = p.post_cx as f64 / base.post_cx as f64;
            let rel_depth = p.depth as f64 / base.depth as f64;
            let rel_eps_log10 = (p.log_eps - base.log_eps) / std::f64::consts::LN_10;
            println!(
                "{:>3} | {rel_cx:>8.3} | {rel_depth:>9.3} | {rel_eps_log10:>+12.2}",
                p.m
            );
            rows.push(vec![
                d.to_string(),
                p.m.to_string(),
                format!("{rel_cx:.4}"),
                format!("{rel_depth:.4}"),
                format!("{rel_eps_log10:.4}"),
            ]);
        }
    }
    write_csv(
        "fig15_16_scale.csv",
        "d_ba,m,rel_cx,rel_depth,rel_eps_log10",
        &rows,
    );
}

/// Fig. 17: planning cost (the one template compile) vs the baseline
/// compile, and template-editing time vs recompilation — measured through
/// the plan/execute API, with the transpiler's invocation counter proving
/// the `2^m → 1` compile amortization.
pub fn fig17_compile_time() {
    let n = scale_n().min(300); // keep the timing loop snappy
    println!("== Fig 17: plan (compile-once) vs per-branch edit time (BA d=1, N = {n}) ==");
    let model = ba_instance(n, 1, 1);
    let device = Device::grid_2500();
    let options = CompileOptions::level3();

    let t0 = Instant::now();
    let qc = build_qaoa_circuit(&model, 1).expect("p=1");
    let _baseline = compile(&qc, &device, options).expect("compiles");
    let t_base = t0.elapsed().as_secs_f64();

    let mut rows = Vec::new();
    println!(
        "{:>3} | {:>8} | {:>9} | {:>12} | {:>13} | {:>10}",
        "m", "branches", "templates", "rel plan", "edit seq (s)", "edit/compile"
    );
    for m in 1..=10usize {
        let cfg = FrozenQubitsConfig::with_frozen(m);
        let compiles_before = compile_invocations();
        let t0 = Instant::now();
        let plan = plan_execution(&model, &device, &cfg).expect("plans");
        let t_plan = t0.elapsed().as_secs_f64();
        let compiles = compile_invocations() - compiles_before;
        assert_eq!(
            compiles,
            plan.num_templates() as u64,
            "one compile per shape"
        );

        // Editing time for the branch executables (measure a few, scale).
        let probe = plan.num_branches().clamp(1, 8);
        let t0 = Instant::now();
        for b in 0..probe {
            let _ = plan
                .template_for(b)
                .edit_for(plan.branch(b).problem.model())
                .expect("edits");
        }
        let t_edit_one = t0.elapsed().as_secs_f64() / probe as f64;
        let t_seq = t_edit_one * plan.num_branches() as f64;

        println!(
            "{m:>3} | {:>8} | {:>9} | {:>12.3} | {t_seq:>13.5} | {:>10.2e}",
            plan.num_branches(),
            plan.num_templates(),
            t_plan / t_base,
            t_seq / t_plan
        );
        rows.push(vec![
            m.to_string(),
            plan.num_branches().to_string(),
            plan.num_templates().to_string(),
            format!("{:.5}", t_plan / t_base),
            format!("{t_seq:.6}"),
        ]);
    }
    write_csv(
        "fig17_compile_time.csv",
        "m,branches,templates,rel_plan_time,edit_sequential_s",
        &rows,
    );
}

/// Fig. 18: end-to-end runtime under the four execution models (Eq. 6).
pub fn fig18_runtime() {
    println!("== Fig 18: end-to-end runtime (hours) ==");
    let params = RuntimeParams::default();
    let schemes: [(&str, u64); 4] = [
        ("baseline", 1),
        ("FQ(m=1)", 1),
        ("FQ(m=2)", 2),
        ("FQ(m=10)", 512),
    ];
    println!(
        "{:<22} | {:>10} {:>10} {:>10} {:>10}",
        "execution model", schemes[0].0, schemes[1].0, schemes[2].0, schemes[3].0
    );
    let mut rows = Vec::new();
    for exec in ExecutionModel::all() {
        let hours: Vec<f64> = schemes
            .iter()
            .map(|&(_, c)| end_to_end_runtime_hours(c, &params, &exec))
            .collect();
        println!(
            "{:<22} | {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            exec.name, hours[0], hours[1], hours[2], hours[3]
        );
        let mut row = vec![exec.name.to_string()];
        row.extend(hours.iter().map(|h| format!("{h:.2}")));
        rows.push(row);
    }
    write_csv(
        "fig18_runtime.csv",
        "execution_model,baseline_h,fq_m1_h,fq_m2_h,fq_m10_h",
        &rows,
    );
}
