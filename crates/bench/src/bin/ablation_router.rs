//! Ablation: how much of the baseline's CNOT overhead is SWAP routing, and
//! how much does the noise-adaptive layout matter? Compares trivial vs
//! noise-adaptive layout, with and without the cleanup passes.

use fq_bench::{ba_instance, write_csv, ARG_SIZES};
use fq_circuit::build_qaoa_circuit;
use fq_transpile::{compile, CompileOptions, Device, LayoutStrategy};

fn main() {
    println!("== Ablation: layout strategy and cleanup passes (IBM-Montreal) ==");
    let device = Device::ibm_montreal();
    let variants: [(&str, CompileOptions); 4] = [
        (
            "trivial",
            CompileOptions {
                layout: LayoutStrategy::Trivial,
                optimize: false,
            },
        ),
        (
            "trivial+opt",
            CompileOptions {
                layout: LayoutStrategy::Trivial,
                optimize: true,
            },
        ),
        (
            "adaptive",
            CompileOptions {
                layout: LayoutStrategy::NoiseAdaptive,
                optimize: false,
            },
        ),
        ("adaptive+opt", CompileOptions::level3()),
    ];
    println!(
        "{:>4} | {:>9} | {:>10} {:>12} {:>10} {:>13}",
        "N", "pre-CX", "trivial", "trivial+opt", "adaptive", "adaptive+opt"
    );
    let mut rows = Vec::new();
    for &n in &ARG_SIZES {
        let model = ba_instance(n, 1, n as u64);
        let qc = build_qaoa_circuit(&model, 1).expect("p=1");
        let pre = qc.cnot_count();
        let mut cx = Vec::new();
        for (_, opts) in &variants {
            let compiled = compile(&qc, &device, *opts).expect("compiles");
            cx.push(compiled.stats.cnot_count);
        }
        println!(
            "{n:>4} | {pre:>9} | {:>10} {:>12} {:>10} {:>13}",
            cx[0], cx[1], cx[2], cx[3]
        );
        let mut row = vec![n.to_string(), pre.to_string()];
        row.extend(cx.iter().map(ToString::to_string));
        rows.push(row);
    }
    write_csv(
        "ablation_router.csv",
        "n,pre_cx,trivial,trivial_opt,adaptive,adaptive_opt",
        &rows,
    );
    println!("(noise-adaptive layout should cut SWAP overhead vs trivial placement)");
}
