//! Regenerates Fig. 3; see `fq_bench::figures::fig03_swap_overhead`.
//!
//! Pass sizes as arguments to override the default sweep, e.g.
//! `cargo run --release -p fq-bench --bin fig03_swap_overhead -- 10 50 100 200`.
fn main() {
    let sizes: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let sizes = if sizes.is_empty() {
        vec![10, 25, 50, 75, 100, 150, 200]
    } else {
        sizes
    };
    fq_bench::figures::fig03_swap_overhead(&sizes);
}
