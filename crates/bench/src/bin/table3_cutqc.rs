//! Regenerates the corresponding table/figure; see `fq_bench::figures`.
fn main() {
    fq_bench::figures::table3_cutqc();
}
