//! Regenerates every table and figure of the paper in sequence, writing
//! CSVs to `results/`. The practical-scale problem size can be reduced for
//! smoke runs via `FQ_SCALE_N` (default 500).
fn main() {
    use fq_bench::{figures, scale};
    figures::fig01b_powerlaw();
    figures::fig03_swap_overhead(&[10, 25, 50, 75, 100, 150, 200]);
    figures::fig06_graph_families();
    figures::fig07_cnot_depth(); // also covers Fig 8
    figures::fig09_tradeoff();
    figures::fig10_arg_dense();
    figures::fig11_arg_regular();
    figures::fig12_landscape();
    figures::fig13_machines();
    scale::fig14_cnot_breakdown();
    scale::fig15_16_scale();
    scale::fig17_compile_time();
    scale::fig18_runtime();
    figures::table3_cutqc();
    println!("\nall figures regenerated; CSVs in results/");
}
