//! Landscape-scan benchmark: the `(γ, β)` grid evaluation that seeds
//! every parameter optimization, timed through the hoisted fast path —
//! the perf-regression harness behind `BENCH_landscape.json`.
//!
//! `optimize_parameters` evaluates a `resolution²` grid of the p = 1
//! analytic expectation per sub-problem. PR 3 added two layered
//! optimizations: `PreparedP1` gathers the model's coupling structure
//! once, and `grid_scan_2d_hoisted` hoists all γ-only trigonometry out
//! of each β row. PR 6 restructured `PreparedP1` as structure-of-arrays
//! with interned trig tables and added fixed-width lane kernels
//! (`P1Row::eval_lanes`), so this bench now reports a **lanes**
//! dimension: the scalar per-point row evaluator against the 4-wide and
//! 8-wide kernels, all single-threaded so the lane win is measured in
//! isolation from row parallelism. Every variant is asserted
//! **bit-identical** to the naive per-point `expectation_p1` scan before
//! timing — the speedup must stay a pure evaluation-strategy win, never
//! a numerics change.
//!
//! Knobs:
//! * `FQ_BENCH_LANDSCAPE_N` — largest model size (default 96).
//! * `FQ_BENCH_ITERS` — timed iterations per point (default 3; the
//!   minimum is reported).
//!
//! The JSON lands at the workspace root as `BENCH_landscape.json`.

use std::fmt::Write as _;
use std::time::Instant;

use fq_bench::harness::fmt_time;
use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_optim::{grid_axis, grid_scan_2d, grid_scan_2d_hoisted, grid_scan_2d_rows, GridScan};
use fq_sim::analytic::{expectation_p1, BetaTrig, PreparedP1};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn ba_model(n: usize, d: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, d, seed).unwrap(), seed)
}

const GAMMA: (f64, f64) = (-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
const BETA: (f64, f64) = (-std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4);

/// The scalar fast path as shipped before the lane kernels: prepare,
/// then one prepared row per γ, `P1Row::at` per point. (Preparation
/// inside the timed region — the historical series in
/// `BENCH_landscape.json` is measured this way.)
fn hoisted_scan(model: &IsingModel, resolution: usize) -> GridScan {
    let prepared = PreparedP1::new(model);
    scalar_scan(&prepared, resolution)
}

/// Scan-only scalar path over an existing preparation.
fn scalar_scan(prepared: &PreparedP1<'_>, resolution: usize) -> GridScan {
    grid_scan_2d_hoisted(
        |g| prepared.row(g),
        |row, b| row.at(b),
        GAMMA,
        BETA,
        resolution,
    )
}

/// Scan-only lane path: same rows, β points evaluated `W` at a time with
/// the β-axis trig shared across all rows.
///
/// The `lanes` dimension times the *scan* over an existing
/// [`PreparedP1`] — in production (`optimize_parameters_prepared`) one
/// preparation is shared across the grid scan, the Nelder–Mead
/// refinement (~400 more evaluations) and the final per-term pass, so
/// the scan is what the lane kernels actually accelerate. Scalar and
/// lane variants are timed under the same rule, apples to apples.
fn lane_scan<const W: usize>(prepared: &PreparedP1<'_>, resolution: usize) -> GridScan {
    let trig = BetaTrig::new(&grid_axis(BETA.0, BETA.1, resolution));
    grid_scan_2d_rows(
        |g| prepared.row(g),
        |row, _betas, out| row.eval_lanes::<W>(&trig, out),
        GAMMA,
        BETA,
        resolution,
    )
}

fn naive_scan(model: &IsingModel, resolution: usize) -> GridScan {
    grid_scan_2d(
        |g, b| expectation_p1(model, g, b).expect("well-formed model"),
        GAMMA,
        BETA,
        resolution,
    )
}

/// Bitwise scan equality — `GridScan::==` compares `f64`s, which would
/// let a `−0.0`/`+0.0` divergence slip through.
fn assert_scan_bits_eq(a: &GridScan, b: &GridScan, label: &str) {
    assert_eq!(a.best_index, b.best_index, "{label}: best_index diverged");
    for (ra, rb) in a.values.iter().zip(&b.values) {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ra), bits(rb), "{label} changed numerics");
    }
}

fn min_time<T>(iters: usize, mut run: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = run();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

struct Point {
    n: usize,
    d: usize,
    resolution: usize,
    hoisted_seconds: f64,
    naive_seconds: f64,
    points_per_sec: f64,
    speedup: f64,
    prep_seconds: f64,
    scalar_pts_per_sec: f64,
    w4_pts_per_sec: f64,
    w8_pts_per_sec: f64,
    w8_speedup_vs_scalar: f64,
}

fn main() {
    let max_n = env_usize("FQ_BENCH_LANDSCAPE_N", 96);
    let iters = env_usize("FQ_BENCH_ITERS", 3).max(1);
    let sizes: Vec<(usize, usize)> = [(24usize, 1usize), (48, 2), (96, 3)]
        .into_iter()
        .filter(|&(n, _)| n <= max_n)
        .collect();
    let resolutions = [41usize, 81];

    println!("== landscape scan: hoisted (γ, β) grid evaluation ==");
    println!("sizes: {sizes:?}   resolutions: {resolutions:?}   iters: {iters}");

    let mut points = Vec::new();
    for &(n, d) in &sizes {
        let model = ba_model(n, d, 11);
        for &resolution in &resolutions {
            // Correctness first: the hoisted path and every lane width
            // must be bit-identical to evaluating expectation_p1 per
            // grid point.
            let prepared = PreparedP1::new(&model);
            let naive = naive_scan(&model, resolution);
            assert_scan_bits_eq(&naive, &hoisted_scan(&model, resolution), "hoisting");
            assert_scan_bits_eq(
                &naive,
                &scalar_scan(&prepared, resolution),
                "scan-only scalar",
            );
            assert_scan_bits_eq(
                &naive,
                &lane_scan::<4>(&prepared, resolution),
                "4-wide lanes",
            );
            assert_scan_bits_eq(
                &naive,
                &lane_scan::<8>(&prepared, resolution),
                "8-wide lanes",
            );

            let hoisted_best = min_time(iters, || hoisted_scan(&model, resolution));
            let prep_best = min_time(iters, || PreparedP1::new(&model));
            let scalar_best = min_time(iters, || scalar_scan(&prepared, resolution));
            let w4_best = min_time(iters, || lane_scan::<4>(&prepared, resolution));
            let w8_best = min_time(iters, || lane_scan::<8>(&prepared, resolution));
            let naive_best = min_time(iters, || naive_scan(&model, resolution));

            let grid_points = (resolution * resolution) as f64;
            let point = Point {
                n,
                d,
                resolution,
                hoisted_seconds: hoisted_best,
                naive_seconds: naive_best,
                points_per_sec: grid_points / hoisted_best,
                speedup: naive_best / hoisted_best,
                prep_seconds: prep_best,
                scalar_pts_per_sec: grid_points / scalar_best,
                w4_pts_per_sec: grid_points / w4_best,
                w8_pts_per_sec: grid_points / w8_best,
                w8_speedup_vs_scalar: scalar_best / w8_best,
            };
            println!(
                "n={n:<4} d_BA={d} res={resolution:<4} hoisted {:>10}   naive {:>10}   {:>12.0} pts/s   speedup {:.2}x",
                fmt_time(point.hoisted_seconds),
                fmt_time(point.naive_seconds),
                point.points_per_sec,
                point.speedup
            );
            println!(
                "    lanes: scalar {:>12.0} pts/s   w4 {:>12.0} pts/s   w8 {:>12.0} pts/s   w8/scalar {:.2}x",
                point.scalar_pts_per_sec,
                point.w4_pts_per_sec,
                point.w8_pts_per_sec,
                point.w8_speedup_vs_scalar
            );
            points.push(point);
        }
    }

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let _ = write!(
            rows,
            "\n    {{\"n\":{},\"d\":{},\"resolution\":{},\"hoisted_seconds\":{:.6},\"naive_seconds\":{:.6},\"points_per_sec\":{:.1},\"speedup_vs_naive\":{:.3},\
             \"prep_seconds\":{:.6},\
             \"lanes\":{{\"scalar_pts_per_sec\":{:.1},\"w4_pts_per_sec\":{:.1},\"w8_pts_per_sec\":{:.1},\"w8_speedup_vs_scalar\":{:.3}}}}}{sep}",
            p.n,
            p.d,
            p.resolution,
            p.hoisted_seconds,
            p.naive_seconds,
            p.points_per_sec,
            p.speedup,
            p.prep_seconds,
            p.scalar_pts_per_sec,
            p.w4_pts_per_sec,
            p.w8_pts_per_sec,
            p.w8_speedup_vs_scalar
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"landscape_scan\",\n  \"iters\": {iters},\n  \"gamma_range\": \"[-pi/2, pi/2]\",\n  \
         \"beta_range\": \"[-pi/4, pi/4]\",\n  \"points\": [{rows}\n  ],\n  \
         \"note\": \"all variants asserted bit-identical to the naive scan before timing; hoisted_seconds includes model preparation (historical series); the lanes dimension times the scan over an existing PreparedP1 (preparation is amortized across scan+refinement+terms in production, reported as prep_seconds) and is single-threaded to isolate the lane-kernel win\"\n}}\n"
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_landscape.json");
    std::fs::write(&path, &json).expect("can write BENCH_landscape.json");
    println!("  -> wrote {}", path.display());
}
