//! Landscape-scan benchmark: the `(γ, β)` grid evaluation that seeds
//! every parameter optimization, timed through the hoisted fast path —
//! the perf-regression harness behind `BENCH_landscape.json`.
//!
//! `optimize_parameters` evaluates a `resolution²` grid of the p = 1
//! analytic expectation per sub-problem. PR 3 added two layered
//! optimizations: `PreparedP1` gathers the model's coupling structure
//! once (every evaluation thereafter is `O(Σ deg)` and allocation-free),
//! and `grid_scan_2d_hoisted` additionally hoists all γ-only
//! trigonometry out of each β row. This bench times the hoisted scan
//! against the naive per-point `expectation_p1` path on the same models
//! and asserts the values are **bit-identical** — the speedup must stay
//! a pure evaluation-strategy win, never a numerics change.
//!
//! Knobs:
//! * `FQ_BENCH_LANDSCAPE_N` — largest model size (default 96).
//! * `FQ_BENCH_ITERS` — timed iterations per point (default 3; the
//!   minimum is reported).
//!
//! The JSON lands at the workspace root as `BENCH_landscape.json`.

use std::fmt::Write as _;
use std::time::Instant;

use fq_bench::harness::fmt_time;
use fq_graphs::{gen, to_ising_pm1};
use fq_ising::IsingModel;
use fq_optim::{grid_scan_2d, grid_scan_2d_hoisted, GridScan};
use fq_sim::analytic::{expectation_p1, PreparedP1};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn ba_model(n: usize, d: usize, seed: u64) -> IsingModel {
    to_ising_pm1(&gen::barabasi_albert(n, d, seed).unwrap(), seed)
}

const GAMMA: (f64, f64) = (-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
const BETA: (f64, f64) = (-std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4);

fn hoisted_scan(model: &IsingModel, resolution: usize) -> GridScan {
    let prepared = PreparedP1::new(model);
    grid_scan_2d_hoisted(
        |g| prepared.row(g),
        |row, b| row.at(b),
        GAMMA,
        BETA,
        resolution,
    )
}

fn naive_scan(model: &IsingModel, resolution: usize) -> GridScan {
    grid_scan_2d(
        |g, b| expectation_p1(model, g, b).expect("well-formed model"),
        GAMMA,
        BETA,
        resolution,
    )
}

struct Point {
    n: usize,
    d: usize,
    resolution: usize,
    hoisted_seconds: f64,
    naive_seconds: f64,
    points_per_sec: f64,
    speedup: f64,
}

fn main() {
    let max_n = env_usize("FQ_BENCH_LANDSCAPE_N", 96);
    let iters = env_usize("FQ_BENCH_ITERS", 3).max(1);
    let sizes: Vec<(usize, usize)> = [(24usize, 1usize), (48, 2), (96, 3)]
        .into_iter()
        .filter(|&(n, _)| n <= max_n)
        .collect();
    let resolutions = [41usize, 81];

    println!("== landscape scan: hoisted (γ, β) grid evaluation ==");
    println!("sizes: {sizes:?}   resolutions: {resolutions:?}   iters: {iters}");

    let mut points = Vec::new();
    for &(n, d) in &sizes {
        let model = ba_model(n, d, 11);
        for &resolution in &resolutions {
            // Correctness first: the hoisted path must be bit-identical
            // to evaluating expectation_p1 per grid point.
            let hoisted = hoisted_scan(&model, resolution);
            let naive = naive_scan(&model, resolution);
            assert_eq!(hoisted.best_index, naive.best_index);
            assert_eq!(hoisted.values, naive.values, "hoisting changed numerics");

            let mut hoisted_best = f64::INFINITY;
            let mut naive_best = f64::INFINITY;
            for _ in 0..iters {
                let t0 = Instant::now();
                let scan = hoisted_scan(&model, resolution);
                hoisted_best = hoisted_best.min(t0.elapsed().as_secs_f64());
                std::hint::black_box(scan);

                let t0 = Instant::now();
                let scan = naive_scan(&model, resolution);
                naive_best = naive_best.min(t0.elapsed().as_secs_f64());
                std::hint::black_box(scan);
            }
            let grid_points = (resolution * resolution) as f64;
            let point = Point {
                n,
                d,
                resolution,
                hoisted_seconds: hoisted_best,
                naive_seconds: naive_best,
                points_per_sec: grid_points / hoisted_best,
                speedup: naive_best / hoisted_best,
            };
            println!(
                "n={n:<4} d_BA={d} res={resolution:<4} hoisted {:>10}   naive {:>10}   {:>12.0} pts/s   speedup {:.2}x",
                fmt_time(point.hoisted_seconds),
                fmt_time(point.naive_seconds),
                point.points_per_sec,
                point.speedup
            );
            points.push(point);
        }
    }

    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let _ = write!(
            rows,
            "\n    {{\"n\":{},\"d\":{},\"resolution\":{},\"hoisted_seconds\":{:.6},\"naive_seconds\":{:.6},\"points_per_sec\":{:.1},\"speedup_vs_naive\":{:.3}}}{sep}",
            p.n, p.d, p.resolution, p.hoisted_seconds, p.naive_seconds, p.points_per_sec, p.speedup
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"landscape_scan\",\n  \"iters\": {iters},\n  \"gamma_range\": \"[-pi/2, pi/2]\",\n  \
         \"beta_range\": \"[-pi/4, pi/4]\",\n  \"points\": [{rows}\n  ],\n  \
         \"note\": \"hoisted and naive scans are asserted bit-identical before timing\"\n}}\n"
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_landscape.json");
    std::fs::write(&path, &json).expect("can write BENCH_landscape.json");
    println!("  -> wrote {}", path.display());
}
