//! Regenerates the corresponding table/figure; see `fq_bench::figures`.
fn main() {
    fq_bench::figures::fig07_cnot_depth();
}
