//! Ablation: is it really the *hotspot* choice that saves CNOTs, or would
//! freezing any qubit do? Compares the MaxDegree policy (the paper's)
//! against MaxAbsCoupling and Random over the BA(d=1) suite.

use fq_bench::{ba_instance, fmt, frozen_summary, write_csv, ARG_SIZES};
use fq_transpile::{compile_invocations, Device};
use frozenqubits::{FrozenQubitsConfig, HotspotStrategy};

fn main() {
    println!("== Ablation: hotspot-selection policy (FQ m=1, IBM-Montreal) ==");
    let device = Device::ibm_montreal();
    let compiles_before = compile_invocations();
    let mut runs = 0u64;
    type Policy = (&'static str, fn(u64) -> HotspotStrategy);
    let policies: [Policy; 3] = [
        ("max-degree", |_| HotspotStrategy::MaxDegree),
        ("max-|J|", |_| HotspotStrategy::MaxAbsCoupling),
        ("random", HotspotStrategy::Random),
    ];
    println!(
        "{:>4} | {:>12} {:>12} {:>12} | {:>10} {:>10} {:>10}",
        "N", "ARG maxdeg", "ARG max|J|", "ARG random", "CX maxdeg", "CX max|J|", "CX random"
    );
    let mut rows = Vec::new();
    for &n in &ARG_SIZES {
        let mut arg = [0.0f64; 3];
        let mut cx = [0.0f64; 3];
        let seeds = 3u64;
        for seed in 0..seeds {
            let model = ba_instance(n, 1, seed.wrapping_mul(41).wrapping_add(n as u64));
            for (k, (_, make)) in policies.iter().enumerate() {
                let cfg = FrozenQubitsConfig {
                    hotspots: make(seed),
                    ..FrozenQubitsConfig::default()
                };
                let (s, _) = frozen_summary(&model, &device, &cfg);
                runs += 1;
                arg[k] += s.arg / seeds as f64;
                cx[k] += s.metrics.compiled_cnots as f64 / seeds as f64;
            }
        }
        println!(
            "{n:>4} | {:>12} {:>12} {:>12} | {:>10} {:>10} {:>10}",
            fmt(arg[0]),
            fmt(arg[1]),
            fmt(arg[2]),
            fmt(cx[0]),
            fmt(cx[1]),
            fmt(cx[2])
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.4}", arg[0]),
            format!("{:.4}", arg[1]),
            format!("{:.4}", arg[2]),
            format!("{:.1}", cx[0]),
            format!("{:.1}", cx[1]),
            format!("{:.1}", cx[2]),
        ]);
    }
    write_csv(
        "ablation_hotspot.csv",
        "n,arg_maxdeg,arg_maxabsj,arg_random,cx_maxdeg,cx_maxabsj,cx_random",
        &rows,
    );
    println!("(max-degree should dominate random, especially at larger N)");
    println!(
        "plan/execute amortization: {runs} runs used {} compiles (one template each)",
        compile_invocations() - compiles_before
    );
}
