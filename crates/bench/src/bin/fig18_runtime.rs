//! Regenerates the corresponding figure; see `fq_bench::scale`.
fn main() {
    fq_bench::scale::fig18_runtime();
}
