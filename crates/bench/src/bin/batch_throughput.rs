//! Batch-engine throughput benchmark: the perf-regression harness behind
//! `BENCH_batch.json`.
//!
//! Builds a mixed multi-family batch of frozen-QAOA jobs, runs it through
//! the flattened jobs×branches `BatchRunner` at 1, 2 and `auto` worker
//! threads (each run on a cold template cache so every configuration pays
//! the same compile bill), verifies the outputs are bit-identical across
//! thread counts, and reports jobs/sec, templates compiled and the
//! speedup over the sequential (1-thread) run.
//!
//! It then measures **cold vs. warm start** through a disk-spill store:
//! one runner populates a fresh `--cache-dir`-style directory, a second
//! "restarted" runner replays the batch from it — asserting zero new
//! `compile_invocations()` and byte-identical results — quantifying
//! exactly what disk warm-start saves.
//!
//! Knobs:
//! * `FQ_BENCH_JOBS` — job count (default 96; CI smoke uses a small
//!   value).
//! * `FQ_BENCH_ITERS` — timed iterations per thread count (default 3;
//!   the minimum is reported, standard practice for throughput numbers).
//!
//! The JSON lands at the workspace root as `BENCH_batch.json`, where the
//! perf trajectory across PRs accumulates (machine-readable, append-style
//! via version control history rather than in-file concatenation).

use std::fmt::Write as _;
use std::time::Instant;

use fq_bench::harness::fmt_time;
use frozenqubits::api::{BatchRunner, JobSpec};
use frozenqubits::{auto_threads, FqError, JobResult, QosTier};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A mixed batch cycling the job-family templates of the
/// `bench-batch` scenario suite (`suites/bench-batch.json`, the single
/// source of these families) with per-job pipeline seeds: most jobs
/// are small multi-branch sweep members (the service workload the
/// engine targets), a slice are full compare reports.
fn batch(jobs: usize) -> Vec<JobSpec> {
    batch_tiered(jobs, QosTier::Exact)
}

/// The same mixed batch with every job pinned to one QoS tier — the
/// corpus the per-tier throughput section compares across tiers.
fn batch_tiered(jobs: usize, tier: QosTier) -> Vec<JobSpec> {
    let suite = fq_suite::Suite::load(&fq_suite::corpus_dir(), "bench-batch")
        .expect("bench-batch suite in the corpus");
    let families = &suite.scenarios;
    (0..jobs)
        .map(|i| {
            let mut scenario = families[i % families.len()].clone();
            scenario.seed = i as u64;
            scenario.tier = tier;
            scenario.to_spec().expect("valid bench spec")
        })
        .collect()
}

struct Point {
    threads: usize,
    seconds: f64,
    jobs_per_sec: f64,
    speedup: f64,
}

fn main() {
    let jobs = env_usize("FQ_BENCH_JOBS", 96);
    let iters = env_usize("FQ_BENCH_ITERS", 3).max(1);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let auto = auto_threads();
    let specs = batch(jobs);

    // Branch items the flattened pool sees (compare jobs contribute both
    // passes' branches).
    println!("== batch throughput: flattened jobs×branches engine ==");
    println!("jobs: {jobs}   cores: {cores}   auto threads: {auto}   iters: {iters}");

    let mut thread_counts = vec![1usize, 2];
    if auto > 2 {
        thread_counts.push(auto);
    }

    let mut reference: Option<Vec<Result<JobResult, FqError>>> = None;
    let mut templates = 0usize;
    let mut points: Vec<Point> = Vec::new();
    let mut seq_seconds = 0.0f64;
    for &threads in &thread_counts {
        // Each timed run uses a fresh runner: a cold cache per iteration
        // keeps every thread count paying an identical compile bill.
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let runner = BatchRunner::new().with_threads(threads);
            let t0 = Instant::now();
            let results = runner.run(&specs);
            let dt = t0.elapsed().as_secs_f64();
            best = best.min(dt);
            templates = runner.templates_compiled();
            match &reference {
                None => reference = Some(results),
                Some(reference) => {
                    // The engine's core guarantee: scheduling never leaks
                    // into results.
                    assert_eq!(
                        reference.len(),
                        results.len(),
                        "thread count changed batch shape"
                    );
                    for (r, s) in reference.iter().zip(&results) {
                        assert_eq!(
                            r.as_ref().unwrap(),
                            s.as_ref().unwrap(),
                            "{threads}-thread run diverged from sequential"
                        );
                    }
                }
            }
        }
        if threads == 1 {
            seq_seconds = best;
        }
        points.push(Point {
            threads,
            seconds: best,
            jobs_per_sec: jobs as f64 / best,
            speedup: seq_seconds / best,
        });
        let p = points.last().expect("just pushed");
        println!(
            "threads={threads:<3} {:>12} / batch   {:>9.1} jobs/s   speedup {:.2}x",
            fmt_time(p.seconds),
            p.jobs_per_sec,
            p.speedup
        );
    }
    println!("templates compiled per cold run: {templates}");

    // — Cold vs. warm start through a disk-spill store: what does a
    // restart cost with and without `--cache-dir`?
    let cache_dir = std::env::temp_dir().join(format!("fq-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold_runner = BatchRunner::new()
        .with_cache_dir(&cache_dir)
        .expect("temp cache dir");
    let t0 = Instant::now();
    let cold_results = cold_runner.run(&specs);
    let cold_seconds = t0.elapsed().as_secs_f64();

    let warm_runner = BatchRunner::new()
        .with_cache_dir(&cache_dir)
        .expect("temp cache dir");
    let before = fq_transpile::compile_invocations();
    let t0 = Instant::now();
    let warm_results = warm_runner.run(&specs);
    let warm_seconds = t0.elapsed().as_secs_f64();
    let warm_compiles = fq_transpile::compile_invocations() - before;
    assert_eq!(
        warm_compiles, 0,
        "the restarted runner must serve every template from disk"
    );
    for (c, w) in cold_results.iter().zip(&warm_results) {
        assert_eq!(
            c.as_ref().unwrap(),
            w.as_ref().unwrap(),
            "warm results diverged from cold"
        );
    }
    let warm_speedup = cold_seconds / warm_seconds;
    println!(
        "warm start: cold {:>10}   warm {:>10}   speedup {warm_speedup:.2}x   (0 compiles on the warm run)",
        fmt_time(cold_seconds),
        fmt_time(warm_seconds)
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    // — QoS tiers: the accuracy/speed contract measured on the same
    // corpus. Warm cache (tiers share compiled templates) and a single
    // worker, so the ratio isolates per-job compute, not compile or
    // scheduling effects.
    println!("== QoS tiers (warm cache, 1 thread) ==");
    let mut tier_rows = String::new();
    let mut exact_seconds = f64::NAN;
    for (i, &tier) in QosTier::ALL.iter().enumerate() {
        let specs_t = batch_tiered(jobs, tier);
        let runner = BatchRunner::new().with_threads(1);
        let warmup = runner.run(&specs_t);
        assert!(
            warmup.iter().all(Result::is_ok),
            "{} batch runs",
            tier.name()
        );
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t0 = Instant::now();
            let results = runner.run(&specs_t);
            let dt = t0.elapsed().as_secs_f64();
            best = best.min(dt);
            assert_eq!(results.len(), jobs);
        }
        if tier == QosTier::Exact {
            exact_seconds = best;
        }
        let tier_speedup = exact_seconds / best;
        println!(
            "tier={:<9} {:>12} / batch   {:>9.1} jobs/s   speedup vs exact {:.2}x",
            tier.name(),
            fmt_time(best),
            jobs as f64 / best,
            tier_speedup
        );
        let sep = if i + 1 < QosTier::ALL.len() { "," } else { "" };
        let _ = write!(
            tier_rows,
            "\n    {{\"tier\":\"{}\",\"seconds\":{:.6},\"jobs_per_sec\":{:.3},\"speedup_vs_exact\":{:.3}}}{sep}",
            tier.name(),
            best,
            jobs as f64 / best,
            tier_speedup
        );
    }

    let max_speedup = points.iter().map(|p| p.speedup).fold(0.0f64, f64::max);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        let _ = write!(
            rows,
            "\n    {{\"threads\":{},\"seconds\":{:.6},\"jobs_per_sec\":{:.3},\"speedup_vs_sequential\":{:.3}}}{sep}",
            p.threads, p.seconds, p.jobs_per_sec, p.speedup
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"batch_throughput\",\n  \"jobs\": {jobs},\n  \"iters\": {iters},\n  \
         \"cores\": {cores},\n  \"templates_compiled\": {templates},\n  \
         \"max_speedup_vs_sequential\": {max_speedup:.3},\n  \"points\": [{rows}\n  ],\n  \
         \"tiers\": [{tier_rows}\n  ],\n  \
         \"warm_start\": {{\"cold_seconds\":{cold_seconds:.6},\"warm_seconds\":{warm_seconds:.6},\
         \"speedup\":{warm_speedup:.3},\"warm_compiles\":0}},\n  \
         \"note\": \"speedup scales with available cores; a single-core runner reports ~1.0\"\n}}\n"
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_batch.json");
    std::fs::write(&path, &json).expect("can write BENCH_batch.json");
    println!("  -> wrote {}", path.display());
}
