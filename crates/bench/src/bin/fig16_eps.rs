//! Regenerates the corresponding figure; see `fq_bench::scale`.
fn main() {
    fq_bench::scale::fig15_16_scale();
}
