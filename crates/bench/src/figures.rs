//! Regeneration of the paper's small-scale figures (Figs. 1b–13, Table 3).
//!
//! Each function prints the same rows/series the paper reports and writes
//! a CSV under `results/`. Absolute values depend on the synthetic
//! calibration; the *shapes* (who wins, by what factor, where the
//! crossovers fall) are the reproduction targets recorded in
//! `EXPERIMENTS.md`.

use fq_circuit::build_qaoa_circuit;
use fq_cutqc::plan_cut;
use fq_graphs::airports::default_airport_network;
use fq_graphs::{gen, powerlaw};
use fq_ising::solve::exact_solve;
use fq_ising::IsingModel;
use fq_optim::grid_scan_2d;
use fq_sim::analytic::term_expectations_p1;
use fq_sim::noisy_expectation_lightcone;
use fq_transpile::{compile, CompileOptions, Device, Topology};
use frozenqubits::{
    metrics::approximation_ratio, partition_problem, select_hotspots, FrozenQubitsConfig,
    HotspotStrategy,
};

use crate::{
    ba_instance, baseline_summary, fmt, frozen_summary, gmean, regular3_instance, sk_instance,
    write_csv, ARG_SIZES, SEEDS_PER_SIZE,
};

/// Fig. 1(b): degree statistics of the (synthetic) airport network.
pub fn fig01b_powerlaw() {
    println!("== Fig 1(b): airport-network degree distribution ==");
    let g = default_airport_network(7).expect("default parameters are valid");
    let stats = powerlaw::degree_stats(&g);
    println!(
        "airports {}  mean degree {:.2}  max {}  hub/avg {:.1}x  alpha {:.2}  gini {:.2}",
        g.num_nodes(),
        stats.mean,
        stats.max,
        stats.hotspot_ratio,
        stats.alpha_mle.unwrap_or(f64::NAN),
        stats.gini
    );
    let hist = powerlaw::degree_histogram(&g);
    let rows: Vec<Vec<String>> = hist
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(d, &c)| vec![d.to_string(), c.to_string()])
        .collect();
    write_csv("fig01b_degree_histogram.csv", "degree,count", &rows);
}

/// Fig. 3: pre- vs post-compilation CNOT counts for fully-connected QAOA
/// graphs on a grid architecture.
pub fn fig03_swap_overhead(sizes: &[usize]) {
    println!("== Fig 3: SWAP blow-up on fully-connected graphs (grid) ==");
    println!(
        "{:>4} | {:>10} | {:>10} | {:>6}",
        "N", "pre-CX", "post-CX", "ratio"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let model = sk_instance(n, 1);
        let qc = build_qaoa_circuit(&model, 1).expect("p=1");
        let side = (n as f64).sqrt().ceil() as usize;
        let topo = Topology::grid(side, side).expect("valid grid");
        let device = Device::ideal("grid", topo);
        let compiled = compile(&qc, &device, CompileOptions::level3()).expect("compiles");
        let pre = qc.cnot_count();
        let post = compiled.stats.cnot_count;
        println!(
            "{n:>4} | {pre:>10} | {post:>10} | {:>6.2}",
            post as f64 / pre as f64
        );
        rows.push(vec![n.to_string(), pre.to_string(), post.to_string()]);
    }
    write_csv("fig03_swap_overhead.csv", "n,pre_cx,post_cx", &rows);
}

/// Fig. 6: statistics of the five benchmark graph families.
pub fn fig06_graph_families() {
    println!("== Fig 6: benchmark graph families (n = 16) ==");
    let samples: Vec<(&str, fq_graphs::Graph)> = vec![
        (
            "3-regular",
            gen::random_regular(16, 3, 0).expect("feasible"),
        ),
        ("SK", gen::complete(16)),
        ("BA d=1", gen::barabasi_albert(16, 1, 0).expect("feasible")),
        ("BA d=2", gen::barabasi_albert(16, 2, 0).expect("feasible")),
        ("BA d=3", gen::barabasi_albert(16, 3, 0).expect("feasible")),
    ];
    let mut rows = Vec::new();
    println!(
        "{:<10} | {:>6} | {:>9} | {:>8} | {:>5}",
        "family", "edges", "max deg", "mean", "gini"
    );
    for (name, g) in samples {
        let s = powerlaw::degree_stats(&g);
        println!(
            "{name:<10} | {:>6} | {:>9} | {:>8.2} | {:>5.2}",
            g.num_edges(),
            s.max,
            s.mean,
            s.gini
        );
        rows.push(vec![
            name.into(),
            g.num_edges().to_string(),
            s.max.to_string(),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.gini),
        ]);
    }
    write_csv(
        "fig06_families.csv",
        "family,edges,max_degree,mean_degree,gini",
        &rows,
    );
}

/// One ARG/metrics sweep: baseline vs FQ(m=1) vs FQ(m=2) over sizes, with
/// `SEEDS_PER_SIZE` instances per size.
fn arg_sweep(
    title: &str,
    csv: &str,
    sizes: &[usize],
    device: &Device,
    make: impl Fn(usize, u64) -> IsingModel,
) {
    println!("== {title} (device {}) ==", device.name());
    println!(
        "{:>4} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "N", "ARG base", "ARG m=1", "ARG m=2", "CX base", "CX m=1", "CX m=2", "imp m=1", "imp m=2"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut acc = [Vec::new(), Vec::new(), Vec::new()];
        let mut cx = [Vec::new(), Vec::new(), Vec::new()];
        let mut depth = [Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..SEEDS_PER_SIZE {
            let model = make(n, seed.wrapping_mul(7919).wrapping_add(n as u64));
            let cfg = FrozenQubitsConfig::default();
            let base = baseline_summary(&model, device, &cfg);
            acc[0].push(base.arg.max(1e-6));
            cx[0].push(base.metrics.compiled_cnots as f64);
            depth[0].push(base.metrics.depth as f64);
            for m in 1..=2usize {
                if m >= n {
                    continue;
                }
                let cfg = FrozenQubitsConfig::with_frozen(m);
                let (s, _) = frozen_summary(&model, device, &cfg);
                acc[m].push(s.arg.max(1e-6));
                cx[m].push(s.metrics.compiled_cnots as f64);
                depth[m].push(s.metrics.depth as f64);
            }
        }
        let mean = |v: &Vec<f64>| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let (a0, a1, a2) = (mean(&acc[0]), mean(&acc[1]), mean(&acc[2]));
        let (c0, c1, c2) = (mean(&cx[0]), mean(&cx[1]), mean(&cx[2]));
        let (d0, d1, d2) = (mean(&depth[0]), mean(&depth[1]), mean(&depth[2]));
        println!(
            "{n:>4} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
            fmt(a0),
            fmt(a1),
            fmt(a2),
            fmt(c0),
            fmt(c1),
            fmt(c2),
            fmt(a0 / a1),
            fmt(a0 / a2)
        );
        rows.push(vec![
            n.to_string(),
            format!("{a0:.4}"),
            format!("{a1:.4}"),
            format!("{a2:.4}"),
            format!("{c0:.1}"),
            format!("{c1:.1}"),
            format!("{c2:.1}"),
            format!("{d0:.1}"),
            format!("{d1:.1}"),
            format!("{d2:.1}"),
        ]);
    }
    write_csv(
        csv,
        "n,arg_base,arg_m1,arg_m2,cx_base,cx_m1,cx_m2,depth_base,depth_m1,depth_m2",
        &rows,
    );
}

/// Fig. 7: CNOT counts and depth, baseline vs FQ(m=1,2), BA d=1 on
/// IBM-Montreal (the data is shared with Fig. 8's CSV).
pub fn fig07_cnot_depth() {
    arg_sweep(
        "Fig 7+8: BA d=1 CNOT/depth/ARG",
        "fig07_08_ba1.csv",
        &ARG_SIZES,
        &Device::ibm_montreal(),
        |n, seed| ba_instance(n, 1, seed),
    );
}

/// Fig. 8 shares its sweep with Fig. 7.
pub fn fig08_arg_ba1() {
    fig07_cnot_depth();
}

/// Fig. 9: fidelity-vs-cost trade-off, m = 1..10 on 24-qubit BA graphs.
pub fn fig09_tradeoff() {
    println!("== Fig 9: quantum cost vs relative ARG / features (N = 24) ==");
    let device = Device::ibm_montreal();
    let mut rows = Vec::new();
    for d in 1..=3usize {
        let model = ba_instance(24, d, 9);
        let cfg = FrozenQubitsConfig::default();
        let base = baseline_summary(&model, &device, &cfg);
        println!(
            "d_BA = {d}: baseline ARG {:.2}, CX {}",
            base.arg, base.metrics.compiled_cnots
        );
        println!(
            "{:>3} | {:>5} | {:>8} | {:>7} | {:>9}",
            "m", "cost", "rel ARG", "rel CX", "rel depth"
        );
        for m in 1..=10usize {
            let cfg = FrozenQubitsConfig::with_frozen(m);
            let (s, _) = frozen_summary(&model, &device, &cfg);
            let rel_arg = s.arg / base.arg;
            let rel_cx = s.metrics.compiled_cnots as f64 / base.metrics.compiled_cnots as f64;
            let rel_depth = s.metrics.depth as f64 / base.metrics.depth as f64;
            println!(
                "{m:>3} | {:>4}x | {rel_arg:>8.3} | {rel_cx:>7.3} | {rel_depth:>9.3}",
                s.circuits_executed * 2
            );
            rows.push(vec![
                d.to_string(),
                m.to_string(),
                (s.circuits_executed * 2).to_string(),
                format!("{rel_arg:.4}"),
                format!("{rel_cx:.4}"),
                format!("{rel_depth:.4}"),
            ]);
        }
    }
    write_csv(
        "fig09_tradeoff.csv",
        "d_ba,m,quantum_cost,rel_arg,rel_cx,rel_depth",
        &rows,
    );
}

/// Fig. 10: ARG on dense BA graphs (d = 2, 3).
pub fn fig10_arg_dense() {
    for d in [2usize, 3] {
        arg_sweep(
            &format!("Fig 10: BA d={d} ARG"),
            &format!("fig10_ba{d}.csv"),
            &ARG_SIZES,
            &Device::ibm_montreal(),
            move |n, seed| {
                let n = n.max(d + 1);
                ba_instance(n, d, seed)
            },
        );
    }
}

/// Fig. 11: ARG on 3-regular and SK graphs.
pub fn fig11_arg_regular() {
    arg_sweep(
        "Fig 11(a): 3-regular ARG",
        "fig11_regular3.csv",
        &ARG_SIZES,
        &Device::ibm_montreal(),
        |n, seed| regular3_instance(n.max(4), seed),
    );
    arg_sweep(
        "Fig 11(b): SK-model ARG",
        "fig11_sk.csv",
        &[4, 6, 8, 10, 12],
        &Device::ibm_montreal(),
        sk_instance,
    );
}

/// Fig. 12: the 50×50 `(γ, β)` AR landscape for baseline/FQ(1)/FQ(2) on a
/// 20-qubit BA graph (IBM-Auckland).
pub fn fig12_landscape() {
    println!("== Fig 12: optimization landscape sharpness (20-qubit BA, Auckland) ==");
    let device = Device::ibm_auckland();
    let parent = ba_instance(20, 1, 12);
    let schemes: Vec<(String, IsingModel)> = {
        let mut v = vec![("baseline".to_string(), parent.clone())];
        for m in 1..=2usize {
            let hotspots =
                select_hotspots(&parent, m, &HotspotStrategy::MaxDegree).expect("valid m");
            let plan = partition_problem(&parent, &hotspots, true).expect("valid plan");
            v.push((format!("fq_m{m}"), plan.executed[0].problem.model().clone()));
        }
        v
    };
    let mut rows = Vec::new();
    for (name, model) in schemes {
        let c_min = exact_solve(&model).expect("small model").energy;
        let qc = build_qaoa_circuit(&model, 1).expect("p=1");
        let compiled = compile(&qc, &device, CompileOptions::level3()).expect("compiles");
        let scan = grid_scan_2d(
            |g, b| {
                let (z, zz) = term_expectations_p1(&model, g, b).expect("valid model");
                let ev = noisy_expectation_lightcone(&model, &z, &zz, &compiled, &device)
                    .expect("valid terms");
                -approximation_ratio(ev, c_min)
            },
            (-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
            (-std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4),
            50,
        );
        println!(
            "{name:<9} best AR {:>6.3}  contrast {:>6.3}",
            -scan.best_value(),
            scan.contrast()
        );
        rows.push(vec![
            name.clone(),
            format!("{:.5}", -scan.best_value()),
            format!("{:.5}", scan.contrast()),
        ]);
        let grid_rows: Vec<Vec<String>> = scan
            .gammas
            .iter()
            .enumerate()
            .flat_map(|(i, &g)| {
                let scan = &scan;
                scan.betas.iter().enumerate().map(move |(j, &b)| {
                    vec![
                        format!("{g:.5}"),
                        format!("{b:.5}"),
                        format!("{:.6}", -scan.values[i][j]),
                    ]
                })
            })
            .collect();
        write_csv(
            &format!("fig12_landscape_{name}.csv"),
            "gamma,beta,ar",
            &grid_rows,
        );
    }
    write_csv("fig12_summary.csv", "scheme,best_ar,contrast", &rows);
}

/// Fig. 13: ARG improvement per machine, with the GMEAN bar.
pub fn fig13_machines() {
    println!("== Fig 13: ARG improvement across the 8 IBMQ machines ==");
    let sizes = [8usize, 12, 16, 20];
    let mut rows = Vec::new();
    let mut gmeans = (Vec::new(), Vec::new());
    println!("{:<16} | {:>8} | {:>8}", "machine", "FQ(m=1)", "FQ(m=2)");
    for device in Device::all_ibm_machines() {
        let mut imp = (Vec::new(), Vec::new());
        for &n in &sizes {
            for seed in 0..SEEDS_PER_SIZE {
                let model = ba_instance(n, 1, seed.wrapping_mul(131).wrapping_add(n as u64));
                let cfg = FrozenQubitsConfig::default();
                let base = baseline_summary(&model, &device, &cfg);
                for (k, m) in [1usize, 2].into_iter().enumerate() {
                    let cfg = FrozenQubitsConfig::with_frozen(m);
                    let (s, _) = frozen_summary(&model, &device, &cfg);
                    let factor = (base.arg.max(1e-6)) / (s.arg.max(1e-6));
                    if k == 0 {
                        imp.0.push(factor);
                    } else {
                        imp.1.push(factor);
                    }
                }
            }
        }
        let (g1, g2) = (gmean(&imp.0), gmean(&imp.1));
        println!("{:<16} | {:>8.2} | {:>8.2}", device.name(), g1, g2);
        rows.push(vec![
            device.name().to_string(),
            format!("{g1:.4}"),
            format!("{g2:.4}"),
        ]);
        gmeans.0.push(g1);
        gmeans.1.push(g2);
    }
    let (t1, t2) = (gmean(&gmeans.0), gmean(&gmeans.1));
    println!("{:<16} | {:>8.2} | {:>8.2}", "GMEAN", t1, t2);
    rows.push(vec!["GMEAN".into(), format!("{t1:.4}"), format!("{t2:.4}")]);
    write_csv(
        "fig13_machines.csv",
        "machine,improvement_m1,improvement_m2",
        &rows,
    );
}

/// Table 3: FrozenQubits vs CutQC overheads on representative instances.
pub fn table3_cutqc() {
    println!("== Table 3: FrozenQubits vs CutQC ==");
    println!(
        "{:>4} | {:>6} | {:>12} | {:>12} | {:>10} | {:>12}",
        "N", "cuts", "cutqc circs", "cutqc pp", "fq circs", "fq pp"
    );
    let mut rows = Vec::new();
    for &n in &[12usize, 16, 20, 24] {
        let model = ba_instance(n, 1, 3);
        let plan = plan_cut(&model, n / 2).expect("feasible cut");
        let cost = plan.cost();
        let hotspots = select_hotspots(&model, 2, &HotspotStrategy::MaxDegree).expect("m=2");
        let fq = partition_problem(&model, &hotspots, true).expect("valid plan");
        // FrozenQubits post-processing: a linear merge of the sub-problem
        // optima (§3.6) — polynomial, shown as outcome count.
        let fq_pp = fq.total_subspaces();
        println!(
            "{n:>4} | {:>6} | {:>12.0} | 4^{:<9} | {:>10} | {:>12}",
            cost.num_cuts,
            cost.quantum_circuit_count,
            cost.num_cuts,
            fq.quantum_cost(),
            fq_pp
        );
        rows.push(vec![
            n.to_string(),
            cost.num_cuts.to_string(),
            format!("{:.0}", cost.quantum_circuit_count),
            format!("{:.1}", cost.postprocessing_terms_log2),
            fq.quantum_cost().to_string(),
            fq_pp.to_string(),
        ]);
    }
    write_csv(
        "table3_cutqc.csv",
        "n,cuts,cutqc_circuits,cutqc_pp_log2,fq_circuits,fq_pp_outcomes",
        &rows,
    );
}
