//! The single source of benchmark-model construction.
//!
//! Every problem family the workspace exercises — the paper's
//! Barabási–Albert instances, random-regular graphs, the power-law
//! airport network with its Max-Cut slice, the portfolio QUBO, and the
//! adversarial shapes — is built **here**, and only here. The scenario
//! corpus ([`crate::scenario`]), the `fq-bench` binaries and the
//! workspace examples all call these constructors, so "the model fig 17
//! compiles" and "the model scenario `ba-n16-d1` runs" can never drift
//! apart. Equality between these functions and the legacy ad-hoc
//! constructions they replaced is pinned in
//! `crates/suite/tests/model_migration.rs`.
//!
//! Everything is a pure function of its arguments (all randomness flows
//! through seeded [`StdRng`]s), which is what lets a corpus entry
//! fingerprint identically across processes and machines.

use fq_graphs::airports::synthetic_airport_network;
use fq_graphs::{gen, to_ising_pm1, Graph};
use fq_ising::maxcut::maxcut_to_ising;
use fq_ising::{IsingModel, Qubo};
use frozenqubits::FqError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A weighted edge list `(a, b, w)` — the Max-Cut constructors return
/// one alongside the Ising model for cut-value accounting.
pub type WeightedEdges = Vec<(usize, usize, f64)>;

/// A Barabási–Albert instance of §4.1: `d`-preferential attachment,
/// ±1 edge weights drawn from `seed`, zero node weights.
///
/// # Errors
///
/// Propagates graph-generation errors for infeasible `(n, d)`.
pub fn ba_pm1(n: usize, d: usize, seed: u64) -> Result<IsingModel, FqError> {
    Ok(to_ising_pm1(&gen::barabasi_albert(n, d, seed)?, seed))
}

/// A random `degree`-regular instance with ±1 edge weights.
///
/// # Errors
///
/// Propagates graph-generation errors for infeasible sizes (odd
/// `n·degree`).
pub fn regular_pm1(n: usize, degree: usize, seed: u64) -> Result<IsingModel, FqError> {
    Ok(to_ising_pm1(&gen::random_regular(n, degree, seed)?, seed))
}

/// The synthetic power-law airport network of Fig. 1(b).
///
/// # Errors
///
/// Propagates graph-generation errors for infeasible parameters.
pub fn airport_network(n: usize, mean_degree: f64, seed: u64) -> Result<Graph, FqError> {
    Ok(synthetic_airport_network(n, mean_degree, seed)?)
}

/// Restricts a graph to its `k` best-connected nodes (a regional slice
/// of a network small enough for today's devices), renumbering nodes by
/// descending degree.
#[must_use]
pub fn busiest_subnetwork(g: &Graph, k: usize) -> Graph {
    let keep: Vec<usize> = g.nodes_by_degree().into_iter().take(k).collect();
    let mut index = vec![usize::MAX; g.num_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        index[old] = new;
    }
    let mut sub = Graph::new(k);
    for &(a, b) in g.edges() {
        if index[a] != usize::MAX && index[b] != usize::MAX {
            sub.add_edge(index[a], index[b]).expect("simple subgraph");
        }
    }
    sub
}

/// Max-Cut on the `slice` busiest airports of an
/// [`airport_network`]`(airports, mean_degree, seed)`: the motivating
/// workload of Fig. 1(b). Returns the Ising model plus the unit-weight
/// edge list (for cut-value accounting).
///
/// # Errors
///
/// Propagates graph-generation and model-construction errors.
pub fn airport_maxcut(
    airports: usize,
    mean_degree: f64,
    seed: u64,
    slice: usize,
) -> Result<(IsingModel, WeightedEdges), FqError> {
    let network = airport_network(airports, mean_degree, seed)?;
    let sub = busiest_subnetwork(&network, slice);
    let edges: WeightedEdges = sub.edges().iter().map(|&(a, b)| (a, b, 1.0)).collect();
    let model = maxcut_to_ising(slice, &edges)?;
    Ok((model, edges))
}

/// The portfolio-optimization QUBO of Table 1's finance row: pick
/// `budget` of `n` assets maximizing return and minimizing correlated
/// risk, with a quadratic budget penalty of strength `lambda`. Asset 0
/// is the market factor (correlated with everything), so the
/// correlation structure is power-law-ish. The budget penalty yields
/// non-zero linear terms — the pipeline's no-symmetry path, where all
/// `2^m` sub-problems execute.
///
/// # Errors
///
/// Propagates model-construction errors (none for feasible `n`).
pub fn portfolio_qubo(n: usize, budget: usize, lambda: f64, seed: u64) -> Result<Qubo, FqError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let returns: Vec<f64> = (0..n).map(|_| rng.random_range(0.02..0.12)).collect();
    let mut qubo = Qubo::new(n);
    // Objective: minimize −return + risk + λ(Σx − k)².
    for (i, &ri) in returns.iter().enumerate() {
        // −r_i x_i  +  λ(x_i − 2k·x_i)  (from expanding the penalty)
        qubo.set(i, i, -ri + lambda * (1.0 - 2.0 * budget as f64))?;
        for j in (i + 1)..n {
            // Correlated risk: asset 0 is the market factor.
            let sigma = if i == 0 {
                0.08
            } else {
                rng.random_range(0.005..0.03)
            };
            // Penalty cross terms: 2λ x_i x_j.
            qubo.set(i, j, sigma + 2.0 * lambda)?;
        }
    }
    qubo.set_offset(lambda * (budget as f64).powi(2));
    Ok(qubo)
}

/// A fully-connected ±1 instance — the router's worst case (every
/// logical pair interacts, SWAP count explodes) and a dense-coupling
/// stressor for the analytic path.
///
/// # Errors
///
/// Propagates graph-generation errors (none for `n ≥ 1`).
pub fn dense_pm1(n: usize, seed: u64) -> Result<IsingModel, FqError> {
    Ok(to_ising_pm1(&gen::complete(n), seed))
}

/// A unit-weight ring: every coupling identical, so the spectrum is
/// maximally degenerate (rotations and reflections of any ground state
/// are ground states) — adversarial for tie-breaking and for the
/// equal-energy determinism contract.
#[must_use]
pub fn degenerate_ring(n: usize) -> IsingModel {
    fq_graphs::to_ising_unit(&gen::cycle(n))
}

/// A Barabási–Albert instance with every third coupling's weight set to
/// exactly `0.0` — which the model drops, leaving zero-weight gaps:
/// disconnected fragments and isolated nodes that exercise the
/// empty-lightcone and isolated-spin paths end to end.
///
/// # Errors
///
/// Propagates graph-generation errors for infeasible `(n, d)`.
pub fn zero_weight_gaps(n: usize, seed: u64) -> Result<IsingModel, FqError> {
    let mut model = ba_pm1(n, 1, seed)?;
    let victims: Vec<(usize, usize)> = model
        .couplings()
        .enumerate()
        .filter(|(k, _)| k % 3 == 0)
        .map(|(_, ((i, j), _))| (i, j))
        .collect();
    for (i, j) in victims {
        model
            .set_coupling(i, j, 0.0)
            .expect("existing edge indices are in range");
    }
    Ok(model)
}

/// A model with **no** couplings and no linear terms — only a constant
/// offset. The degenerate end of the problem space: every state is
/// optimal, the circuit has no entangling layer, and every branch's
/// expectation is the offset itself.
#[must_use]
pub fn offset_only(n: usize, offset: f64) -> IsingModel {
    let mut model = IsingModel::new(n);
    model.set_offset(offset);
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_deterministic() {
        assert_eq!(ba_pm1(16, 1, 7).unwrap(), ba_pm1(16, 1, 7).unwrap());
        assert_eq!(
            regular_pm1(12, 3, 3).unwrap(),
            regular_pm1(12, 3, 3).unwrap()
        );
        assert_eq!(
            portfolio_qubo(10, 4, 0.35, 11).unwrap().to_ising(),
            portfolio_qubo(10, 4, 0.35, 11).unwrap().to_ising()
        );
        let (a, ea) = airport_maxcut(120, 8.0, 7, 12).unwrap();
        let (b, eb) = airport_maxcut(120, 8.0, 7, 12).unwrap();
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn adversarial_shapes_have_their_advertised_structure() {
        let dense = dense_pm1(8, 1).unwrap();
        assert_eq!(dense.num_couplings(), 8 * 7 / 2, "complete graph");

        let ring = degenerate_ring(10);
        assert_eq!(ring.num_couplings(), 10);
        assert!(ring.couplings().all(|(_, j)| j == 1.0), "fully degenerate");

        let gaps = zero_weight_gaps(14, 2).unwrap();
        let full = ba_pm1(14, 1, 2).unwrap();
        assert!(
            gaps.num_couplings() < full.num_couplings(),
            "zeroed couplings are dropped, leaving gaps"
        );

        let flat = offset_only(6, 2.5);
        assert_eq!(flat.num_couplings(), 0);
        assert_eq!(flat.offset(), 2.5);
        assert!(flat.has_zero_linear_terms());
    }
}
