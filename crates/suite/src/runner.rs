//! Executes a suite and records the results.
//!
//! A [`SuiteRun`] is split into two sections with different contracts:
//!
//! - **`scenarios`** — deterministic. Per scenario: identity
//!   (fingerprints), the canonical result bytes, and quality metrics
//!   derived from them. Two runs of the same corpus — in the same
//!   process, across processes, or against a live shard — must produce
//!   byte-identical scenario sections; `combine` enforces this and the
//!   suite tests pin it.
//! - **`timing`** — volatile. Wall-clock per scenario, totals, and
//!   cache/compile counters, one entry per contributing run. Never
//!   compared byte-for-byte; the CI gate only schema-checks it.

use std::time::Instant;

use fq_serve::client;
use frozenqubits::api::{BatchRunner, JobResult, JobSpec};
use frozenqubits::FqError;
use serde::json::Value;

use crate::scenario::Suite;

/// Where a run executes.
#[derive(Clone, Debug, PartialEq)]
pub enum RunMode {
    /// Through a shared [`BatchRunner`] in this process.
    InProcess,
    /// Against a live shard or dispatcher at `addr`, via the existing
    /// HTTP client (`POST /v1/jobs`, sync).
    Live(String),
}

impl RunMode {
    /// The wire tag recorded in the timing section.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RunMode::InProcess => "in-process",
            RunMode::Live(_) => "live",
        }
    }
}

/// Deterministic per-scenario record: identity, result bytes, quality.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario id.
    pub id: String,
    /// Problem-family tag.
    pub family: String,
    /// Problem width.
    pub num_vars: usize,
    /// [`JobSpec::spec_fingerprint`] — the identity results are keyed
    /// and cross-checked on.
    pub fingerprint: String,
    /// [`JobSpec::routing_fingerprint`] — the template-affinity key a
    /// dispatcher would route this scenario by.
    pub routing: String,
    /// Job kind tag.
    pub kind: String,
    /// QoS tier name (`exact`, `balanced`, `fast`). Serialized only
    /// when non-exact so pre-tier run files stay byte-identical.
    pub tier: String,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Canonical [`JobResult`] wire bytes on success; the error
    /// rendering on failure. Byte-compared by `combine`.
    pub result: String,
    /// Quality metrics extracted from the result (deterministic).
    pub quality: Vec<(String, Value)>,
}

/// Cache/compile counters observed over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Template-cache hits.
    pub cache_hits: u64,
    /// Template-cache misses (= compiles triggered).
    pub cache_misses: u64,
    /// Templates compiled by this runner (in-process mode only).
    pub templates_compiled: u64,
}

/// Volatile per-run timing: wall clock and counters.
#[derive(Clone, Debug, PartialEq)]
pub struct RunTiming {
    /// Operator-chosen label (defaults to the mode name).
    pub label: String,
    /// [`RunMode::name`] of the producing run.
    pub mode: String,
    /// End-to-end wall clock in milliseconds.
    pub total_millis: f64,
    /// Cache/compile counters (diffed over the run in live mode).
    pub counters: Counters,
    /// `(scenario id, millis)` per executed scenario.
    pub scenario_millis: Vec<(String, f64)>,
}

/// One suite execution (or several, after `combine`).
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteRun {
    /// The suite name.
    pub suite: String,
    /// Deterministic scenario records, in corpus order.
    pub records: Vec<ScenarioRecord>,
    /// Volatile timing entries, one per contributing run.
    pub timing: Vec<RunTiming>,
}

/// Runs the selected scenarios of `suite` in `mode`.
///
/// Scenarios that fail to build or execute are recorded with
/// `ok: false` and the error text as the result — the run itself only
/// errors on transport-level problems it cannot attribute to a single
/// scenario (e.g. an unreachable live address surfaces per scenario).
///
/// # Errors
///
/// Currently only I/O errors from counter collection in live mode.
pub fn run_suite(
    suite: &Suite,
    mode: &RunMode,
    smoke_only: bool,
    label: &str,
) -> Result<SuiteRun, FqError> {
    let selected = suite.selected(smoke_only);
    let runner = BatchRunner::new();
    let live_before = match mode {
        RunMode::Live(addr) => Some(live_counters(addr)?),
        RunMode::InProcess => None,
    };

    let started = Instant::now();
    let mut records = Vec::with_capacity(selected.len());
    let mut scenario_millis = Vec::with_capacity(selected.len());
    for scenario in &selected {
        let clock = Instant::now();
        let record = match scenario.to_spec() {
            Ok(spec) => {
                let outcome = match mode {
                    RunMode::InProcess => runner
                        .run(std::slice::from_ref(&spec))
                        .pop()
                        .expect("one spec in, one result out"),
                    RunMode::Live(addr) => client::submit_sync(addr, &spec),
                };
                record_for(
                    scenario.id.clone(),
                    scenario.problem.family().to_string(),
                    &spec,
                    outcome,
                )
            }
            Err(e) => ScenarioRecord {
                id: scenario.id.clone(),
                family: scenario.problem.family().to_string(),
                num_vars: 0,
                fingerprint: String::new(),
                routing: String::new(),
                kind: String::new(),
                tier: scenario.tier.name().to_string(),
                ok: false,
                result: e.to_string(),
                quality: Vec::new(),
            },
        };
        scenario_millis.push((scenario.id.clone(), millis(clock)));
        records.push(record);
    }

    let counters = match (mode, live_before) {
        (RunMode::Live(addr), Some(before)) => {
            let after = live_counters(addr)?;
            Counters {
                cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
                cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
                templates_compiled: 0,
            }
        }
        _ => {
            let stats = runner.cache_stats();
            Counters {
                cache_hits: stats.hits,
                cache_misses: stats.misses,
                templates_compiled: runner.templates_compiled() as u64,
            }
        }
    };

    Ok(SuiteRun {
        suite: suite.name.clone(),
        records,
        timing: vec![RunTiming {
            label: label.to_string(),
            mode: mode.name().to_string(),
            total_millis: millis(started),
            counters,
            scenario_millis,
        }],
    })
}

fn millis(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// Reads the shard's cumulative cache counters from `/v1/stats`.
fn live_counters(addr: &str) -> Result<Counters, FqError> {
    let response = client::request(addr, "GET", "/v1/stats", None)?;
    let stats = response.json()?;
    let cache = stats.field("cache")?;
    Ok(Counters {
        cache_hits: cache.field("hits")?.as_u64()?,
        cache_misses: cache.field("misses")?.as_u64()?,
        templates_compiled: 0,
    })
}

fn record_for(
    id: String,
    family: String,
    spec: &JobSpec,
    outcome: Result<JobResult, FqError>,
) -> ScenarioRecord {
    let (ok, result, quality) = match outcome {
        Ok(result) => (true, result.to_json(), quality_of(&result)),
        Err(e) => (false, e.to_string(), Vec::new()),
    };
    ScenarioRecord {
        id,
        family,
        num_vars: spec.problem.num_vars(),
        fingerprint: spec.spec_fingerprint(),
        routing: spec.routing_fingerprint().unwrap_or_default(),
        kind: kind_of(spec),
        tier: spec.config.tier.name().to_string(),
        ok,
        result,
        quality,
    }
}

fn kind_of(spec: &JobSpec) -> String {
    match spec.kind {
        frozenqubits::api::JobKind::Baseline => "baseline".to_string(),
        frozenqubits::api::JobKind::Frozen => "frozen".to_string(),
        frozenqubits::api::JobKind::Compare => "compare".to_string(),
        frozenqubits::api::JobKind::Sample { .. } => "sample".to_string(),
        _ => "unknown".to_string(),
    }
}

/// The headline quality numbers per result kind. All values derive
/// from the canonical result bytes, so they inherit determinism.
fn quality_of(result: &JobResult) -> Vec<(String, Value)> {
    match result {
        JobResult::Baseline(s) => vec![
            ("arg".to_string(), Value::Number(s.arg)),
            ("ev_ideal".to_string(), Value::Number(s.ev_ideal)),
            ("ev_noisy".to_string(), Value::Number(s.ev_noisy)),
            ("circuits".to_string(), Value::UInt(s.circuits_executed)),
        ],
        JobResult::Frozen {
            summary,
            frozen_qubits,
        } => vec![
            ("arg".to_string(), Value::Number(summary.arg)),
            ("ev_ideal".to_string(), Value::Number(summary.ev_ideal)),
            ("ev_noisy".to_string(), Value::Number(summary.ev_noisy)),
            (
                "circuits".to_string(),
                Value::UInt(summary.circuits_executed),
            ),
            (
                "frozen".to_string(),
                Value::UInt(frozen_qubits.len() as u64),
            ),
        ],
        JobResult::Compare(report) => vec![
            ("improvement".to_string(), Value::Number(report.improvement)),
            (
                "baseline_arg".to_string(),
                Value::Number(report.baseline.arg),
            ),
            ("frozen_arg".to_string(), Value::Number(report.frozen.arg)),
        ],
        JobResult::Sample(outcome) => vec![
            ("energy".to_string(), Value::Number(outcome.energy)),
            (
                "frozen".to_string(),
                Value::UInt(outcome.frozen_qubits.len() as u64),
            ),
        ],
        JobResult::Approx { error_model, inner } => {
            let mut metrics = quality_of(inner);
            metrics.push((
                "tier".to_string(),
                Value::string(error_model.tier.name().to_string()),
            ));
            metrics
        }
        _ => Vec::new(),
    }
}

impl ScenarioRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id", Value::string(self.id.clone())),
            ("family", Value::string(self.family.clone())),
            ("num_vars", Value::UInt(self.num_vars as u64)),
            ("fingerprint", Value::string(self.fingerprint.clone())),
            ("routing", Value::string(self.routing.clone())),
            ("kind", Value::string(self.kind.clone())),
        ];
        // Pre-tier run files carried no `tier` key; emitting it only
        // for non-exact records keeps committed artifacts byte-stable.
        if self.tier != "exact" {
            fields.push(("tier", Value::string(self.tier.clone())));
        }
        fields.push(("ok", Value::Bool(self.ok)));
        fields.push((
            "quality",
            Value::Object(
                self.quality
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        ));
        fields.push(("result", Value::string(self.result.clone())));
        Value::object(fields)
    }

    fn from_value(value: &Value) -> Result<ScenarioRecord, FqError> {
        let quality = match value.field("quality")? {
            Value::Object(pairs) => pairs.clone(),
            _ => return Err(FqError::Serde("quality must be an object".to_string())),
        };
        let tier = match value.get("tier") {
            Some(v) => v.as_str()?.to_string(),
            None => "exact".to_string(),
        };
        Ok(ScenarioRecord {
            id: value.field("id")?.as_str()?.to_string(),
            family: value.field("family")?.as_str()?.to_string(),
            num_vars: value.field("num_vars")?.as_usize()?,
            fingerprint: value.field("fingerprint")?.as_str()?.to_string(),
            routing: value.field("routing")?.as_str()?.to_string(),
            kind: value.field("kind")?.as_str()?.to_string(),
            tier,
            ok: value.field("ok")?.as_bool()?,
            quality,
            result: value.field("result")?.as_str()?.to_string(),
        })
    }
}

impl RunTiming {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("label", Value::string(self.label.clone())),
            ("mode", Value::string(self.mode.clone())),
            ("total_millis", Value::Number(self.total_millis)),
            (
                "counters",
                Value::object(vec![
                    ("cache_hits", Value::UInt(self.counters.cache_hits)),
                    ("cache_misses", Value::UInt(self.counters.cache_misses)),
                    (
                        "templates_compiled",
                        Value::UInt(self.counters.templates_compiled),
                    ),
                ]),
            ),
            (
                "scenarios",
                Value::Array(
                    self.scenario_millis
                        .iter()
                        .map(|(id, ms)| {
                            Value::Array(vec![Value::string(id.clone()), Value::Number(*ms)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(value: &Value) -> Result<RunTiming, FqError> {
        let counters = value.field("counters")?;
        let mut scenario_millis = Vec::new();
        for entry in value.field("scenarios")?.as_array()? {
            let pair = entry.as_array()?;
            if pair.len() != 2 {
                return Err(FqError::Serde("timing entry must be [id, ms]".to_string()));
            }
            scenario_millis.push((pair[0].as_str()?.to_string(), pair[1].as_f64()?));
        }
        Ok(RunTiming {
            label: value.field("label")?.as_str()?.to_string(),
            mode: value.field("mode")?.as_str()?.to_string(),
            total_millis: value.field("total_millis")?.as_f64()?,
            counters: Counters {
                cache_hits: counters.field("cache_hits")?.as_u64()?,
                cache_misses: counters.field("cache_misses")?.as_u64()?,
                templates_compiled: counters.field("templates_compiled")?.as_u64()?,
            },
            scenario_millis,
        })
    }
}

impl SuiteRun {
    /// Canonical JSON wire form (`v: 1`).
    #[must_use]
    pub fn to_json(&self) -> String {
        Value::object(vec![
            ("v", Value::UInt(1)),
            ("suite", Value::string(self.suite.clone())),
            (
                "scenarios",
                Value::Array(self.records.iter().map(ScenarioRecord::to_value).collect()),
            ),
            (
                "timing",
                Value::object(vec![(
                    "runs",
                    Value::Array(self.timing.iter().map(RunTiming::to_value).collect()),
                )]),
            ),
        ])
        .to_json()
    }

    /// Parses the wire form back.
    ///
    /// # Errors
    ///
    /// [`FqError::Serde`] on version or schema mismatches.
    pub fn from_json(text: &str) -> Result<SuiteRun, FqError> {
        let value = Value::parse(text)?;
        let version = value.field("v")?.as_u64()?;
        if version != 1 {
            return Err(FqError::Serde(format!(
                "unsupported run-file version {version}"
            )));
        }
        let mut records = Vec::new();
        for entry in value.field("scenarios")?.as_array()? {
            records.push(ScenarioRecord::from_value(entry)?);
        }
        let mut timing = Vec::new();
        for entry in value.field("timing")?.field("runs")?.as_array()? {
            timing.push(RunTiming::from_value(entry)?);
        }
        Ok(SuiteRun {
            suite: value.field("suite")?.as_str()?.to_string(),
            records,
            timing,
        })
    }

    /// The deterministic section alone (scenario records), as the JSON
    /// the byte-identity acceptance criteria compare.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        Value::Array(self.records.iter().map(ScenarioRecord::to_value).collect()).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Suite;

    fn mini() -> Suite {
        Suite::parse(
            r#"{"v": 1, "suite": "mini", "description": "t", "scenarios": [
                {"id": "ba", "problem": {"type": "barabasi_albert", "n": 10, "d": 1, "seed": 4},
                 "device": "ibmq_montreal", "kind": "frozen"},
                {"id": "flat", "problem": {"type": "offset_only", "n": 4, "offset": 1.5},
                 "device": "ibmq_montreal", "kind": "baseline", "num_frozen": 0}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn in_process_run_round_trips_and_is_deterministic() {
        let suite = mini();
        let a = run_suite(&suite, &RunMode::InProcess, false, "a").unwrap();
        let b = run_suite(&suite, &RunMode::InProcess, false, "b").unwrap();
        assert_eq!(a.records.len(), 2);
        assert!(a.records.iter().all(|r| r.ok), "both scenarios run");
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "scenario sections are byte-identical across runs"
        );

        let parsed = SuiteRun::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a, "wire round-trip");
        assert_eq!(parsed.to_json(), a.to_json(), "byte round-trip");
    }

    #[test]
    fn records_carry_identity_and_quality() {
        let run = run_suite(&mini(), &RunMode::InProcess, false, "x").unwrap();
        let ba = &run.records[0];
        assert_eq!(ba.id, "ba");
        assert_eq!(ba.fingerprint.len(), 16);
        assert_eq!(ba.routing.len(), 16);
        assert_eq!(ba.kind, "frozen");
        assert!(ba.quality.iter().any(|(k, _)| k == "arg"));
        let result = frozenqubits::api::JobResult::from_json(&ba.result).unwrap();
        assert_eq!(result.kind_name(), "frozen");
        assert_eq!(run.timing.len(), 1);
        assert!(
            run.timing[0].counters.cache_misses > 0,
            "cold cache compiled"
        );
    }
}
