//! The `fq-suite` binary: run, combine, and report on scenario suites.
//!
//! ```text
//! fq-suite run <suite> [--dir DIR] [--live HOST:PORT] [--smoke]
//!                      [--label NAME] [--out FILE]
//! fq-suite combine --out FILE <run.json>...
//! fq-suite report <run.json> [--md FILE] [--bench FILE]
//! fq-suite fingerprint <suite> [--dir DIR] [--smoke]
//! fq-suite list [--dir DIR]
//! ```
//!
//! `run` executes a named suite (from `--dir`, `$FQ_SUITE_DIR`, or the
//! workspace `suites/`) either in-process through `BatchRunner` or
//! against a live shard/dispatcher, and writes a run file whose
//! scenario section is deterministic. `combine` merges run files keyed
//! by scenario id, failing loudly on any divergence. `report` renders
//! `reports/<suite>.md` plus `BENCH_suite.json`. `fingerprint` prints
//! one `id spec-fingerprint routing-fingerprint` line per scenario —
//! the cross-process determinism probe the suite tests diff.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fq_suite::{
    combine, corpus_dir, render_bench_json, render_markdown, run_suite, RunMode, Suite, SuiteRun,
};

const USAGE: &str = "usage: fq-suite <command>

commands:
  run <suite> [--dir DIR] [--live HOST:PORT] [--smoke] [--label NAME] [--out FILE]
      execute a suite; writes results/suite_<suite>[-smoke].json by default
  combine --out FILE <run.json>...
      merge run files keyed by scenario id (byte-identity enforced)
  report <run.json> [--md FILE] [--bench FILE]
      render reports/<suite>.md and BENCH_suite.json
  fingerprint <suite> [--dir DIR] [--smoke]
      print `id spec-fp routing-fp` per scenario (determinism probe)
  list [--dir DIR]
      list suites in the corpus directory

The corpus directory defaults to $FQ_SUITE_DIR, then ./suites, then the
workspace suites/ next to the fq-suite crate.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args[0].as_str() {
        "run" => cmd_run(&args[1..]),
        "combine" => cmd_combine(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "fingerprint" => cmd_fingerprint(&args[1..]),
        "list" => cmd_list(&args[1..]),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fq-suite: {message}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `(positionals, flag values)` for one subcommand.
struct Parsed {
    positional: Vec<String>,
    dir: Option<String>,
    live: Option<String>,
    smoke: bool,
    label: Option<String>,
    out: Option<String>,
    md: Option<String>,
    bench: Option<String>,
}

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        positional: Vec::new(),
        dir: None,
        live: None,
        smoke: false,
        label: None,
        out: None,
        md: None,
        bench: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--dir" => parsed.dir = Some(value("--dir")?),
            "--live" => parsed.live = Some(value("--live")?),
            "--label" => parsed.label = Some(value("--label")?),
            "--out" => parsed.out = Some(value("--out")?),
            "--md" => parsed.md = Some(value("--md")?),
            "--bench" => parsed.bench = Some(value("--bench")?),
            "--smoke" => parsed.smoke = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            _ => parsed.positional.push(arg.clone()),
        }
    }
    Ok(parsed)
}

fn resolved_dir(parsed: &Parsed) -> PathBuf {
    parsed.dir.as_ref().map_or_else(corpus_dir, PathBuf::from)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let [name] = parsed.positional.as_slice() else {
        return Err("run takes exactly one suite name".to_string());
    };
    let dir = resolved_dir(&parsed);
    let suite = Suite::load(&dir, name).map_err(|e| e.to_string())?;
    let mode = match &parsed.live {
        Some(addr) => RunMode::Live(addr.clone()),
        None => RunMode::InProcess,
    };
    let label = parsed.label.clone().unwrap_or_else(|| mode.name().into());
    let run = run_suite(&suite, &mode, parsed.smoke, &label).map_err(|e| e.to_string())?;

    let failed: Vec<&str> = run
        .records
        .iter()
        .filter(|r| !r.ok)
        .map(|r| r.id.as_str())
        .collect();
    let out = parsed.out.clone().unwrap_or_else(|| {
        format!(
            "results/suite_{name}{}.json",
            if parsed.smoke { "-smoke" } else { "" }
        )
    });
    write_creating_dirs(Path::new(&out), &run.to_json())?;
    println!(
        "fq-suite: ran {} scenario(s) of `{name}` ({}) in {:.1} ms -> {out}",
        run.records.len(),
        mode.name(),
        run.timing[0].total_millis
    );
    if failed.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} scenario(s) failed: {}",
            failed.len(),
            failed.join(", ")
        ))
    }
}

fn cmd_combine(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let out = parsed
        .out
        .clone()
        .ok_or_else(|| "combine requires --out FILE".to_string())?;
    if parsed.positional.is_empty() {
        return Err("combine needs at least one run file".to_string());
    }
    let mut runs = Vec::new();
    for path in &parsed.positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        runs.push(SuiteRun::from_json(&text).map_err(|e| format!("{path}: {e}"))?);
    }
    let merged = combine(&runs).map_err(|e| e.to_string())?;
    write_creating_dirs(Path::new(&out), &merged.to_json())?;
    println!(
        "fq-suite: combined {} run file(s), {} scenario(s) -> {out}",
        runs.len(),
        merged.records.len()
    );
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let [path] = parsed.positional.as_slice() else {
        return Err("report takes exactly one run file".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let run = SuiteRun::from_json(&text).map_err(|e| e.to_string())?;
    let md_path = parsed
        .md
        .clone()
        .unwrap_or_else(|| format!("reports/{}.md", run.suite));
    let bench_path = parsed
        .bench
        .clone()
        .unwrap_or_else(|| "BENCH_suite.json".to_string());
    write_creating_dirs(Path::new(&md_path), &render_markdown(&run))?;
    write_creating_dirs(Path::new(&bench_path), &render_bench_json(&run))?;
    println!("fq-suite: wrote {md_path} and {bench_path}");
    Ok(())
}

fn cmd_fingerprint(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let [name] = parsed.positional.as_slice() else {
        return Err("fingerprint takes exactly one suite name".to_string());
    };
    let suite = Suite::load(&resolved_dir(&parsed), name).map_err(|e| e.to_string())?;
    for scenario in suite.selected(parsed.smoke) {
        let spec = scenario
            .to_spec()
            .map_err(|e| format!("scenario `{}`: {e}", scenario.id))?;
        let routing = spec
            .routing_fingerprint()
            .map_err(|e| format!("scenario `{}`: {e}", scenario.id))?;
        println!("{} {} {}", scenario.id, spec.spec_fingerprint(), routing);
    }
    Ok(())
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let parsed = parse(args)?;
    let dir = resolved_dir(&parsed);
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "json").then(|| path.file_stem()?.to_str().map(String::from))?
        })
        .collect();
    names.sort();
    for name in names {
        match Suite::load(&dir, &name) {
            Ok(suite) => println!(
                "{name}: {} scenario(s), {} smoke — {}",
                suite.scenarios.len(),
                suite.scenarios.iter().filter(|s| s.smoke).count(),
                suite.description
            ),
            Err(e) => println!("{name}: INVALID ({e})"),
        }
    }
    Ok(())
}

fn write_creating_dirs(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
