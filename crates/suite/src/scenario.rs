//! The scenario corpus: named, declarative problem descriptions.
//!
//! A *suite* is a JSON file under `suites/` holding a list of
//! *scenarios*; each scenario names a problem family (resolved through
//! [`crate::models`]), a device, and a pipeline configuration, and
//! deserializes into a [`JobSpec`] through the public job API. The
//! JSON schema is documented in `ARCHITECTURE.md` ("Scenario suite")
//! and exercised end to end by `crates/suite/tests/`.
//!
//! Two invariants make the corpus usable as a regression anchor:
//!
//! 1. **Determinism** — a scenario is a pure function of its JSON
//!    form, so [`Scenario::to_spec`] yields byte-identical wire forms
//!    across processes and machines (pinned by
//!    `tests/determinism.rs`).
//! 2. **Stable identity** — results are keyed by
//!    [`JobSpec::spec_fingerprint`], so runs from different shards or
//!    different days can be combined and compared by scenario id with
//!    a fingerprint cross-check.

use std::path::{Path, PathBuf};

use frozenqubits::api::{BackendSpec, DeviceSpec, JobKind, JobSpec, ProblemSpec};
use frozenqubits::{FqError, QosTier};
use serde::json::Value;

use crate::models;

/// A named problem-family recipe, the `problem` object of a scenario.
///
/// Passthrough families (`barabasi_albert`) map straight onto a
/// [`ProblemSpec`] variant; generator families materialize an explicit
/// Ising model through [`crate::models`] so the corpus — not the bench
/// binaries or the examples — is the single source of model
/// construction.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioProblem {
    /// §4.1 BA instance, passed through as a recipe (the engine
    /// materializes it).
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Attachment degree.
        d: usize,
        /// Generator + weighting seed.
        seed: u64,
    },
    /// Random `degree`-regular ±1 instance.
    Regular {
        /// Node count.
        n: usize,
        /// Uniform degree.
        degree: usize,
        /// Generator + weighting seed.
        seed: u64,
    },
    /// Max-Cut on the busiest slice of the synthetic airport network.
    AirportMaxcut {
        /// Full network size.
        airports: usize,
        /// Mean degree of the power-law network.
        mean_degree: f64,
        /// Network seed.
        seed: u64,
        /// Busiest-airports slice width (the model's variable count).
        slice: usize,
    },
    /// Portfolio-optimization QUBO (converted to Ising).
    Portfolio {
        /// Number of assets.
        assets: usize,
        /// Assets to pick.
        budget: usize,
        /// Budget-penalty strength.
        lambda: f64,
        /// Returns/correlations seed.
        seed: u64,
    },
    /// Fully-connected ±1 stressor.
    Dense {
        /// Node count.
        n: usize,
        /// Weighting seed.
        seed: u64,
    },
    /// Unit-weight ring with a maximally degenerate spectrum.
    DegenerateRing {
        /// Ring length.
        n: usize,
    },
    /// BA instance with every third coupling zeroed out (dropped).
    ZeroWeight {
        /// Node count.
        n: usize,
        /// Generator + weighting seed.
        seed: u64,
    },
    /// No couplings, no linear terms — only a constant offset.
    OffsetOnly {
        /// Variable count.
        n: usize,
        /// The constant offset.
        offset: f64,
    },
}

impl ScenarioProblem {
    /// The family tag, as written in the corpus JSON and the reports.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            ScenarioProblem::BarabasiAlbert { .. } => "barabasi_albert",
            ScenarioProblem::Regular { .. } => "regular",
            ScenarioProblem::AirportMaxcut { .. } => "airport_maxcut",
            ScenarioProblem::Portfolio { .. } => "portfolio",
            ScenarioProblem::Dense { .. } => "dense",
            ScenarioProblem::DegenerateRing { .. } => "degenerate_ring",
            ScenarioProblem::ZeroWeight { .. } => "zero_weight",
            ScenarioProblem::OffsetOnly { .. } => "offset_only",
        }
    }

    /// Resolves the recipe into a [`ProblemSpec`] via [`crate::models`].
    ///
    /// # Errors
    ///
    /// Propagates generator errors for infeasible parameters.
    pub fn to_problem_spec(&self) -> Result<ProblemSpec, FqError> {
        Ok(match *self {
            ScenarioProblem::BarabasiAlbert { n, d, seed } => {
                ProblemSpec::BarabasiAlbert { n, d, seed }
            }
            ScenarioProblem::Regular { n, degree, seed } => {
                ProblemSpec::Ising(models::regular_pm1(n, degree, seed)?)
            }
            ScenarioProblem::AirportMaxcut {
                airports,
                mean_degree,
                seed,
                slice,
            } => ProblemSpec::Ising(models::airport_maxcut(airports, mean_degree, seed, slice)?.0),
            ScenarioProblem::Portfolio {
                assets,
                budget,
                lambda,
                seed,
            } => {
                ProblemSpec::Ising(models::portfolio_qubo(assets, budget, lambda, seed)?.to_ising())
            }
            ScenarioProblem::Dense { n, seed } => ProblemSpec::Ising(models::dense_pm1(n, seed)?),
            ScenarioProblem::DegenerateRing { n } => ProblemSpec::Ising(models::degenerate_ring(n)),
            ScenarioProblem::ZeroWeight { n, seed } => {
                ProblemSpec::Ising(models::zero_weight_gaps(n, seed)?)
            }
            ScenarioProblem::OffsetOnly { n, offset } => {
                ProblemSpec::Ising(models::offset_only(n, offset))
            }
        })
    }

    fn from_value(value: &Value) -> Result<ScenarioProblem, FqError> {
        let kind = value.field("type")?.as_str()?;
        Ok(match kind {
            "barabasi_albert" => ScenarioProblem::BarabasiAlbert {
                n: value.field("n")?.as_usize()?,
                d: value.field("d")?.as_usize()?,
                seed: value.field("seed")?.as_u64()?,
            },
            "regular" => ScenarioProblem::Regular {
                n: value.field("n")?.as_usize()?,
                degree: value.field("degree")?.as_usize()?,
                seed: value.field("seed")?.as_u64()?,
            },
            "airport_maxcut" => ScenarioProblem::AirportMaxcut {
                airports: value.field("airports")?.as_usize()?,
                mean_degree: value.field("mean_degree")?.as_f64()?,
                seed: value.field("seed")?.as_u64()?,
                slice: value.field("slice")?.as_usize()?,
            },
            "portfolio" => ScenarioProblem::Portfolio {
                assets: value.field("assets")?.as_usize()?,
                budget: value.field("budget")?.as_usize()?,
                lambda: value.field("lambda")?.as_f64()?,
                seed: value.field("seed")?.as_u64()?,
            },
            "dense" => ScenarioProblem::Dense {
                n: value.field("n")?.as_usize()?,
                seed: value.field("seed")?.as_u64()?,
            },
            "degenerate_ring" => ScenarioProblem::DegenerateRing {
                n: value.field("n")?.as_usize()?,
            },
            "zero_weight" => ScenarioProblem::ZeroWeight {
                n: value.field("n")?.as_usize()?,
                seed: value.field("seed")?.as_u64()?,
            },
            "offset_only" => ScenarioProblem::OffsetOnly {
                n: value.field("n")?.as_usize()?,
                offset: value.field("offset")?.as_f64()?,
            },
            other => {
                return Err(FqError::InvalidConfig(format!(
                    "unknown scenario problem type `{other}`"
                )))
            }
        })
    }
}

/// One named scenario: a problem recipe plus the job configuration
/// that turns it into a [`JobSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable identifier (`[a-z0-9-]+`), unique within a suite;
    /// results and reports key on it.
    pub id: String,
    /// Whether the scenario belongs to the fast CI subset
    /// (`fq-suite run --smoke`).
    pub smoke: bool,
    /// The problem-family recipe.
    pub problem: ScenarioProblem,
    /// Target device preset.
    pub device: DeviceSpec,
    /// What to compute.
    pub kind: JobKind,
    /// Qubits to freeze (`m`).
    pub num_frozen: usize,
    /// QAOA layers (`p`).
    pub layers: usize,
    /// Pipeline seed.
    pub seed: u64,
    /// Execution backend.
    pub backend: BackendSpec,
    /// Accuracy/speed contract (`exact` when the corpus omits it, so
    /// pre-tier suite files parse unchanged).
    pub tier: QosTier,
}

impl Scenario {
    /// Builds the validated [`JobSpec`] this scenario describes.
    ///
    /// # Errors
    ///
    /// Propagates generator and validation errors.
    pub fn to_spec(&self) -> Result<JobSpec, FqError> {
        let mut builder = JobSpec::builder()
            .problem(self.problem.to_problem_spec()?)
            .device(self.device)
            .backend(self.backend)
            .num_frozen(self.num_frozen)
            .layers(self.layers)
            .seed(self.seed)
            .tier(self.tier);
        builder = match self.kind {
            JobKind::Baseline => builder.baseline(),
            JobKind::Frozen => builder.frozen(),
            JobKind::Compare => builder.compare(),
            JobKind::Sample { shots } => builder.sample(shots),
            // `JobKind` is non-exhaustive; the corpus parser only
            // produces the four kinds above.
            _ => builder,
        };
        builder.build()
    }

    fn from_value(value: &Value) -> Result<Scenario, FqError> {
        let id = value.field("id")?.as_str()?.to_string();
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return Err(FqError::InvalidConfig(format!(
                "scenario id `{id}` must be non-empty [a-z0-9-]"
            )));
        }
        let smoke = match value.get("smoke") {
            Some(v) => v.as_bool()?,
            None => false,
        };
        let problem = ScenarioProblem::from_value(value.field("problem")?)?;
        let device_name = value.field("device")?.as_str()?;
        let device = DeviceSpec::from_name(device_name).ok_or_else(|| {
            FqError::InvalidConfig(format!("scenario `{id}`: unknown device `{device_name}`"))
        })?;
        let kind = parse_kind(&id, value.field("kind")?)?;
        let num_frozen = match value.get("num_frozen") {
            Some(v) => v.as_usize()?,
            None => 1,
        };
        let layers = match value.get("layers") {
            Some(v) => v.as_usize()?,
            None => 1,
        };
        let seed = match value.get("seed") {
            Some(v) => v.as_u64()?,
            None => 0,
        };
        let backend = match value.get("backend") {
            Some(v) => {
                let name = v.as_str()?;
                BackendSpec::from_name(name).ok_or_else(|| {
                    FqError::InvalidConfig(format!("scenario `{id}`: unknown backend `{name}`"))
                })?
            }
            None => BackendSpec::Sim,
        };
        let tier = match value.get("tier") {
            Some(v) => {
                let name = v.as_str()?;
                QosTier::from_name(name).ok_or_else(|| FqError::UnknownTier(name.to_string()))?
            }
            None => QosTier::Exact,
        };
        Ok(Scenario {
            id,
            smoke,
            problem,
            device,
            kind,
            num_frozen,
            layers,
            seed,
            backend,
            tier,
        })
    }
}

/// `kind` is either a bare string (`"frozen"`) or, for sampling, an
/// object carrying the shot count (`{"type": "sample", "shots": 256}`).
fn parse_kind(id: &str, value: &Value) -> Result<JobKind, FqError> {
    let name = match value {
        Value::String(s) => s.as_str(),
        Value::Object(_) => value.field("type")?.as_str()?,
        _ => {
            return Err(FqError::InvalidConfig(format!(
                "scenario `{id}`: kind must be a string or object"
            )))
        }
    };
    Ok(match name {
        "baseline" => JobKind::Baseline,
        "frozen" => JobKind::Frozen,
        "compare" => JobKind::Compare,
        "sample" => JobKind::Sample {
            shots: value.field("shots")?.as_u64()?,
        },
        other => {
            return Err(FqError::InvalidConfig(format!(
                "scenario `{id}`: unknown kind `{other}`"
            )))
        }
    })
}

/// A parsed suite file: a name, a description, and its scenarios.
#[derive(Clone, Debug, PartialEq)]
pub struct Suite {
    /// Suite name; must match the file stem under `suites/`.
    pub name: String,
    /// Human-readable description, surfaced in the report header.
    pub description: String,
    /// The scenarios, in corpus order.
    pub scenarios: Vec<Scenario>,
}

impl Suite {
    /// Parses a suite from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] (or a JSON error) on schema
    /// violations: bad version, duplicate ids, unknown families.
    pub fn parse(text: &str) -> Result<Suite, FqError> {
        let value = Value::parse(text)?;
        let version = value.field("v")?.as_u64()?;
        if version != 1 {
            return Err(FqError::InvalidConfig(format!(
                "unsupported suite schema version {version}"
            )));
        }
        let name = value.field("suite")?.as_str()?.to_string();
        let description = value.field("description")?.as_str()?.to_string();
        let mut scenarios = Vec::new();
        for entry in value.field("scenarios")?.as_array()? {
            scenarios.push(Scenario::from_value(entry)?);
        }
        if scenarios.is_empty() {
            return Err(FqError::InvalidConfig(format!(
                "suite `{name}` has no scenarios"
            )));
        }
        for (i, s) in scenarios.iter().enumerate() {
            if scenarios[..i].iter().any(|t| t.id == s.id) {
                return Err(FqError::InvalidConfig(format!(
                    "suite `{name}`: duplicate scenario id `{}`",
                    s.id
                )));
            }
        }
        Ok(Suite {
            name,
            description,
            scenarios,
        })
    }

    /// Loads and parses `<dir>/<name>.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and schema errors.
    pub fn load(dir: &Path, name: &str) -> Result<Suite, FqError> {
        let path = suite_path(dir, name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| FqError::InvalidConfig(format!("cannot read {}: {e}", path.display())))?;
        let suite = Suite::parse(&text)?;
        if suite.name != name {
            return Err(FqError::InvalidConfig(format!(
                "suite file {} declares name `{}`",
                path.display(),
                suite.name
            )));
        }
        Ok(suite)
    }

    /// The scenarios selected by a run: all of them, or the smoke
    /// subset.
    #[must_use]
    pub fn selected(&self, smoke_only: bool) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .filter(|s| !smoke_only || s.smoke)
            .collect()
    }
}

/// `<dir>/<name>.json`.
#[must_use]
pub fn suite_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "v": 1,
        "suite": "mini",
        "description": "test corpus",
        "scenarios": [
            {"id": "ba-a", "smoke": true,
             "problem": {"type": "barabasi_albert", "n": 12, "d": 1, "seed": 7},
             "device": "ibmq_montreal", "kind": "frozen", "num_frozen": 2, "seed": 3},
            {"id": "ring",
             "problem": {"type": "degenerate_ring", "n": 8},
             "device": "ibm_hanoi", "kind": {"type": "sample", "shots": 64}}
        ]
    }"#;

    #[test]
    fn parses_and_builds_specs() {
        let suite = Suite::parse(SAMPLE).unwrap();
        assert_eq!(suite.name, "mini");
        assert_eq!(suite.scenarios.len(), 2);
        assert_eq!(suite.selected(true).len(), 1, "smoke subset");

        let ba = suite.scenarios[0].to_spec().unwrap();
        assert_eq!(ba.config.num_frozen, 2);
        assert_eq!(ba.config.seed, 3);
        assert_eq!(
            ba.problem,
            ProblemSpec::BarabasiAlbert {
                n: 12,
                d: 1,
                seed: 7
            }
        );

        let ring = suite.scenarios[1].to_spec().unwrap();
        assert_eq!(ring.kind, JobKind::Sample { shots: 64 });
        assert_eq!(ring.problem.num_vars(), 8);
        assert_eq!(suite.scenarios[1].problem.family(), "degenerate_ring");
    }

    #[test]
    fn schema_violations_are_loud() {
        assert!(Suite::parse(
            "{\"v\": 2, \"suite\": \"x\", \"description\": \"\", \"scenarios\": []}"
        )
        .is_err());
        let dup = SAMPLE.replace("\"id\": \"ring\"", "\"id\": \"ba-a\"");
        assert!(Suite::parse(&dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        let baddev = SAMPLE.replace("ibmq_montreal", "ibmq_nowhere");
        assert!(Suite::parse(&baddev)
            .unwrap_err()
            .to_string()
            .contains("unknown device"));
    }

    #[test]
    fn tier_field_parses_defaults_and_rejects_unknown_names() {
        let suite = Suite::parse(SAMPLE).unwrap();
        assert_eq!(suite.scenarios[0].tier, QosTier::Exact, "omitted = exact");

        let tiered = SAMPLE.replace(
            "\"smoke\": true,",
            "\"smoke\": true, \"tier\": \"balanced\",",
        );
        let suite = Suite::parse(&tiered).unwrap();
        assert_eq!(suite.scenarios[0].tier, QosTier::Balanced);
        let spec = suite.scenarios[0].to_spec().unwrap();
        assert_eq!(spec.config.tier, QosTier::Balanced, "tier reaches the spec");

        let bad = SAMPLE.replace("\"smoke\": true,", "\"smoke\": true, \"tier\": \"turbo\",");
        let err = Suite::parse(&bad).unwrap_err();
        assert!(matches!(err, FqError::UnknownTier(_)), "{err}");
    }

    #[test]
    fn scenario_specs_are_deterministic() {
        let a = Suite::parse(SAMPLE).unwrap().scenarios[0]
            .to_spec()
            .unwrap();
        let b = Suite::parse(SAMPLE).unwrap().scenarios[0]
            .to_spec()
            .unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.spec_fingerprint(), b.spec_fingerprint());
    }
}
