//! `fq-suite`: a declarative scenario corpus with a runner, combine
//! step, and regression reports.
//!
//! The workload space the paper cares about — Barabási–Albert, random
//! regular, power-law airport Max-Cut, portfolio QUBO, plus the
//! adversarial shapes (dense couplings, degenerate spectra,
//! freeze-heavy, zero-weight, offset-only) — lives as named JSON
//! *scenarios* under `suites/`, each deserializing into a
//! [`frozenqubits::api::JobSpec`] through the public job API. One CLI
//! drives it:
//!
//! ```text
//! fq-suite run core                       # in-process, via BatchRunner
//! fq-suite run core --live 127.0.0.1:891  # against a live shard/dispatcher
//! fq-suite combine --out merged.json a.json b.json
//! fq-suite report merged.json             # reports/core.md + BENCH_suite.json
//! ```
//!
//! The contracts, pinned by `crates/suite/tests/`:
//!
//! * **Determinism** — the scenario section of a run file is a pure
//!   function of the corpus: byte-identical across reruns, processes,
//!   and in-process vs live execution.
//! * **Identity** — records are keyed by scenario id and cross-checked
//!   by [`JobSpec::spec_fingerprint`](frozenqubits::api::JobSpec::spec_fingerprint);
//!   `combine` fails loudly when two runs disagree.
//! * **Single source** — model construction lives in [`models`]; the
//!   bench binaries and examples build through it, never ad hoc.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

pub mod models;
pub mod report;
pub mod runner;
pub mod scenario;

pub use report::{combine, render_bench_json, render_markdown};
pub use runner::{run_suite, Counters, RunMode, RunTiming, ScenarioRecord, SuiteRun};
pub use scenario::{suite_path, Scenario, ScenarioProblem, Suite};

/// Locates the scenario corpus directory: `$FQ_SUITE_DIR` if set, else
/// `./suites` if present (the repo-root invocation), else the
/// workspace `suites/` next to this crate (so tests and tools work
/// from any working directory).
#[must_use]
pub fn corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("FQ_SUITE_DIR") {
        return PathBuf::from(dir);
    }
    let local = PathBuf::from("suites");
    if local.is_dir() {
        return local;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../suites")
}
