//! The corpus determinism contracts, end to end:
//!
//! * same corpus entry ⇒ byte-identical `JobSpec` wire form and
//!   identical `routing_fingerprint()` **across two processes** (the
//!   FNV/stable-hash contract the result archive keys on);
//! * two `fq-suite run`s produce byte-identical scenario sections;
//! * the same suite run in-process and against a loopback shard yields
//!   byte-identical result bytes per scenario (live mode pinned).

use std::path::PathBuf;
use std::process::Command;

use fq_serve::{Server, ServerConfig};
use fq_suite::{run_suite, RunMode, Suite, SuiteRun};

fn corpus() -> PathBuf {
    fq_suite::corpus_dir()
}

fn cli() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fq-suite"));
    cmd.env("FQ_SUITE_DIR", corpus());
    cmd
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fq-suite-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn fingerprints_are_identical_across_two_processes() {
    for suite in ["core", "adversarial", "bench-batch", "large"] {
        let run = |label: &str| {
            let out = cli()
                .args(["fingerprint", suite])
                .output()
                .expect("spawn fq-suite");
            assert!(
                out.status.success(),
                "fingerprint {suite} ({label}): {}",
                String::from_utf8_lossy(&out.stderr)
            );
            out.stdout
        };
        let first = run("first process");
        let second = run("second process");
        assert_eq!(
            first, second,
            "suite `{suite}`: fingerprint lines differ across processes"
        );
        assert!(!first.is_empty());

        // The child processes agree with *this* process too: the wire
        // form and both fingerprints are pure functions of the corpus.
        let parsed = Suite::load(&corpus(), suite).unwrap();
        let mut expected = String::new();
        for scenario in parsed.selected(false) {
            let spec = scenario.to_spec().unwrap();
            expected.push_str(&format!(
                "{} {} {}\n",
                scenario.id,
                spec.spec_fingerprint(),
                spec.routing_fingerprint().unwrap()
            ));
        }
        assert_eq!(String::from_utf8(first).unwrap(), expected);
    }
}

#[test]
fn suite_runs_are_byte_identical_across_processes() {
    let out_a = scratch("run_a.json");
    let out_b = scratch("run_b.json");
    for out in [&out_a, &out_b] {
        let status = cli()
            .args(["run", "core", "--smoke", "--label", "x", "--out"])
            .arg(out)
            .status()
            .expect("spawn fq-suite");
        assert!(status.success());
    }
    let a = SuiteRun::from_json(&std::fs::read_to_string(&out_a).unwrap()).unwrap();
    let b = SuiteRun::from_json(&std::fs::read_to_string(&out_b).unwrap()).unwrap();
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "scenario sections must be byte-identical across processes"
    );
    assert!(a.records.iter().all(|r| r.ok));
}

/// The approximate tiers are contracts, not best-effort: the same spec
/// and seed must reproduce byte-identical `balanced`/`fast` results
/// across processes *and* across worker counts. The `large` smoke
/// subset runs one scenario per tier, so this pins all three.
#[test]
fn approximate_tiers_are_byte_identical_across_processes_and_thread_counts() {
    let mut outputs = Vec::new();
    for (name, threads) in [("tier_t1.json", "1"), ("tier_t4.json", "4")] {
        let out = scratch(name);
        let status = cli()
            .env("FQ_THREADS", threads)
            .args(["run", "large", "--smoke", "--label", "x", "--out"])
            .arg(&out)
            .status()
            .expect("spawn fq-suite");
        assert!(status.success());
        outputs.push(SuiteRun::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap());
    }
    let (a, b) = (&outputs[0], &outputs[1]);
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "tiered scenario sections must be byte-identical across processes and FQ_THREADS"
    );
    assert!(a.records.iter().all(|r| r.ok));
    for tier in ["exact", "balanced", "fast"] {
        assert!(
            a.records.iter().any(|r| r.tier == tier),
            "the large smoke subset exercises the `{tier}` tier"
        );
    }
    // Non-exact records carry the tier both in the record and inside
    // the result bytes (the error_model of the v2 wire form).
    for r in a.records.iter().filter(|r| r.tier != "exact") {
        assert!(
            r.result.contains("\"error_model\""),
            "scenario `{}` result carries its error model: {}",
            r.id,
            r.result
        );
    }
}

#[test]
fn live_mode_is_byte_identical_to_in_process() {
    let suite = Suite::load(&corpus(), "core").unwrap();
    let local = run_suite(&suite, &RunMode::InProcess, false, "local").unwrap();

    let handle = Server::spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let live = run_suite(&suite, &RunMode::Live(addr), false, "live").unwrap();
    handle.shutdown();

    assert_eq!(local.records.len(), live.records.len());
    for (a, b) in local.records.iter().zip(&live.records) {
        assert_eq!(a.id, b.id);
        assert!(a.ok && b.ok, "scenario `{}` failed", a.id);
        assert_eq!(
            a.result, b.result,
            "scenario `{}`: live result bytes diverge from in-process",
            a.id
        );
    }
    assert_eq!(
        local.deterministic_json(),
        live.deterministic_json(),
        "whole scenario sections match byte for byte"
    );
    let t = &live.timing[0];
    assert_eq!(t.mode, "live");
    assert!(
        t.counters.cache_misses > 0,
        "the shard's compile counters were observed over the run"
    );
}

#[test]
fn combine_and_report_round_trip_through_the_cli() {
    let out_a = scratch("combine_a.json");
    let out_b = scratch("combine_b.json");
    let merged = scratch("merged.json");
    for (out, label) in [(&out_a, "a"), (&out_b, "b")] {
        let status = cli()
            .args(["run", "adversarial", "--smoke", "--label", label, "--out"])
            .arg(out)
            .status()
            .expect("spawn fq-suite");
        assert!(status.success());
    }
    let status = cli()
        .args(["combine", "--out"])
        .arg(&merged)
        .args([&out_a, &out_b])
        .status()
        .expect("spawn fq-suite");
    assert!(status.success(), "identical runs combine cleanly");

    let run = SuiteRun::from_json(&std::fs::read_to_string(&merged).unwrap()).unwrap();
    assert_eq!(run.timing.len(), 2, "both runs' timing entries survive");

    let md = scratch("adv.md");
    let bench = scratch("BENCH_adv.json");
    let status = cli()
        .args(["report"])
        .arg(&merged)
        .arg("--md")
        .arg(&md)
        .arg("--bench")
        .arg(&bench)
        .status()
        .expect("spawn fq-suite");
    assert!(status.success());
    let md_text = std::fs::read_to_string(&md).unwrap();
    assert!(md_text.contains("# Suite report: adversarial"));
    assert!(md_text.contains("## Timing (volatile)"));
    let bench_text = std::fs::read_to_string(&bench).unwrap();
    assert!(bench_text.starts_with("{\"bench\":\"suite\""));

    // A corrupted record is a loud combine failure, not a silent merge.
    let mut evil = SuiteRun::from_json(&std::fs::read_to_string(&out_b).unwrap()).unwrap();
    evil.records[0].result.push('!');
    let evil_path = scratch("evil.json");
    std::fs::write(&evil_path, evil.to_json()).unwrap();
    let out = cli()
        .args(["combine", "--out"])
        .arg(scratch("never.json"))
        .args([&out_a, &evil_path])
        .output()
        .expect("spawn fq-suite");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("diverges"),
        "stderr names the divergence"
    );
}
