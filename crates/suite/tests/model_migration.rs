//! Pins that the model constructors in `fq_suite::models` produce
//! **exactly** the models the ad-hoc constructions they replaced did —
//! the bench binaries (`fq_bench::{ba_instance, regular3_instance,
//! sk_instance}`, the `batch_throughput` job families) and the
//! workspace examples (`airport_maxcut.rs`, `portfolio.rs`) migrated
//! onto the suite corpus in the same PR that added this test, and any
//! drift here would silently change every published benchmark number.

use fq_graphs::airports::synthetic_airport_network;
use fq_graphs::{gen, to_ising_pm1, Graph};
use fq_ising::maxcut::maxcut_to_ising;
use fq_ising::Qubo;
use fq_suite::models;
use frozenqubits::api::{DeviceSpec, JobBuilder, JobSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn graph_instances_match_the_old_bench_constructions() {
    for (n, d, seed) in [(12, 1, 0), (20, 1, 4), (24, 3, 11), (16, 2, 7)] {
        let old = to_ising_pm1(&gen::barabasi_albert(n, d, seed).unwrap(), seed);
        assert_eq!(
            models::ba_pm1(n, d, seed).unwrap(),
            old,
            "BA({n},{d},{seed})"
        );
    }
    for (n, seed) in [(8, 0), (14, 5), (20, 8)] {
        let old = to_ising_pm1(&gen::random_regular(n, 3, seed).unwrap(), seed);
        assert_eq!(
            models::regular_pm1(n, 3, seed).unwrap(),
            old,
            "reg3({n},{seed})"
        );
    }
    for (n, seed) in [(6, 0), (10, 1), (14, 3)] {
        let old = to_ising_pm1(&gen::complete(n), seed);
        assert_eq!(models::dense_pm1(n, seed).unwrap(), old, "SK({n},{seed})");
    }
}

/// The `busiest_subnetwork` helper exactly as `examples/airport_maxcut.rs`
/// defined it before the migration.
fn old_busiest_subnetwork(g: &Graph, k: usize) -> Graph {
    let keep: Vec<usize> = g.nodes_by_degree().into_iter().take(k).collect();
    let mut index = vec![usize::MAX; g.num_nodes()];
    for (new, &old) in keep.iter().enumerate() {
        index[old] = new;
    }
    let mut sub = Graph::new(k);
    for &(a, b) in g.edges() {
        if index[a] != usize::MAX && index[b] != usize::MAX {
            sub.add_edge(index[a], index[b]).expect("simple subgraph");
        }
    }
    sub
}

#[test]
fn airport_maxcut_matches_the_old_example_construction() {
    let network = synthetic_airport_network(1300, 26.49, 7).unwrap();
    let slice = old_busiest_subnetwork(&network, 12);
    let old_edges: Vec<(usize, usize, f64)> =
        slice.edges().iter().map(|&(a, b)| (a, b, 1.0)).collect();
    let old_model = maxcut_to_ising(12, &old_edges).unwrap();

    let (model, edges) = models::airport_maxcut(1300, 26.49, 7, 12).unwrap();
    assert_eq!(model, old_model);
    assert_eq!(edges, old_edges);
}

#[test]
fn portfolio_qubo_matches_the_old_example_construction() {
    // Verbatim from examples/portfolio.rs before the migration.
    let n = 10usize;
    let budget = 4usize;
    let mut rng = StdRng::seed_from_u64(11);
    let returns: Vec<f64> = (0..n).map(|_| rng.random_range(0.02..0.12)).collect();
    let mut qubo = Qubo::new(n);
    let lambda = 0.35;
    for (i, &ri) in returns.iter().enumerate() {
        qubo.set(i, i, -ri + lambda * (1.0 - 2.0 * budget as f64))
            .unwrap();
        for j in (i + 1)..n {
            let sigma = if i == 0 {
                0.08
            } else {
                rng.random_range(0.005..0.03)
            };
            qubo.set(i, j, sigma + 2.0 * lambda).unwrap();
        }
    }
    qubo.set_offset(lambda * (budget as f64).powi(2));

    let new = models::portfolio_qubo(n, budget, lambda, 11).unwrap();
    assert_eq!(new.to_ising(), qubo.to_ising());
}

#[test]
fn bench_batch_suite_reproduces_the_old_throughput_batch() {
    // The family closure exactly as crates/bench/src/bin/batch_throughput.rs
    // defined it before the migration onto suites/bench-batch.json.
    let family = |n: usize, m: usize, seed: u64| -> JobSpec {
        JobBuilder::new()
            .barabasi_albert(n, 1, 4)
            .device(DeviceSpec::IbmMontreal)
            .num_frozen(m)
            .seed(seed)
            .frozen()
            .build()
            .expect("valid bench spec")
    };
    let old: Vec<JobSpec> = (0..8)
        .map(|i| {
            let seed = i as u64;
            match i % 4 {
                0 => family(20, 3, seed),
                1 => family(24, 3, seed),
                2 => family(20, 2, seed),
                _ => JobBuilder::new()
                    .barabasi_albert(16, 1, 4)
                    .device(DeviceSpec::IbmMontreal)
                    .seed(seed)
                    .compare()
                    .build()
                    .expect("valid bench spec"),
            }
        })
        .collect();

    let suite = fq_suite::Suite::load(&fq_suite::corpus_dir(), "bench-batch").unwrap();
    let new: Vec<JobSpec> = (0..8)
        .map(|i| {
            let mut scenario = suite.scenarios[i % suite.scenarios.len()].clone();
            scenario.seed = i as u64;
            scenario.to_spec().unwrap()
        })
        .collect();

    for (old_spec, new_spec) in old.iter().zip(&new) {
        assert_eq!(
            new_spec.to_json(),
            old_spec.to_json(),
            "wire-identical specs"
        );
    }
}
