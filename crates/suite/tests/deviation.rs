//! The accuracy half of the QoS contract: for every core and
//! adversarial scenario, the `balanced` and `fast` results stay within
//! the deviation bound their own `error_model` reports, relative to the
//! `exact` run of the same scenario.
//!
//! Sampling scenarios are excluded: sampling jobs are stochastic end to
//! end and the builder rejects non-exact tiers for them.

use fq_suite::{corpus_dir, Suite};
use frozenqubits::api::{BatchRunner, JobKind, JobResult};
use frozenqubits::QosTier;

/// The expectation values a result is judged on, flattened across the
/// result kinds (compare results carry two summaries).
fn headline_evs(result: &JobResult) -> Vec<(String, f64)> {
    match result {
        JobResult::Approx { inner, .. } => headline_evs(inner),
        JobResult::Baseline(s) => vec![
            ("ev_ideal".to_string(), s.ev_ideal),
            ("ev_noisy".to_string(), s.ev_noisy),
        ],
        JobResult::Frozen { summary, .. } => vec![
            ("ev_ideal".to_string(), summary.ev_ideal),
            ("ev_noisy".to_string(), summary.ev_noisy),
        ],
        JobResult::Compare(report) => vec![
            ("baseline.ev_ideal".to_string(), report.baseline.ev_ideal),
            ("baseline.ev_noisy".to_string(), report.baseline.ev_noisy),
            ("frozen.ev_ideal".to_string(), report.frozen.ev_ideal),
            ("frozen.ev_noisy".to_string(), report.frozen.ev_noisy),
        ],
        _ => Vec::new(),
    }
}

fn run_one(runner: &BatchRunner, scenario: &fq_suite::Scenario) -> JobResult {
    let spec = scenario.to_spec().unwrap();
    runner
        .run(std::slice::from_ref(&spec))
        .pop()
        .expect("one spec in, one result out")
        .unwrap_or_else(|e| panic!("scenario `{}` ({:?}): {e}", scenario.id, scenario.tier))
}

#[test]
fn approximate_tiers_stay_inside_their_reported_bounds() {
    let runner = BatchRunner::new();
    let mut checked = 0usize;
    for suite_name in ["core", "adversarial"] {
        let suite = Suite::load(&corpus_dir(), suite_name).unwrap();
        for scenario in &suite.scenarios {
            if matches!(scenario.kind, JobKind::Sample { .. }) {
                continue;
            }
            let exact = run_one(&runner, scenario);
            assert!(exact.error_model().is_none(), "exact carries no model");
            let exact_evs = headline_evs(&exact);

            for tier in [QosTier::Balanced, QosTier::Fast] {
                let mut tiered = scenario.clone();
                tiered.tier = tier;
                let approx = run_one(&runner, &tiered);
                let em = *approx.error_model().unwrap_or_else(|| {
                    panic!("scenario `{}` ({tier:?}): no error model", scenario.id)
                });
                assert_eq!(em.tier, tier);

                let approx_evs = headline_evs(&approx);
                assert_eq!(exact_evs.len(), approx_evs.len());
                for ((name, e), (_, a)) in exact_evs.iter().zip(&approx_evs) {
                    let bound = em.bound_for(*e);
                    assert!(
                        (a - e).abs() <= bound,
                        "suite `{suite_name}` scenario `{}` tier {tier:?}: {name} deviates \
                         |{a} - {e}| = {} > bound {bound}",
                        scenario.id,
                        (a - e).abs()
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked > 50,
        "the corpus exercised the contract ({checked})"
    );
}
