//! The dispatcher's job registry: its own id space over *outcomes* —
//! raw `(status, body)` pairs as the owning shard produced them.
//!
//! The dispatcher deliberately does not re-model job results: a shard's
//! response bytes are the product the cluster sells, and storing them
//! verbatim is what lets the sync path relay byte-identically. The
//! lifecycle, retention and tombstone mechanics mirror `fq-serve`'s
//! registry (queued → forwarding → done, TTL + count bounds, `410` for
//! expired ids) so clients see one consistent polling contract whether
//! they talk to a shard or the front door.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use frozenqubits::JobId;

/// A shard's final answer for one job, verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Outcome {
    /// The HTTP status the shard (or the forwarder's shed path) chose.
    pub(crate) status: u16,
    /// The response body, byte-for-byte.
    pub(crate) body: String,
}

impl Outcome {
    /// Whether this outcome is a successful result document.
    pub(crate) fn is_ok(&self) -> bool {
        self.status == 200
    }
}

/// Where a dispatched job is in its lifecycle.
#[derive(Clone, Debug)]
pub(crate) enum DispatchState {
    /// Accepted, waiting for a forwarder.
    Queued,
    /// A forwarder is walking the candidate shards.
    Forwarding,
    /// The shard answered (or every candidate was exhausted).
    Done(Arc<Outcome>),
}

impl DispatchState {
    /// The wire name, matching the shard registry's vocabulary so a
    /// poll envelope reads the same from either tier. `Forwarding`
    /// reads as `running`: to the client the job is simply executing.
    pub(crate) fn status_name(&self) -> &'static str {
        match self {
            DispatchState::Queued => "queued",
            DispatchState::Forwarding => "running",
            DispatchState::Done(outcome) if outcome.is_ok() => "done",
            DispatchState::Done(_) => "failed",
        }
    }
}

/// What the registry knows about an id.
#[derive(Clone, Debug)]
pub(crate) enum Lookup {
    /// Live: queued, forwarding, or retained done.
    Active(DispatchState),
    /// Finished but expired by the TTL/count bound. → `410`.
    Expired,
    /// Never issued. → `404`.
    Unknown,
}

/// Aggregate counters for `/v1/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct JobCounts {
    pub(crate) submitted: u64,
    pub(crate) completed: u64,
    pub(crate) failed: u64,
    pub(crate) expired: u64,
}

/// Same retention rationale as the shard registry: enough tombstones to
/// answer `410` for any plausibly-held id, bounded.
const MAX_TOMBSTONES: usize = 65_536;

#[derive(Debug, Default)]
struct Inner {
    jobs: HashMap<u64, DispatchState>,
    done_order: VecDeque<(u64, Instant)>,
    tombstones: BTreeSet<u64>,
}

/// The shared outcome registry.
#[derive(Debug)]
pub(crate) struct OutcomeStore {
    inner: Mutex<Inner>,
    finished: Condvar,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    ttl: Duration,
    max_done: usize,
}

impl OutcomeStore {
    pub(crate) fn new(ttl: Duration, max_done: usize) -> OutcomeStore {
        OutcomeStore {
            inner: Mutex::new(Inner::default()),
            finished: Condvar::new(),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            ttl,
            max_done: max_done.max(1),
        }
    }

    fn prune(&self, inner: &mut Inner, now: Instant) {
        while let Some(&(id, done_at)) = inner.done_order.front() {
            let over_count = inner.done_order.len() > self.max_done;
            let over_ttl = now.duration_since(done_at) >= self.ttl;
            if !over_count && !over_ttl {
                break;
            }
            inner.done_order.pop_front();
            if inner.jobs.remove(&id).is_some() {
                inner.tombstones.insert(id);
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
        }
        while inner.tombstones.len() > MAX_TOMBSTONES {
            let oldest = *inner.tombstones.iter().next().expect("non-empty set");
            inner.tombstones.remove(&oldest);
        }
    }

    /// Mints a fresh dispatcher-side id and registers it as queued.
    pub(crate) fn register(&self) -> JobId {
        let id = JobId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        self.prune(&mut inner, Instant::now());
        inner.jobs.insert(id.value(), DispatchState::Queued);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes a registration whose queue push bounced.
    pub(crate) fn discard(&self, id: JobId) {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .jobs
            .remove(&id.value());
        self.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks `id` as claimed by a forwarder.
    pub(crate) fn mark_forwarding(&self, id: JobId) {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .jobs
            .insert(id.value(), DispatchState::Forwarding);
    }

    /// Records `id`'s outcome and wakes synchronous waiters.
    pub(crate) fn complete(&self, id: JobId, outcome: Outcome) {
        match outcome.is_ok() {
            true => self.completed.fetch_add(1, Ordering::Relaxed),
            false => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner
            .jobs
            .insert(id.value(), DispatchState::Done(Arc::new(outcome)));
        inner.done_order.push_back((id.value(), now));
        self.prune(&mut inner, now);
        drop(inner);
        self.finished.notify_all();
    }

    /// What the registry knows about `id`.
    pub(crate) fn lookup(&self, id: JobId) -> Lookup {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        self.prune(&mut inner, Instant::now());
        match inner.jobs.get(&id.value()) {
            Some(state) => Lookup::Active(state.clone()),
            None if inner.tombstones.contains(&id.value()) => Lookup::Expired,
            None => Lookup::Unknown,
        }
    }

    /// Blocks until `id` finishes or `timeout` elapses; returns the
    /// last observed state, or `None` for an unknown id.
    pub(crate) fn await_done(&self, id: JobId, timeout: Duration) -> Option<DispatchState> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        loop {
            let state = inner.jobs.get(&id.value())?.clone();
            if matches!(state, DispatchState::Done(_)) {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let (guard, _) = self
                .finished
                .wait_timeout(inner, deadline - now)
                .expect("registry lock poisoned");
            inner = guard;
        }
    }

    pub(crate) fn counts(&self) -> JobCounts {
        JobCounts {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok() -> Outcome {
        Outcome {
            status: 200,
            body: "{}".into(),
        }
    }

    #[test]
    fn lifecycle_counts_and_status_names() {
        let store = OutcomeStore::new(Duration::from_secs(3600), 4096);
        let a = store.register();
        let b = store.register();
        assert!(matches!(
            store.lookup(a),
            Lookup::Active(DispatchState::Queued)
        ));
        store.mark_forwarding(a);
        let Lookup::Active(state) = store.lookup(a) else {
            panic!("live")
        };
        assert_eq!(state.status_name(), "running");
        store.complete(a, ok());
        store.complete(
            b,
            Outcome {
                status: 503,
                body: "{}".into(),
            },
        );
        let Lookup::Active(done) = store.lookup(a) else {
            panic!("live")
        };
        assert_eq!(done.status_name(), "done");
        let Lookup::Active(failed) = store.lookup(b) else {
            panic!("live")
        };
        assert_eq!(failed.status_name(), "failed");
        assert_eq!(
            store.counts(),
            JobCounts {
                submitted: 2,
                completed: 1,
                failed: 1,
                expired: 0
            }
        );
        assert!(matches!(store.lookup(JobId::new(999)), Lookup::Unknown));
    }

    #[test]
    fn ttl_expiry_tombstones_like_the_shard_registry() {
        let store = OutcomeStore::new(Duration::from_millis(20), 4096);
        let id = store.register();
        store.complete(id, ok());
        std::thread::sleep(Duration::from_millis(30));
        assert!(matches!(store.lookup(id), Lookup::Expired));
        assert_eq!(store.counts().expired, 1);
    }

    #[test]
    fn fault_interrupted_failure_expires_instead_of_leaking() {
        // A job whose forwarding was cut short by faults completes with
        // a *failure* outcome (shed 503, upstream 502, ...). Failures
        // must ride the same retention train as successes: expired by
        // TTL, tombstoned, counted — never retained forever.
        let store = OutcomeStore::new(Duration::from_millis(20), 4096);
        let id = store.register();
        store.mark_forwarding(id);
        store.complete(
            id,
            Outcome {
                status: 503,
                body: "{\"error\":{\"kind\":\"cluster_saturated\"}}".into(),
            },
        );
        assert!(matches!(store.lookup(id), Lookup::Active(_)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            matches!(store.lookup(id), Lookup::Expired),
            "a failed outcome must expire like a successful one"
        );
        assert_eq!(store.counts().expired, 1);
        assert_eq!(store.counts().failed, 1);
    }

    #[test]
    fn count_bound_expires_oldest_done_first() {
        // The count bound alone (generous TTL) must expire the oldest
        // finished job and answer Expired for it, while the newer ones
        // stay pollable — the poll-after-expiry half of the 410
        // contract without waiting on wall-clock TTLs.
        let store = OutcomeStore::new(Duration::from_secs(3600), 2);
        let ids: Vec<JobId> = (0..3).map(|_| store.register()).collect();
        for &id in &ids {
            store.complete(id, ok());
        }
        // Completing the third pruned the first (max_done = 2).
        assert!(matches!(store.lookup(ids[0]), Lookup::Expired));
        assert!(matches!(store.lookup(ids[1]), Lookup::Active(_)));
        assert!(matches!(store.lookup(ids[2]), Lookup::Active(_)));
        assert_eq!(store.counts().expired, 1);
        // An id never issued still answers Unknown, not Expired.
        assert!(matches!(store.lookup(JobId::new(999)), Lookup::Unknown));
    }

    #[test]
    fn await_done_wakes_on_completion() {
        let store = Arc::new(OutcomeStore::new(Duration::from_secs(3600), 4096));
        let id = store.register();
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.await_done(id, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        store.complete(id, ok());
        assert_eq!(waiter.join().unwrap().unwrap().status_name(), "done");
    }
}
