//! **fq-dispatch** — a cluster front door over a fleet of `fq-serve`
//! shards, with template-affinity routing and telemetry-driven warm
//! transfer.
//!
//! One `fq-serve` process compiles each distinct circuit *template*
//! once and amortizes it across jobs via its template cache. Run N
//! shards behind naive round-robin and that property collapses: every
//! shard ends up compiling every template. This crate adds the tier
//! that preserves it — a dispatcher speaking exactly the shard wire
//! surface on the same hand-rolled `std::net` substrate:
//!
//! * **Template-affinity routing** ([`ring`]): jobs are routed by the
//!   rendezvous (highest-random-weight) hash of their template
//!   fingerprint, so each template's jobs concentrate on one shard and
//!   the fleet compiles each template ~once. Adding or removing a shard
//!   moves only the keys that shard owned.
//! * **Failure absorption**: transport errors and shard `503`s re-route
//!   to the next candidate with bounded backoff; engine errors relay
//!   verbatim (they are deterministic — a second shard would produce
//!   the same bytes). When every candidate is exhausted, the dispatcher
//!   sheds with the shards' own `503` + `retry-after` contract.
//! * **A sentinel** that probes `/v1/healthz` + `/v1/stats` +
//!   `/v1/templates` on every shard, promotes/demotes routing health,
//!   and continuously pushes compiled-template artifacts toward their
//!   rendezvous owners — a cold or newly joined shard is warmed while
//!   the cluster runs, no restarts.
//!
//! The contract that makes the tier honest: a synchronous `200` from
//! the dispatcher is the owning shard's response **byte-for-byte**, and
//! a shard's `200` is byte-identical to a direct
//! `BatchRunner` run — so fronting the fleet changes *where* a job
//! runs, never *what* comes back (pinned in `tests/dispatch_cluster.rs`
//! at the workspace root).
//!
//! | endpoint | what it does |
//! |----------|--------------|
//! | `POST /v1/jobs` | submit one spec; routed by fingerprint, relayed verbatim (sync), or `202` + dispatcher-side id (async / degraded) |
//! | `GET /v1/jobs/{id}` | poll a dispatcher-side job |
//! | `POST /v1/batch` | a JSON array of specs; scattered by affinity, merged in job order |
//! | `GET /v1/healthz` | dispatcher liveness |
//! | `GET /v1/stats` | shard roster + health + telemetry, queue, job counters, forward/re-route/shed/warm counters |
//! | `GET /v1/shards` | the shard roster |
//! | `POST /v1/shards` | admin join (`{"addr":"host:port"}`), bearer-token gated |
//!
//! From the shell: `cargo run --release -p fq-dispatch --bin dispatch --
//! --shard 127.0.0.1:8701 --shard 127.0.0.1:8702` (see the README's
//! "Running a cluster").

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod forward;
mod queue;
mod registry;
pub mod ring;
mod sentinel;
mod server;
mod shards;

pub use server::{DispatchConfig, DispatchHandle, Dispatcher};
pub use shards::{ProbeStats, ShardSnapshot};

// Dispatcher-side jobs reuse the core id type, like the shards do.
pub use frozenqubits::JobId;
