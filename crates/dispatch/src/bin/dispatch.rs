//! The `dispatch` binary: run the cluster front door over a fleet of
//! `fq-serve` shards.
//!
//! ```text
//! dispatch --shard HOST:PORT [--shard HOST:PORT ...]
//!          [--addr HOST:PORT] [--forwarders N] [--queue-capacity N]
//!          [--sync-wait-secs N] [--sentinel-interval-ms N]
//!          [--warm-batch N] [--retry-rounds N] [--retry-backoff-ms N]
//!          [--retry-backoff-cap-ms N] [--probe-timeout-ms N]
//!          [--job-ttl-secs N] [--max-done-jobs N]
//!          [--max-body BYTES] [--max-connections N]
//!          [--auth-token TOKEN]
//! ```
//!
//! Defaults listen on `127.0.0.1:8070`. `FQ_DISPATCH_ADDR` overrides
//! the default address and `FQ_AUTH_TOKEN` the default token (flags
//! beat the environment). At least one `--shard` is required; more can
//! join at runtime via `POST /v1/shards`. The token, when set, gates
//! `POST /v1/shards` here and is presented to shards on sentinel
//! template pushes — run one token cluster-wide.

use std::process::ExitCode;
use std::time::Duration;

use fq_dispatch::{DispatchConfig, Dispatcher};

const USAGE: &str = "usage: dispatch --shard HOST:PORT [--shard HOST:PORT ...]
                [--addr HOST:PORT] [--forwarders N] [--queue-capacity N]
                [--sync-wait-secs N] [--sentinel-interval-ms N]
                [--warm-batch N] [--retry-rounds N] [--retry-backoff-ms N]
                [--retry-backoff-cap-ms N] [--probe-timeout-ms N]
                [--job-ttl-secs N] [--max-done-jobs N]
                [--max-body BYTES] [--max-connections N]
                [--auth-token TOKEN]

Fronts a fleet of fq-serve shards with the shard job API:
  POST /v1/jobs             submit a JobSpec; routed by template affinity
  GET  /v1/jobs/{id}        poll a dispatcher-side submission
  POST /v1/batch            a JSON array of specs; scattered and merged in order
  GET  /v1/healthz          dispatcher liveness
  GET  /v1/stats            shard roster/health/telemetry + cluster counters
  GET  /v1/shards           the shard roster
  POST /v1/shards           admin join ({\"addr\":\"host:port\"}), token-gated

Jobs route to shards by rendezvous-hashing their template fingerprint,
so each compiled template concentrates on one shard. A background
sentinel probes shard health and stats, and pushes compiled templates
toward their rendezvous owners so cold or newly joined shards warm up
while the cluster runs.
FQ_DISPATCH_ADDR sets the default address and FQ_AUTH_TOKEN the default
token; flags win over the environment. FQ_FAULT_PLAN (chaos testing
only, e.g. `seed=7;dial:refuse:1/4;response:truncate:1/8`) arms
deterministic fault injection on the forwarding paths; never set it in
production.";

fn parse_args(args: &[String]) -> Result<Option<DispatchConfig>, String> {
    let fault_plan = fq_faults::FaultPlan::from_env("FQ_FAULT_PLAN")?;
    if fault_plan.is_some() {
        eprintln!(
            "fq-dispatch: FQ_FAULT_PLAN set — injecting chaos faults (never use in production)"
        );
    }
    let mut config = DispatchConfig {
        addr: std::env::var("FQ_DISPATCH_ADDR").unwrap_or_else(|_| "127.0.0.1:8070".into()),
        auth_token: std::env::var("FQ_AUTH_TOKEN").ok(),
        fault_plan: fault_plan.map(std::sync::Arc::new),
        ..DispatchConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let numeric = |what: &str| {
            value
                .parse::<usize>()
                .map_err(|_| format!("{what} must be an integer, got `{value}`"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--shard" => config.shards.push(value.clone()),
            "--auth-token" => config.auth_token = Some(value.clone()),
            "--forwarders" => config.forwarders = numeric("--forwarders")?,
            "--queue-capacity" => config.queue_capacity = numeric("--queue-capacity")?,
            "--sync-wait-secs" => {
                config.sync_wait = Duration::from_secs(numeric("--sync-wait-secs")? as u64);
            }
            "--sentinel-interval-ms" => {
                config.sentinel_interval =
                    Duration::from_millis(numeric("--sentinel-interval-ms")? as u64);
            }
            "--warm-batch" => config.warm_batch = numeric("--warm-batch")?,
            "--retry-rounds" => config.retry_rounds = numeric("--retry-rounds")?,
            "--retry-backoff-ms" => {
                config.retry_backoff = Duration::from_millis(numeric("--retry-backoff-ms")? as u64);
            }
            "--retry-backoff-cap-ms" => {
                config.retry_backoff_cap =
                    Duration::from_millis(numeric("--retry-backoff-cap-ms")? as u64);
            }
            "--probe-timeout-ms" => {
                config.probe_timeout = Duration::from_millis(numeric("--probe-timeout-ms")? as u64);
            }
            "--job-ttl-secs" => {
                config.job_ttl = Duration::from_secs(numeric("--job-ttl-secs")? as u64);
            }
            "--max-done-jobs" => config.max_done_jobs = numeric("--max-done-jobs")?,
            "--max-body" => config.max_body_bytes = numeric("--max-body")?,
            "--max-connections" => config.max_connections = numeric("--max-connections")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.shards.is_empty() {
        return Err("at least one --shard HOST:PORT is required".into());
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("dispatch: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let shards = config.shards.len();
    match Dispatcher::spawn(config) {
        Ok(handle) => {
            println!(
                "fq-dispatch listening on http://{} ({} shard{}); try: curl http://{}/v1/stats",
                handle.addr(),
                shards,
                if shards == 1 { "" } else { "s" },
                handle.addr()
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("dispatch: failed to start: {error}");
            ExitCode::FAILURE
        }
    }
}
