//! The sentinel: a background thread that turns shard telemetry into
//! routing health and continuous cache convergence.
//!
//! Each cycle it:
//!
//! 1. **Probes** every shard — `GET /v1/healthz` for liveness, `GET
//!    /v1/stats` for cache hit/miss, queue depth, in-flight workers and
//!    uptime, `GET /v1/templates` for the resident-template index — and
//!    promotes/demotes the entry in the shard table. This is the only
//!    path that promotes: the forwarder demotes on transport errors,
//!    the sentinel heals.
//! 2. **Converges warm state**: for every fingerprint resident
//!    somewhere in the fleet whose rendezvous *owner* does not hold it,
//!    fetch the artifact from a holder and `POST /v1/templates` it to
//!    the owner (bearer token attached when the cluster runs with
//!    auth). Bounded per cycle so convergence traffic never crowds out
//!    job traffic. This generalizes boot-time `--warm-from`: a cold or
//!    newly joined shard is warmed *continuously*, without restarting
//!    anything, and after a routing change templates follow their keys.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde::json::Value;

use crate::forward::{ConnPool, Metrics};
use crate::ring;
use crate::shards::{ProbeStats, ShardTable};

/// Sentinel cadence and convergence bounds.
#[derive(Clone, Debug)]
pub(crate) struct SentinelConfig {
    /// Time between probe/convergence cycles.
    pub(crate) interval: Duration,
    /// Most template pushes per cycle.
    pub(crate) warm_batch: usize,
    /// Read timeout on every probe and convergence request. Probes ask
    /// tiny questions of loopback-or-LAN peers; without this bound one
    /// stalled shard would wedge the whole cycle for the client
    /// default's 300 s, during which no other shard gets probed,
    /// promoted or warmed.
    pub(crate) probe_timeout: Duration,
    /// Chaos fault injection for the sentinel's own connections.
    pub(crate) fault_plan: Option<Arc<fq_faults::FaultPlan>>,
}

/// Spawns the sentinel thread; it exits promptly once `stop` is set.
pub(crate) fn spawn(
    table: Arc<ShardTable>,
    metrics: Arc<Metrics>,
    token: Option<String>,
    config: SentinelConfig,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("fq-dispatch-sentinel".into())
        .spawn(move || {
            let mut pool = ConnPool::new(token)
                .with_read_timeout(config.probe_timeout)
                .with_fault_plan(config.fault_plan.clone());
            while !stop.load(Ordering::SeqCst) {
                for addr in table.addrs() {
                    match probe(&mut pool, &addr) {
                        Ok((stats, templates)) => table.record_probe(&addr, stats, templates),
                        Err(()) => table.report_probe_failure(&addr),
                    }
                }
                converge(&mut pool, &table, &metrics, config.warm_batch);
                // Sleep in slices so shutdown is never interval-bound.
                let mut remaining = config.interval;
                while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
                    let slice = remaining.min(Duration::from_millis(50));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
        .expect("spawning the sentinel thread")
}

/// One shard probe: liveness, stats, template index. Any failure fails
/// the probe as a whole — partial telemetry is worse than stale.
fn probe(pool: &mut ConnPool, addr: &str) -> Result<(ProbeStats, Vec<String>), ()> {
    let healthz = pool
        .conn(addr)
        .request("GET", "/v1/healthz", None)
        .map_err(|_| ())?;
    if healthz.status != 200 {
        return Err(());
    }

    let stats = pool
        .conn(addr)
        .request("GET", "/v1/stats", None)
        .map_err(|_| ())?;
    let stats = Value::parse(&stats.body).map_err(|_| ())?;
    let u64_at = |path: &[&str]| -> u64 {
        let mut node = &stats;
        for key in path {
            match node.field(key) {
                Ok(next) => node = next,
                Err(_) => return 0,
            }
        }
        node.as_u64().unwrap_or(0)
    };
    let probe_stats = ProbeStats {
        hits: u64_at(&["cache", "hits"]),
        misses: u64_at(&["cache", "misses"]),
        queue_depth: u64_at(&["queue", "depth"]),
        busy: u64_at(&["workers", "busy"]),
        uptime_secs: u64_at(&["uptime_secs"]),
    };

    let index = pool
        .conn(addr)
        .request("GET", "/v1/templates", None)
        .map_err(|_| ())?;
    let index = Value::parse(&index.body).map_err(|_| ())?;
    let templates = index
        .field("templates")
        .and_then(|t| t.as_array())
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| {
                    e.field("fingerprint")
                        .and_then(|f| f.as_str())
                        .ok()
                        .map(str::to_string)
                })
                .collect()
        })
        .unwrap_or_default();

    Ok((probe_stats, templates))
}

/// One convergence pass: push up to `warm_batch` artifacts toward their
/// rendezvous owners. Works off the latest probe snapshot, so at most
/// one cycle of staleness; a push that raced an eviction is re-planned
/// next cycle.
fn converge(pool: &mut ConnPool, table: &ShardTable, metrics: &Metrics, warm_batch: usize) {
    let snapshot = table.snapshot();
    let healthy: Vec<&crate::shards::ShardSnapshot> =
        snapshot.iter().filter(|s| s.healthy && s.probed).collect();
    if healthy.len() < 2 {
        return; // nowhere to converge to (or from).
    }
    let addrs: Vec<String> = healthy.iter().map(|s| s.addr.clone()).collect();

    // fingerprint → healthy holders, deterministic order.
    let mut holders: std::collections::BTreeMap<&str, Vec<&str>> =
        std::collections::BTreeMap::new();
    for shard in &healthy {
        for fingerprint in &shard.templates {
            holders
                .entry(fingerprint.as_str())
                .or_default()
                .push(shard.addr.as_str());
        }
    }

    let mut pushed = 0usize;
    for (fingerprint, holding) in &holders {
        if pushed >= warm_batch {
            return;
        }
        let Some(owner) = ring::owner(fingerprint, &addrs) else {
            return;
        };
        if holding.iter().any(|addr| addr == owner) {
            continue; // already where it belongs.
        }
        // Relay the artifact bytes as-is: fetch from the first holder,
        // push to the owner. No decode on the dispatcher — the owner's
        // own integrity checks gate admission.
        let source = holding[0];
        let Ok(fetched) =
            pool.conn(source)
                .request("GET", &format!("/v1/templates/{fingerprint}"), None)
        else {
            continue;
        };
        if fetched.status != 200 {
            continue; // evicted since the probe; re-planned next cycle.
        }
        let owner = owner.clone();
        let Ok(stored) = pool
            .conn(&owner)
            .request("POST", "/v1/templates", Some(&fetched.body))
        else {
            continue;
        };
        if stored.status == 200 {
            metrics.warm_pushes.fetch_add(1, Ordering::Relaxed);
            pushed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Instant;

    #[test]
    fn probe_times_out_on_a_stalled_shard_instead_of_wedging() {
        // A "shard" that accepts the connection and then says nothing —
        // the slow-loris shape. Without the probe timeout this test
        // would block for the client default of 300 s.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stall = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(10));
            drop(stream);
        });

        let timeout = Duration::from_millis(200);
        let mut pool = ConnPool::new(None).with_read_timeout(timeout);
        let started = Instant::now();
        assert!(
            probe(&mut pool, &addr).is_err(),
            "a stalled probe must fail"
        );
        let elapsed = started.elapsed();
        assert!(
            elapsed >= Duration::from_millis(150) && elapsed < Duration::from_secs(5),
            "probe should fail at ~the read timeout, took {elapsed:?}"
        );
        stall.join().unwrap();
    }
}
