//! Rendezvous (highest-random-weight) hashing: the affinity map from
//! template fingerprints to shards.
//!
//! For each `(fingerprint, shard)` pair a stable 64-bit score is
//! computed; a fingerprint's candidate order is the shards sorted by
//! descending score. The properties the dispatcher leans on:
//!
//! * **Affinity** — the same fingerprint always ranks the same shard
//!   first, so jobs sharing a template land where that template is
//!   already compiled (the paper's compile-once economy survives
//!   horizontal scaling).
//! * **Minimal disruption** — removing a shard only moves the
//!   fingerprints it owned; every other fingerprint keeps its owner
//!   (unlike modulo hashing, where one departure reshuffles nearly
//!   everything). The failover order is the same ranking, so a dead
//!   shard's keys spread over the survivors instead of piling onto one.
//!
//! The hash is FNV-1a, the same family as the template fingerprints
//! themselves (`frozenqubits::store`) — deterministic across runs and
//! platforms, which keeps routing reproducible in tests and across a
//! fleet of dispatchers.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one byte slice, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The rendezvous score of `(fingerprint, shard)`. A `0xff` separator
/// (never part of an address or a hex fingerprint) keeps the pair
/// encoding unambiguous.
#[must_use]
pub fn score(fingerprint: &str, shard: &str) -> u64 {
    let state = fnv1a(FNV_OFFSET, fingerprint.as_bytes());
    let state = fnv1a(state, &[0xff]);
    fnv1a(state, shard.as_bytes())
}

/// Indices into `shards`, best candidate first, for `fingerprint`.
/// Deterministic: ties (practically unreachable with 64-bit scores)
/// break toward the lexicographically smaller address.
#[must_use]
pub fn rank(fingerprint: &str, shards: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by(|&a, &b| {
        score(fingerprint, &shards[a])
            .cmp(&score(fingerprint, &shards[b]))
            .reverse()
            .then_with(|| shards[a].cmp(&shards[b]))
    });
    order
}

/// The best candidate alone — the fingerprint's *owner*, where the
/// sentinel converges its template.
#[must_use]
pub fn owner<'a>(fingerprint: &str, shards: &'a [String]) -> Option<&'a String> {
    rank(fingerprint, shards).first().map(|&i| &shards[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:8077")).collect()
    }

    #[test]
    fn ranking_is_stable_and_total() {
        let pool = shards(5);
        let first = rank("00c0ffee00c0ffee", &pool);
        assert_eq!(first.len(), 5);
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation of all shards");
        for _ in 0..10 {
            assert_eq!(rank("00c0ffee00c0ffee", &pool), first);
        }
    }

    #[test]
    fn distinct_fingerprints_spread_over_shards() {
        let pool = shards(4);
        let mut owners = std::collections::BTreeSet::new();
        for i in 0..64 {
            let fp = format!("{i:016x}");
            owners.insert(owner(&fp, &pool).unwrap().clone());
        }
        // 64 fingerprints over 4 shards: every shard owns some.
        assert_eq!(owners.len(), 4);
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let full = shards(5);
        let removed = full[2].clone();
        let survivors: Vec<String> = full.iter().filter(|s| **s != removed).cloned().collect();
        for i in 0..128 {
            let fp = format!("{i:016x}");
            let before = owner(&fp, &full).unwrap().clone();
            let after = owner(&fp, &survivors).unwrap().clone();
            if before == removed {
                // Orphaned keys land on their *second* choice — the
                // same failover order the forwarder walks.
                let ranked = rank(&fp, &full);
                assert_eq!(after, full[ranked[1]]);
            } else {
                assert_eq!(before, after, "unaffected keys must not move");
            }
        }
    }

    #[test]
    fn scores_differ_by_both_inputs() {
        assert_ne!(score("a", "x"), score("b", "x"));
        assert_ne!(score("a", "x"), score("a", "y"));
        // The separator keeps ("ab","c") distinct from ("a","bc").
        assert_ne!(score("ab", "c"), score("a", "bc"));
    }
}
