//! The bounded queue between the dispatcher's accept path and its
//! forwarder pool — the same backpressure contract a shard's job queue
//! uses (non-blocking push, `503` when full, drain-then-stop close),
//! but carrying raw bodies: the dispatcher forwards bytes, it does not
//! parse specs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use frozenqubits::JobId;

/// One accepted submission awaiting a forwarder.
#[derive(Debug)]
pub(crate) struct QueuedForward {
    /// The dispatcher-side id minted for this submission.
    pub(crate) id: JobId,
    /// The request body, verbatim — relayed to the shard untouched.
    pub(crate) body: String,
    /// The routing fingerprint (empty for unparsable specs).
    pub(crate) fingerprint: String,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity — backpressure, try again later.
    Full,
    /// The dispatcher is shutting down.
    Closed,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<QueuedForward>,
    closed: bool,
}

/// A bounded MPMC queue of pending forwards.
#[derive(Debug)]
pub(crate) struct DispatchQueue {
    inner: Mutex<Inner>,
    capacity: usize,
    ready: Condvar,
}

impl DispatchQueue {
    /// A queue holding at most `capacity` pending forwards.
    pub(crate) fn new(capacity: usize) -> DispatchQueue {
        DispatchQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub(crate) fn push(&self, job: QueuedForward) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a forward is available or the queue is closed
    /// **and** drained; `None` tells a forwarder to exit.
    pub(crate) fn pop(&self) -> Option<QueuedForward> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Current number of pending forwards.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// The configured bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks the queue closed and wakes every waiting forwarder.
    /// Already queued forwards still drain.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> QueuedForward {
        QueuedForward {
            id: JobId::new(id),
            body: "{}".into(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn bounded_fifo_with_backpressure() {
        let queue = DispatchQueue::new(2);
        queue.push(job(1)).unwrap();
        queue.push(job(2)).unwrap();
        assert_eq!(queue.push(job(3)).unwrap_err(), PushError::Full);
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pop().unwrap().id, JobId::new(1));
        queue.push(job(3)).unwrap();
        assert_eq!(queue.pop().unwrap().id, JobId::new(2));
        assert_eq!(queue.pop().unwrap().id, JobId::new(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = DispatchQueue::new(4);
        queue.push(job(1)).unwrap();
        queue.close();
        assert_eq!(queue.push(job(2)).unwrap_err(), PushError::Closed);
        assert_eq!(queue.pop().unwrap().id, JobId::new(1));
        assert!(queue.pop().is_none());
    }
}
