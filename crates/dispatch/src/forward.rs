//! Forwarding one job to the cluster: walk the fingerprint's candidate
//! shards, relay the first real answer, and absorb shard failure.
//!
//! The invariants, in order of importance:
//!
//! * **Relay, don't re-model.** A shard's non-503 response — success
//!   *or* engine error — is final and returned verbatim. Engine errors
//!   are deterministic properties of the spec; retrying one elsewhere
//!   would burn a second shard's time to get the same bytes.
//! * **Retry only what another shard can fix.** Transport failures
//!   (dead shard) and `503`s (saturated shard) re-route to the next
//!   candidate, with one bounded backoff pass over the whole list
//!   before giving up.
//! * **Never double-submit.** `ShardConn` does not auto-resend, so a
//!   submission reaches at most one shard per attempt; re-routing after
//!   a transport error on the *write* is safe, and an error after the
//!   shard accepted surfaces as that shard's own response.
//! * **Shed with the shards' discipline.** When every candidate is
//!   unreachable or saturated, the outcome is the same `503` +
//!   `retry-after` contract a single shard uses — a client retry loop
//!   written for one shard works unchanged against the front door.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::time::{Duration, Instant};

use fq_serve::client::{HttpResponse, ShardConn};
use fq_serve::error::{error_body, status_for_kind};
use serde::json::Value;

use crate::registry::Outcome;
use crate::shards::ShardTable;

/// Retry/backoff/poll knobs for the forwarding path.
#[derive(Clone, Debug)]
pub(crate) struct ForwardPolicy {
    /// Full passes over the candidate list before shedding (≥ 1).
    pub(crate) rounds: usize,
    /// Sleep before the second pass; doubles each further pass. When a
    /// saturated shard answered `503` with a parseable `retry-after`,
    /// that value replaces the doubling schedule for the next pass —
    /// the shard knows its own queue better than our guess.
    pub(crate) backoff: Duration,
    /// Hard cap on any single inter-pass sleep, whichever schedule
    /// produced it: a shard advertising `retry-after: 3600` must not
    /// pin a forwarder thread for an hour.
    pub(crate) max_backoff: Duration,
    /// Poll cadence after a shard degrades a slow job to `202`.
    pub(crate) poll_interval: Duration,
    /// Longest the forwarder keeps polling a degraded job.
    pub(crate) poll_deadline: Duration,
}

impl Default for ForwardPolicy {
    fn default() -> ForwardPolicy {
        ForwardPolicy {
            rounds: 2,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            poll_interval: Duration::from_millis(50),
            poll_deadline: Duration::from_secs(300),
        }
    }
}

/// Cluster-level counters for `/v1/stats`.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    /// Jobs that got a real shard response.
    pub(crate) forwarded: AtomicU64,
    /// Candidate switches after a transport failure or shard `503`.
    pub(crate) rerouted: AtomicU64,
    /// Jobs shed with `503` after every candidate was exhausted.
    pub(crate) shed: AtomicU64,
    /// Template artifacts the sentinel pushed between shards.
    pub(crate) warm_pushes: AtomicU64,
}

/// One thread's keep-alive connections, one per shard. Never shared:
/// each forwarder worker, batch scatter thread and the sentinel owns
/// its own pool, so no lock sits on the request path.
#[derive(Debug)]
pub(crate) struct ConnPool {
    token: Option<String>,
    read_timeout: Option<Duration>,
    fault_plan: Option<std::sync::Arc<fq_faults::FaultPlan>>,
    conns: HashMap<String, ShardConn>,
}

impl ConnPool {
    pub(crate) fn new(token: Option<String>) -> ConnPool {
        ConnPool {
            token,
            read_timeout: None,
            fault_plan: None,
            conns: HashMap::new(),
        }
    }

    /// Caps how long any pooled connection waits for a response (the
    /// sentinel's probe bound); applies to connections created after
    /// the call, so set it before first use.
    pub(crate) fn with_read_timeout(mut self, timeout: Duration) -> ConnPool {
        self.read_timeout = Some(timeout);
        self
    }

    /// Arms chaos fault injection on every connection this pool creates
    /// (dial refusals, response truncation — see `fq-faults`).
    pub(crate) fn with_fault_plan(
        mut self,
        plan: Option<std::sync::Arc<fq_faults::FaultPlan>>,
    ) -> ConnPool {
        self.fault_plan = plan;
        self
    }

    /// The pooled connection to `addr`, created on first use.
    pub(crate) fn conn(&mut self, addr: &str) -> &mut ShardConn {
        self.conns.entry(addr.to_string()).or_insert_with(|| {
            let mut conn = ShardConn::new(addr);
            if let Some(token) = &self.token {
                conn.set_token(token);
            }
            if let Some(timeout) = self.read_timeout {
                conn.set_read_timeout(timeout);
            }
            if let Some(plan) = &self.fault_plan {
                conn.set_fault_plan(std::sync::Arc::clone(plan));
            }
            conn
        })
    }
}

use std::sync::atomic::Ordering;

/// Forwards one job body to the cluster and returns the outcome.
/// `fingerprint` is the routing key (empty when the spec did not parse
/// — such jobs still route, consistently, and the shard produces the
/// same error bytes it would have produced face to face).
pub(crate) fn forward_job(
    pool: &mut ConnPool,
    table: &ShardTable,
    policy: &ForwardPolicy,
    metrics: &Metrics,
    body: &str,
    fingerprint: &str,
) -> Outcome {
    let mut attempted = false;
    // The smallest `retry-after` any saturated shard advertised this
    // pass; when present it replaces the doubling schedule below.
    let mut advertised: Option<Duration> = None;
    for round in 0..policy.rounds.max(1) {
        if round > 0 {
            let doubling = policy.backoff * 2u32.saturating_pow(round as u32 - 1);
            let sleep = advertised
                .take()
                .unwrap_or(doubling)
                .min(policy.max_backoff);
            std::thread::sleep(sleep);
        }
        // Re-read the table each pass: the sentinel may have promoted a
        // shard back, or an admin may have joined one.
        for addr in table.candidates(fingerprint) {
            if attempted {
                metrics.rerouted.fetch_add(1, Ordering::Relaxed);
            }
            attempted = true;
            match pool.conn(&addr).request("POST", "/v1/jobs", Some(body)) {
                Err(_) => {
                    table.report_transport_failure(&addr);
                    continue;
                }
                Ok(response) if response.status == 503 => {
                    if let Some(hint) = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<u64>().ok())
                        .map(Duration::from_secs)
                    {
                        advertised = Some(advertised.map_or(hint, |a| a.min(hint)));
                    }
                    continue;
                }
                Ok(response) if response.status == 202 => {
                    let outcome = resolve_degraded(pool, &addr, &response, policy);
                    metrics.forwarded.fetch_add(1, Ordering::Relaxed);
                    return outcome;
                }
                Ok(response) => {
                    metrics.forwarded.fetch_add(1, Ordering::Relaxed);
                    return Outcome {
                        status: response.status,
                        body: response.body,
                    };
                }
            }
        }
    }
    metrics.shed.fetch_add(1, Ordering::Relaxed);
    Outcome {
        status: 503,
        body: error_body(
            "cluster_saturated",
            "every shard candidate is unreachable or saturated; retry later",
        ),
    }
}

/// A shard accepted the job but degraded to `202` (its `sync_wait`
/// elapsed). Poll its job endpoint until the job finishes, then
/// reconstruct the synchronous response: `200` + the bare canonical
/// result for success (byte-identical — the envelope embeds the
/// canonical document and canonical JSON round-trips exactly), or the
/// shard's error envelope + mapped status for failure.
fn resolve_degraded(
    pool: &mut ConnPool,
    addr: &str,
    accepted: &HttpResponse,
    policy: &ForwardPolicy,
) -> Outcome {
    let upstream = |message: &str| Outcome {
        status: 502,
        body: error_body("upstream", message),
    };
    let Some(location) = accepted.header("location").map(str::to_string) else {
        return upstream("shard sent 202 without a location header");
    };
    let deadline = Instant::now() + policy.poll_deadline;
    loop {
        std::thread::sleep(policy.poll_interval);
        if Instant::now() >= deadline {
            return Outcome {
                status: 504,
                body: error_body(
                    "upstream_timeout",
                    &format!("shard {addr} did not finish {location} within the poll deadline"),
                ),
            };
        }
        // Transport hiccups mid-poll are retried until the deadline —
        // the job is already running remotely; walking away would
        // orphan it and polls are idempotent.
        let Ok(response) = pool.conn(addr).request("GET", &location, None) else {
            continue;
        };
        match response.status {
            200 => {}
            404 | 410 => {
                return upstream(&format!(
                    "shard {addr} expired {location} before the result was relayed"
                ))
            }
            _ => continue,
        }
        let Ok(envelope) = Value::parse(&response.body) else {
            return upstream("unparsable poll envelope");
        };
        let status = envelope
            .field("status")
            .and_then(|s| s.as_str())
            .unwrap_or("");
        match status {
            "done" => {
                let Ok(result) = envelope.field("result") else {
                    return upstream("done envelope without a result");
                };
                return Outcome {
                    status: 200,
                    body: result.to_json(),
                };
            }
            "failed" => {
                let (kind, message) = match envelope.field("error") {
                    Ok(error) => (
                        error
                            .field("kind")
                            .and_then(|k| k.as_str())
                            .unwrap_or("internal")
                            .to_string(),
                        error
                            .field("message")
                            .and_then(|m| m.as_str())
                            .unwrap_or("")
                            .to_string(),
                    ),
                    Err(_) => ("internal".to_string(), response.body.clone()),
                };
                return Outcome {
                    status: status_for_kind(&kind),
                    body: error_body(&kind, &message),
                };
            }
            // queued / running: keep polling.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;

    fn policy() -> ForwardPolicy {
        ForwardPolicy {
            rounds: 2,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_secs(60),
            poll_interval: Duration::from_millis(1),
            poll_deadline: Duration::from_secs(5),
        }
    }

    /// A fake shard serving a fixed sequence of responses, one per
    /// request, over a single keep-alive connection.
    fn scripted_shard(responses: Vec<&'static str>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for response in responses {
                let mut content_length = 0usize;
                let mut line = String::new();
                loop {
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    let trimmed = line.trim_end();
                    if trimmed.is_empty() {
                        break;
                    }
                    if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                        content_length = v.trim().parse().unwrap();
                    }
                }
                let mut body = vec![0u8; content_length];
                std::io::Read::read_exact(&mut reader, &mut body).unwrap();
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        (addr, handle)
    }

    /// A fake shard answering every request on one connection with the
    /// same canned response.
    fn canned_shard(
        response: &'static str,
        requests: usize,
    ) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for _ in 0..requests {
                let mut content_length = 0usize;
                let mut line = String::new();
                loop {
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    let trimmed = line.trim_end();
                    if trimmed.is_empty() {
                        break;
                    }
                    if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                        content_length = v.trim().parse().unwrap();
                    }
                }
                let mut body = vec![0u8; content_length];
                std::io::Read::read_exact(&mut reader, &mut body).unwrap();
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        (addr, handle)
    }

    #[test]
    fn dead_primary_reroutes_to_the_survivor() {
        // The dead "shard" is a bound-then-dropped port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let (alive, shard) = canned_shard(
            "HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\n{\"ok\":true}",
            1,
        );
        let table = ShardTable::new(&[dead.clone(), alive.clone()]);
        // Pick a fingerprint whose rendezvous primary is the *dead*
        // shard, so the forward must actually fail over.
        let addrs = [dead.clone(), alive.clone()];
        let fingerprint = (0..)
            .map(|i| format!("{i:016x}"))
            .find(|fp| crate::ring::owner(fp, &addrs) == Some(&dead))
            .unwrap();
        let metrics = Metrics::default();
        let mut pool = ConnPool::new(None);
        let outcome = forward_job(&mut pool, &table, &policy(), &metrics, "{}", &fingerprint);
        assert_eq!(outcome.status, 200);
        assert_eq!(outcome.body, "{\"ok\":true}");
        assert_eq!(metrics.forwarded.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.rerouted.load(Ordering::Relaxed), 1);
        let snap = table.snapshot();
        assert!(!snap.iter().find(|s| s.addr == dead).unwrap().healthy);
        assert!(snap.iter().find(|s| s.addr == alive).unwrap().healthy);
        shard.join().unwrap();
    }

    #[test]
    fn engine_errors_relay_verbatim_without_retry() {
        let envelope = "HTTP/1.1 422 Unprocessable Entity\r\ncontent-length: 64\r\n\r\n{\"v\":1,\"error\":{\"kind\":\"invalid_config\",\"message\":\"bad layers\"}}";
        assert_eq!(
            64,
            "{\"v\":1,\"error\":{\"kind\":\"invalid_config\",\"message\":\"bad layers\"}}".len()
        );
        let (addr, shard) = canned_shard(envelope, 1);
        let table = ShardTable::new(&[addr]);
        let metrics = Metrics::default();
        let mut pool = ConnPool::new(None);
        let outcome = forward_job(&mut pool, &table, &policy(), &metrics, "{}", "abc");
        assert_eq!(outcome.status, 422);
        assert!(outcome.body.contains("invalid_config"));
        assert_eq!(metrics.rerouted.load(Ordering::Relaxed), 0, "no retry");
        shard.join().unwrap();
    }

    #[test]
    fn backoff_honors_the_shards_retry_after_over_its_own_schedule() {
        // The shard says "retry in 0 seconds"; the policy's own
        // schedule says 30. If the doubling schedule were still in
        // charge, this test would sit for 30 s — the harness timeout
        // alone makes that a failure.
        let saturated =
            "HTTP/1.1 503 Service Unavailable\r\nretry-after: 0\r\ncontent-length: 2\r\n\r\n{}";
        let ok = "HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\n{\"ok\":true}";
        let (addr, shard) = scripted_shard(vec![saturated, ok]);
        let table = ShardTable::new(&[addr]);
        let metrics = Metrics::default();
        let mut pool = ConnPool::new(None);
        let policy = ForwardPolicy {
            backoff: Duration::from_secs(30),
            ..policy()
        };
        let started = Instant::now();
        let outcome = forward_job(&mut pool, &table, &policy, &metrics, "{}", "abc");
        assert_eq!(outcome.status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retry-after: 0 must preempt the 30s doubling backoff (took {:?})",
            started.elapsed()
        );
        shard.join().unwrap();
    }

    #[test]
    fn advertised_retry_after_is_clamped_by_max_backoff() {
        // The shard asks for an hour; the policy caps any single sleep
        // at 10 ms, so the second pass still happens promptly.
        let saturated =
            "HTTP/1.1 503 Service Unavailable\r\nretry-after: 3600\r\ncontent-length: 2\r\n\r\n{}";
        let ok = "HTTP/1.1 200 OK\r\ncontent-length: 11\r\n\r\n{\"ok\":true}";
        let (addr, shard) = scripted_shard(vec![saturated, ok]);
        let table = ShardTable::new(&[addr]);
        let metrics = Metrics::default();
        let mut pool = ConnPool::new(None);
        let policy = ForwardPolicy {
            max_backoff: Duration::from_millis(10),
            ..policy()
        };
        let started = Instant::now();
        let outcome = forward_job(&mut pool, &table, &policy, &metrics, "{}", "abc");
        assert_eq!(outcome.status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "retry-after: 3600 must be clamped by max_backoff (took {:?})",
            started.elapsed()
        );
        shard.join().unwrap();
    }

    #[test]
    fn all_candidates_dead_sheds_with_503() {
        let dead: Vec<String> = (0..2)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().to_string()
            })
            .collect();
        let table = ShardTable::new(&dead);
        let metrics = Metrics::default();
        let mut pool = ConnPool::new(None);
        let outcome = forward_job(&mut pool, &table, &policy(), &metrics, "{}", "abc");
        assert_eq!(outcome.status, 503);
        assert!(outcome.body.contains("cluster_saturated"));
        assert_eq!(metrics.shed.load(Ordering::Relaxed), 1);
    }
}
