//! The dispatcher process: configuration, the accept loop, and the
//! front-door endpoints.
//!
//! The data path mirrors a shard's — deliberately:
//!
//! ```text
//! TcpListener ──▶ connection threads ──▶ bounded queue ──▶ forwarder pool
//!                      (mint JobId,           │                 │
//!                       fingerprint)          ▼                 ▼
//!                                        503 when full    candidate shards
//!                                                         (rendezvous order,
//!                                                          retry/re-route)
//! ```
//!
//! `POST /v1/jobs` and `GET /v1/jobs/{id}` speak exactly the shard wire
//! surface, so a client cannot tell the front door from a shard — sync
//! `200` bodies are the shard's bytes verbatim, which is what makes the
//! cluster byte-identical to a single runner. `POST /v1/batch` scatters
//! a JSON array of specs across the fleet and merges the outcomes in
//! job order.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fq_serve::error::error_response;
use fq_serve::http::{self, ReadError, Request, Response};
use fq_serve::wire::{submit_ack, WIRE_V};
use frozenqubits::{FqError, JobId, JobSpec};
use serde::json::Value;

use crate::forward::{forward_job, ConnPool, ForwardPolicy, Metrics};
use crate::queue::{DispatchQueue, PushError, QueuedForward};
use crate::registry::{DispatchState, Lookup, Outcome, OutcomeStore};
use crate::sentinel::{self, SentinelConfig};
use crate::shards::ShardTable;

/// Dispatcher configuration. Start from [`DispatchConfig::default`],
/// set [`shards`](DispatchConfig::shards), override the rest as needed.
#[derive(Clone, Debug)]
pub struct DispatchConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub addr: String,
    /// The shard addresses (`host:port`) to scatter over. At least one
    /// is required; more can join at runtime via `POST /v1/shards`.
    pub shards: Vec<String>,
    /// Forwarder threads draining the queue — the dispatcher's analogue
    /// of a shard's workers. `0` is legal (jobs queue without
    /// forwarding; backpressure tests).
    pub forwarders: usize,
    /// Bound on queued-but-unclaimed jobs; beyond it → `503`.
    pub queue_capacity: usize,
    /// How long a finished outcome is retained for polling.
    pub job_ttl: Duration,
    /// Most finished outcomes retained at once.
    pub max_done_jobs: usize,
    /// How long a synchronous submission waits before degrading to
    /// `202` (same contract as a shard).
    pub sync_wait: Duration,
    /// Largest accepted request body — batches are arrays, so the
    /// default is generous relative to a shard's.
    pub max_body_bytes: usize,
    /// Socket read timeout (single-read bound).
    pub read_timeout: Duration,
    /// Wall-clock budget for receiving one complete request.
    pub request_deadline: Duration,
    /// Most concurrent connections; beyond it → immediate `503`.
    pub max_connections: usize,
    /// Bearer token: gates `POST /v1/shards` here and is presented to
    /// shards on template pushes (one cluster-wide token).
    pub auth_token: Option<String>,
    /// Sentinel probe/convergence cadence.
    pub sentinel_interval: Duration,
    /// Most warm-transfer pushes per sentinel cycle.
    pub warm_batch: usize,
    /// Retry/backoff/poll policy for the forwarding path.
    pub retry_rounds: usize,
    /// Sleep before the second candidate pass; doubles per pass. A
    /// saturated shard's `retry-after` header, when present, replaces
    /// this schedule for the next pass.
    pub retry_backoff: Duration,
    /// Hard cap on any single inter-pass sleep, whether it came from
    /// the doubling schedule or a shard's `retry-after`.
    pub retry_backoff_cap: Duration,
    /// Poll cadence for shard-degraded (`202`) jobs.
    pub poll_interval: Duration,
    /// Longest a degraded job is polled before `504`.
    pub poll_deadline: Duration,
    /// Read timeout on every sentinel probe/convergence request, so one
    /// stalled shard cannot wedge a probe cycle.
    pub probe_timeout: Duration,
    /// Chaos fault injection (see `fq-faults`): armed on the accept
    /// path, every forwarder/batch/sentinel connection pool, and
    /// nothing else. `None` (the default and only production setting)
    /// costs nothing.
    pub fault_plan: Option<Arc<fq_faults::FaultPlan>>,
}

impl Default for DispatchConfig {
    fn default() -> DispatchConfig {
        DispatchConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            forwarders: 8,
            queue_capacity: 256,
            job_ttl: Duration::from_secs(3600),
            max_done_jobs: 4096,
            sync_wait: Duration::from_secs(120),
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(60),
            max_connections: 256,
            auth_token: None,
            sentinel_interval: Duration::from_secs(2),
            warm_batch: 8,
            retry_rounds: 2,
            retry_backoff: Duration::from_millis(50),
            retry_backoff_cap: Duration::from_secs(2),
            poll_interval: Duration::from_millis(50),
            poll_deadline: Duration::from_secs(300),
            probe_timeout: Duration::from_secs(2),
            fault_plan: None,
        }
    }
}

impl DispatchConfig {
    fn policy(&self) -> ForwardPolicy {
        ForwardPolicy {
            rounds: self.retry_rounds,
            backoff: self.retry_backoff,
            max_backoff: self.retry_backoff_cap,
            poll_interval: self.poll_interval,
            poll_deadline: self.poll_deadline,
        }
    }
}

/// Everything the request handlers share.
#[derive(Debug)]
struct DispatchState2 {
    queue: Arc<DispatchQueue>,
    store: Arc<OutcomeStore>,
    table: Arc<ShardTable>,
    metrics: Arc<Metrics>,
    config: DispatchConfig,
    started: Instant,
}

/// The dispatcher service. [`Dispatcher::spawn`] starts it on
/// background threads and returns a [`DispatchHandle`].
#[derive(Debug)]
pub struct Dispatcher;

impl Dispatcher {
    /// Binds, spawns the forwarder pool, the sentinel and the accept
    /// loop, and returns.
    ///
    /// # Errors
    ///
    /// [`FqError::InvalidConfig`] for an empty shard list or zero
    /// `queue_capacity`/`max_connections`; [`FqError::Io`] for bind
    /// failures.
    pub fn spawn(config: DispatchConfig) -> Result<DispatchHandle, FqError> {
        if config.shards.is_empty() {
            return Err(FqError::InvalidConfig(
                "at least one shard address is required".into(),
            ));
        }
        if config.queue_capacity == 0 {
            return Err(FqError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if config.max_connections == 0 {
            return Err(FqError::InvalidConfig(
                "max_connections must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let queue = Arc::new(DispatchQueue::new(config.queue_capacity));
        let store = Arc::new(OutcomeStore::new(config.job_ttl, config.max_done_jobs));
        let table = Arc::new(ShardTable::new(&config.shards));
        let metrics = Arc::new(Metrics::default());
        let stop = Arc::new(AtomicBool::new(false));

        let forwarders: Vec<JoinHandle<()>> = (0..config.forwarders)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let table = Arc::clone(&table);
                let metrics = Arc::clone(&metrics);
                let policy = config.policy();
                let token = config.auth_token.clone();
                let fault_plan = config.fault_plan.clone();
                thread::Builder::new()
                    .name(format!("fq-dispatch-forward-{index}"))
                    .spawn(move || {
                        let mut pool = ConnPool::new(token).with_fault_plan(fault_plan);
                        while let Some(job) = queue.pop() {
                            store.mark_forwarding(job.id);
                            let outcome = forward_job(
                                &mut pool,
                                &table,
                                &policy,
                                &metrics,
                                &job.body,
                                &job.fingerprint,
                            );
                            store.complete(job.id, outcome);
                        }
                    })
                    .expect("spawning a forwarder thread")
            })
            .collect();

        let sentinel = sentinel::spawn(
            Arc::clone(&table),
            Arc::clone(&metrics),
            config.auth_token.clone(),
            SentinelConfig {
                interval: config.sentinel_interval,
                warm_batch: config.warm_batch,
                probe_timeout: config.probe_timeout,
                fault_plan: config.fault_plan.clone(),
            },
            Arc::clone(&stop),
        );

        let state = Arc::new(DispatchState2 {
            queue: Arc::clone(&queue),
            store,
            table,
            metrics,
            config,
            started: Instant::now(),
        });
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("fq-dispatch-accept".into())
                .spawn(move || accept_loop(&listener, &state, &stop))
                .map_err(|e| FqError::Io(format!("spawning the accept thread: {e}")))?
        };

        Ok(DispatchHandle {
            addr,
            stop,
            accept: Some(accept),
            forwarders,
            sentinel: Some(sentinel),
            queue,
        })
    }
}

/// A running dispatcher: address discovery plus orderly shutdown.
/// Dropping the handle shuts everything down, like a shard's handle.
#[derive(Debug)]
pub struct DispatchHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    forwarders: Vec<JoinHandle<()>>,
    sentinel: Option<JoinHandle<()>>,
    queue: Arc<DispatchQueue>,
}

impl DispatchHandle {
    /// The actual bound address (resolves `:0` ephemeral binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued jobs through the forwarders, and
    /// joins every background thread.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    /// Blocks for the dispatcher's lifetime (the binary's main loop).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.close();
        for handle in self.forwarders.drain(..) {
            let _ = handle.join();
        }
        if let Some(sentinel) = self.sentinel.take() {
            let _ = sentinel.join();
        }
    }
}

impl Drop for DispatchHandle {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

/// Decrements the live-connection count even if a handler panics.
struct ConnectionSlot(Arc<std::sync::atomic::AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses an over-cap connection with `503`, then drains the client's
/// already-sent request bytes before closing — closing with unread data
/// in the receive queue would RST the response away (same discipline as
/// the shard accept loop).
fn shed_connection(mut stream: TcpStream) {
    let _ = error_response(503, "overloaded", "connection limit reached")
        .write(&mut stream, false)
        .and_then(|()| stream.shutdown(std::net::Shutdown::Write));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 4096];
    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {}
}

fn accept_loop(listener: &TcpListener, state: &Arc<DispatchState2>, stop: &Arc<AtomicBool>) {
    let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => {
                thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if active.load(Ordering::SeqCst) >= state.config.max_connections {
            shed_connection(stream);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let slot = ConnectionSlot(Arc::clone(&active));
        let state = Arc::clone(state);
        let stop = Arc::clone(stop);
        let spawned = thread::Builder::new()
            .name("fq-dispatch-conn".into())
            .spawn(move || {
                let _slot = slot;
                handle_connection(stream, &state, &stop);
            });
        drop(spawned);
    }
}

/// One connection: keep-alive loop of read → route → respond, on the
/// exact framing substrate the shards use (`fq_serve::http`).
fn handle_connection(mut stream: TcpStream, state: &Arc<DispatchState2>, stop: &Arc<AtomicBool>) {
    if let Some(plan) = &state.config.fault_plan {
        use fq_faults::{FaultKind, FaultSite};
        match plan.roll(FaultSite::Accept) {
            // Same semantics as the shard accept hook: drop before
            // reading (client sees a reset) or sit on the connection.
            Some(FaultKind::Refuse) => return,
            Some(FaultKind::Stall(ms)) => thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
    }
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(http::DeadlineReader::new(read_half));
    loop {
        reader.get_mut().arm(state.config.request_deadline);
        match http::read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                let response = handle_request(state, &request);
                if response.write(&mut stream, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(error) => {
                if let Some(status) = error.status() {
                    let kind = match &error {
                        ReadError::PayloadTooLarge { .. } => "payload_too_large",
                        ReadError::NotImplemented(_) => "not_implemented",
                        ReadError::VersionNotSupported(_) => "http_version",
                        _ => "bad_request",
                    };
                    let _ =
                        error_response(status, kind, &error.message()).write(&mut stream, false);
                }
                return;
            }
        }
    }
}

/// Routes and executes one request.
fn handle_request(state: &DispatchState2, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => Response::json(
            200,
            Value::object(vec![
                ("v", Value::UInt(WIRE_V)),
                ("status", Value::string("ok")),
            ])
            .to_json(),
        ),
        (_, "/v1/healthz") => method_not_allowed(request, "GET"),
        ("GET", "/v1/stats") => Response::json(200, stats_body(state)),
        (_, "/v1/stats") => method_not_allowed(request, "GET"),
        ("POST", "/v1/jobs") => handle_submit(state, request),
        (_, "/v1/jobs") => method_not_allowed(request, "POST"),
        ("POST", "/v1/batch") => handle_batch(state, request),
        (_, "/v1/batch") => method_not_allowed(request, "POST"),
        ("GET", "/v1/shards") => Response::json(200, shards_body(state)),
        ("POST", "/v1/shards") => match authorized(state, request) {
            true => handle_shard_join(state, request),
            false => error_response(
                401,
                "unauthorized",
                "POST /v1/shards requires `authorization: Bearer <token>`",
            ),
        },
        (_, "/v1/shards") => method_not_allowed(request, "GET, POST"),
        (method, path) => {
            if let Some(raw_id) = path.strip_prefix("/v1/jobs/") {
                if raw_id.is_empty() || raw_id.contains('/') {
                    return not_found(path);
                }
                if method != "GET" {
                    return method_not_allowed(request, "GET");
                }
                return match raw_id.parse::<JobId>() {
                    Ok(id) => handle_job_poll(state, id),
                    Err(FqError::Serde(message)) => error_response(400, "bad_request", &message),
                    Err(other) => error_response(400, "bad_request", &other.to_string()),
                };
            }
            not_found(path)
        }
    }
}

fn not_found(path: &str) -> Response {
    error_response(404, "not_found", &format!("no route for `{path}`"))
}

fn method_not_allowed(request: &Request, allow: &'static str) -> Response {
    error_response(
        405,
        "method_not_allowed",
        &format!("{} is not allowed here; allowed: {allow}", request.method),
    )
    .with_header("allow", allow)
}

/// Checks the bearer token gating the admin surface (mirrors the
/// shard-side gate on template pushes).
fn authorized(state: &DispatchState2, request: &Request) -> bool {
    match &state.config.auth_token {
        None => true,
        Some(token) => request
            .header("authorization")
            .and_then(|value| value.strip_prefix("Bearer "))
            .is_some_and(|presented| presented == token.as_str()),
    }
}

/// The routing key for a spec body: the fingerprint of the *last* unit
/// the engine would compile (the frozen-side template for compare
/// jobs). A body that fails to parse or fingerprint routes under the
/// empty key — consistently, to a real shard, which then produces
/// exactly the error bytes it would have produced face to face. The
/// dispatcher never pre-judges a spec.
fn routing_fingerprint(body: &str) -> String {
    JobSpec::from_json(body)
        .ok()
        .and_then(|spec| spec.routing_fingerprint().ok())
        .unwrap_or_default()
}

/// `POST /v1/jobs`: mint an id, enqueue for forwarding, then sync-wait
/// or acknowledge — the shard submission contract, verbatim.
fn handle_submit(state: &DispatchState2, request: &Request) -> Response {
    let sync = match request.query_param("mode") {
        None | Some("sync") => true,
        Some("async") => false,
        Some(other) => {
            return error_response(
                400,
                "bad_request",
                &format!("unknown mode `{other}` (expected sync or async)"),
            )
        }
    };
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "request body is not valid UTF-8");
    };
    let fingerprint = routing_fingerprint(body);

    let id = state.store.register();
    let queued = QueuedForward {
        id,
        body: body.to_string(),
        fingerprint,
    };
    match state.queue.push(queued) {
        Ok(()) => {}
        Err(PushError::Full) => {
            state.store.discard(id);
            return error_response(
                503,
                "queue_full",
                &format!(
                    "dispatch queue is at capacity ({}); retry later",
                    state.queue.capacity()
                ),
            )
            .with_header("retry-after", "1");
        }
        Err(PushError::Closed) => {
            state.store.discard(id);
            return error_response(503, "shutting_down", "dispatcher is shutting down");
        }
    }

    if !sync {
        return Response::json(202, submit_ack(id))
            .with_header("location", format!("/v1/jobs/{id}"))
            .with_header("fq-job-id", id.to_string());
    }
    match state.store.await_done(id, state.config.sync_wait) {
        Some(DispatchState::Done(outcome)) => {
            // Relay the shard's answer byte-for-byte; a cluster-level
            // shed keeps the shards' retry-after discipline.
            let response = Response::json(outcome.status, outcome.body.clone())
                .with_header("fq-job-id", id.to_string());
            match outcome.status {
                503 => response.with_header("retry-after", "1"),
                _ => response,
            }
        }
        Some(pending) => Response::json(202, envelope(id, &pending))
            .with_header("location", format!("/v1/jobs/{id}"))
            .with_header("fq-job-id", id.to_string()),
        None => error_response(500, "internal", "job vanished from the registry"),
    }
}

/// `GET /v1/jobs/{id}`.
fn handle_job_poll(state: &DispatchState2, id: JobId) -> Response {
    match state.store.lookup(id) {
        Lookup::Active(job_state) => Response::json(200, envelope(id, &job_state)),
        Lookup::Expired => error_response(
            410,
            "expired",
            &format!("job `{id}` finished, but its result passed the retention bound (TTL/count) and was expired"),
        ),
        Lookup::Unknown => error_response(404, "not_found", &format!("no such job `{id}`")),
    }
}

/// The poll envelope, in the shards' vocabulary, built from the raw
/// outcome: the embedded result/error round-trips byte-exactly because
/// the document model is canonical.
fn envelope(id: JobId, state: &DispatchState) -> String {
    let mut pairs = vec![
        ("v", Value::UInt(WIRE_V)),
        ("id", Value::string(id.to_string())),
        ("status", Value::string(state.status_name())),
    ];
    if let DispatchState::Done(outcome) = state {
        if outcome.is_ok() {
            pairs.push(("result", Value::parse(&outcome.body).unwrap_or(Value::Null)));
        } else {
            let error = Value::parse(&outcome.body)
                .ok()
                .and_then(|v| v.field("error").ok().cloned())
                .unwrap_or_else(|| {
                    Value::object(vec![
                        ("kind", Value::string("upstream")),
                        ("message", Value::string(outcome.body.clone())),
                    ])
                });
            pairs.push(("error", error));
        }
    }
    Value::object(pairs).to_json()
}

/// `POST /v1/batch`: a JSON array of job specs, scattered over the
/// fleet and merged in job order.
///
/// Jobs are grouped by their fingerprint's primary shard; one scatter
/// thread per group forwards its jobs in order over a single keep-alive
/// connection. The response is `{"v":1,"results":[...]}` with one
/// `{"status":...,"body":...}` element per submitted spec, where a
/// `200` element's `body` is the shard's canonical result document —
/// byte-identical (after extraction) to a single `BatchRunner` run.
fn handle_batch(state: &DispatchState2, request: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "request body is not valid UTF-8");
    };
    let parsed = match Value::parse(body) {
        Ok(value) => value,
        Err(error) => return error_response(400, "bad_request", &error.to_string()),
    };
    let Value::Array(items) = parsed else {
        return error_response(
            400,
            "bad_request",
            "batch body must be a JSON array of job specs",
        );
    };

    // Canonical per-item bytes + routing keys.
    let jobs: Vec<(String, String)> = items
        .iter()
        .map(|item| {
            let body = item.to_json();
            let fingerprint = routing_fingerprint(&body);
            (body, fingerprint)
        })
        .collect();

    // Group job indices by primary shard so each group rides one
    // keep-alive connection in submission order.
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (index, (_, fingerprint)) in jobs.iter().enumerate() {
        let primary = state
            .table
            .candidates(fingerprint)
            .into_iter()
            .next()
            .unwrap_or_default();
        groups.entry(primary).or_default().push(index);
    }

    let policy = state.config.policy();
    let mut outcomes: Vec<Option<Outcome>> = vec![None; jobs.len()];
    let collected: Vec<(usize, Outcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .values()
            .map(|indices| {
                let jobs = &jobs;
                let table = &state.table;
                let metrics = &state.metrics;
                let policy = &policy;
                let token = state.config.auth_token.clone();
                let fault_plan = state.config.fault_plan.clone();
                scope.spawn(move || {
                    let mut pool = ConnPool::new(token).with_fault_plan(fault_plan);
                    indices
                        .iter()
                        .map(|&index| {
                            let (body, fingerprint) = &jobs[index];
                            let outcome =
                                forward_job(&mut pool, table, policy, metrics, body, fingerprint);
                            (index, outcome)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap_or_default())
            .collect()
    });
    for (index, outcome) in collected {
        outcomes[index] = Some(outcome);
    }

    let results: Vec<Value> = outcomes
        .into_iter()
        .map(|outcome| {
            let outcome = outcome.unwrap_or(Outcome {
                status: 500,
                body: fq_serve::error::error_body("internal", "scatter thread failed"),
            });
            Value::object(vec![
                ("status", Value::UInt(u64::from(outcome.status))),
                (
                    "body",
                    Value::parse(&outcome.body).unwrap_or_else(|_| Value::string(outcome.body)),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        Value::object(vec![
            ("v", Value::UInt(WIRE_V)),
            ("results", Value::Array(results)),
        ])
        .to_json(),
    )
}

/// `POST /v1/shards`: admin join — `{"addr":"host:port"}`.
fn handle_shard_join(state: &DispatchState2, request: &Request) -> Response {
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "request body is not valid UTF-8");
    };
    let addr = match Value::parse(body).and_then(|v| Ok(v.field("addr")?.as_str()?.to_string())) {
        Ok(addr) if !addr.is_empty() => addr,
        _ => {
            return error_response(
                400,
                "bad_request",
                "expected a JSON object with a non-empty `addr` string",
            )
        }
    };
    let joined = state.table.join(&addr);
    Response::json(
        200,
        Value::object(vec![
            ("v", Value::UInt(WIRE_V)),
            (
                "status",
                Value::string(if joined { "joined" } else { "already_present" }),
            ),
            ("shards", Value::UInt(state.table.addrs().len() as u64)),
        ])
        .to_json(),
    )
}

/// The shard roster with per-shard health and telemetry.
fn shards_array(state: &DispatchState2) -> Value {
    Value::Array(
        state
            .table
            .snapshot()
            .into_iter()
            .map(|shard| {
                Value::object(vec![
                    ("addr", Value::string(shard.addr)),
                    ("healthy", Value::Bool(shard.healthy)),
                    (
                        "consecutive_failures",
                        Value::UInt(u64::from(shard.consecutive_failures)),
                    ),
                    ("probed", Value::Bool(shard.probed)),
                    (
                        "cache",
                        Value::object(vec![
                            ("hits", Value::UInt(shard.stats.hits)),
                            ("misses", Value::UInt(shard.stats.misses)),
                        ]),
                    ),
                    ("queue_depth", Value::UInt(shard.stats.queue_depth)),
                    ("busy", Value::UInt(shard.stats.busy)),
                    ("uptime_secs", Value::UInt(shard.stats.uptime_secs)),
                    ("templates", Value::UInt(shard.templates.len() as u64)),
                ])
            })
            .collect(),
    )
}

fn shards_body(state: &DispatchState2) -> String {
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        ("shards", shards_array(state)),
    ])
    .to_json()
}

/// `GET /v1/stats`: the cluster view — shard roster, queue, job
/// counters, forwarding metrics, uptime.
fn stats_body(state: &DispatchState2) -> String {
    let counts = state.store.counts();
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        ("shards", shards_array(state)),
        (
            "queue",
            Value::object(vec![
                ("depth", Value::UInt(state.queue.depth() as u64)),
                ("capacity", Value::UInt(state.queue.capacity() as u64)),
            ]),
        ),
        (
            "jobs",
            Value::object(vec![
                ("submitted", Value::UInt(counts.submitted)),
                ("completed", Value::UInt(counts.completed)),
                ("failed", Value::UInt(counts.failed)),
                ("expired", Value::UInt(counts.expired)),
            ]),
        ),
        (
            "forward",
            Value::object(vec![
                (
                    "forwarded",
                    Value::UInt(state.metrics.forwarded.load(Ordering::Relaxed)),
                ),
                (
                    "rerouted",
                    Value::UInt(state.metrics.rerouted.load(Ordering::Relaxed)),
                ),
                (
                    "shed",
                    Value::UInt(state.metrics.shed.load(Ordering::Relaxed)),
                ),
                (
                    "warm_pushes",
                    Value::UInt(state.metrics.warm_pushes.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "uptime_secs",
            Value::UInt(state.started.elapsed().as_secs()),
        ),
    ])
    .to_json()
}
