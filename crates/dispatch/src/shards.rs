//! The shard table: every backend the dispatcher knows, with the health
//! and telemetry state the sentinel maintains.
//!
//! Health is optimistic-with-demotion: a shard starts healthy (a fresh
//! cluster must be routable before the first probe lands), the
//! forwarder demotes it the moment a transport error surfaces, and only
//! a successful sentinel probe promotes it back. The hot path never
//! waits on probes — it reads the flag and walks the candidate order.

use std::sync::Mutex;

use crate::ring;

/// One probe's worth of shard telemetry (`/v1/stats`, flattened to the
/// fields routing and warm transfer care about).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Template-cache hits since the shard booted.
    pub hits: u64,
    /// Template-cache misses (each one paid a compile).
    pub misses: u64,
    /// Jobs queued but unclaimed on the shard.
    pub queue_depth: u64,
    /// Workers mid-job on the shard.
    pub busy: u64,
    /// Seconds since the shard booted.
    pub uptime_secs: u64,
}

/// A point-in-time copy of one shard's entry, for `/v1/stats`, the
/// sentinel's warm planning, and tests.
#[derive(Clone, Debug)]
pub struct ShardSnapshot {
    /// The shard's `host:port`.
    pub addr: String,
    /// Whether the dispatcher currently routes to it.
    pub healthy: bool,
    /// Consecutive failed probes/forwards since the last success.
    pub consecutive_failures: u32,
    /// Whether at least one probe has succeeded (telemetry is real).
    pub probed: bool,
    /// Last probed telemetry.
    pub stats: ProbeStats,
    /// Last probed resident-template fingerprints.
    pub templates: Vec<String>,
}

#[derive(Debug)]
struct Shard {
    addr: String,
    healthy: bool,
    consecutive_failures: u32,
    probed: bool,
    stats: ProbeStats,
    templates: Vec<String>,
}

impl Shard {
    fn new(addr: String) -> Shard {
        Shard {
            addr,
            healthy: true,
            consecutive_failures: 0,
            probed: false,
            stats: ProbeStats::default(),
            templates: Vec::new(),
        }
    }
}

/// The shared, mutable table of shards.
#[derive(Debug)]
pub(crate) struct ShardTable {
    inner: Mutex<Vec<Shard>>,
}

impl ShardTable {
    /// A table over `addrs`, deduplicated, order preserved.
    pub(crate) fn new(addrs: &[String]) -> ShardTable {
        let mut seen = std::collections::BTreeSet::new();
        let shards = addrs
            .iter()
            .filter(|a| seen.insert((*a).clone()))
            .map(|a| Shard::new(a.clone()))
            .collect();
        ShardTable {
            inner: Mutex::new(shards),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Shard>> {
        self.inner.lock().expect("shard table lock poisoned")
    }

    /// Every configured shard address, in join order.
    pub(crate) fn addrs(&self) -> Vec<String> {
        self.lock().iter().map(|s| s.addr.clone()).collect()
    }

    /// Adds a shard at runtime (the admin join endpoint). Returns
    /// `false` if it was already present.
    pub(crate) fn join(&self, addr: &str) -> bool {
        let mut shards = self.lock();
        if shards.iter().any(|s| s.addr == addr) {
            return false;
        }
        shards.push(Shard::new(addr.to_string()));
        true
    }

    /// The candidate order for `fingerprint`: healthy shards in
    /// rendezvous order, then unhealthy ones (still in rendezvous
    /// order) as a last resort — when the whole fleet looks down, the
    /// forwarder should still *try* rather than shed unconditionally,
    /// because "down" may be one stale transport error old.
    pub(crate) fn candidates(&self, fingerprint: &str) -> Vec<String> {
        let shards = self.lock();
        let healthy: Vec<String> = shards
            .iter()
            .filter(|s| s.healthy)
            .map(|s| s.addr.clone())
            .collect();
        let unhealthy: Vec<String> = shards
            .iter()
            .filter(|s| !s.healthy)
            .map(|s| s.addr.clone())
            .collect();
        drop(shards);
        let mut order: Vec<String> = ring::rank(fingerprint, &healthy)
            .into_iter()
            .map(|i| healthy[i].clone())
            .collect();
        order.extend(
            ring::rank(fingerprint, &unhealthy)
                .into_iter()
                .map(|i| unhealthy[i].clone()),
        );
        order
    }

    /// A forward to `addr` failed at the transport layer: stop routing
    /// to it until a probe succeeds.
    pub(crate) fn report_transport_failure(&self, addr: &str) {
        let mut shards = self.lock();
        if let Some(shard) = shards.iter_mut().find(|s| s.addr == addr) {
            shard.healthy = false;
            shard.consecutive_failures = shard.consecutive_failures.saturating_add(1);
        }
    }

    /// A sentinel probe of `addr` failed.
    pub(crate) fn report_probe_failure(&self, addr: &str) {
        // Same demotion; kept separate so call sites read honestly.
        self.report_transport_failure(addr);
    }

    /// A sentinel probe of `addr` succeeded: promote and refresh
    /// telemetry.
    pub(crate) fn record_probe(&self, addr: &str, stats: ProbeStats, templates: Vec<String>) {
        let mut shards = self.lock();
        if let Some(shard) = shards.iter_mut().find(|s| s.addr == addr) {
            shard.healthy = true;
            shard.consecutive_failures = 0;
            shard.probed = true;
            shard.stats = stats;
            shard.templates = templates;
        }
    }

    /// Point-in-time copies of every entry.
    pub(crate) fn snapshot(&self) -> Vec<ShardSnapshot> {
        self.lock()
            .iter()
            .map(|s| ShardSnapshot {
                addr: s.addr.clone(),
                healthy: s.healthy,
                consecutive_failures: s.consecutive_failures,
                probed: s.probed,
                stats: s.stats,
                templates: s.templates.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ShardTable {
        ShardTable::new(&[
            "127.0.0.1:1".into(),
            "127.0.0.1:2".into(),
            "127.0.0.1:3".into(),
        ])
    }

    #[test]
    fn dedupes_and_joins() {
        let table = ShardTable::new(&["a:1".into(), "a:1".into(), "b:2".into()]);
        assert_eq!(table.addrs(), vec!["a:1", "b:2"]);
        assert!(table.join("c:3"));
        assert!(!table.join("a:1"));
        assert_eq!(table.addrs().len(), 3);
    }

    #[test]
    fn demotion_reorders_candidates_and_probe_restores() {
        let table = table();
        let before = table.candidates("00c0ffee00c0ffee");
        assert_eq!(before.len(), 3);

        // Demote the primary: it must drop to the back of the order but
        // never vanish.
        table.report_transport_failure(&before[0]);
        let after = table.candidates("00c0ffee00c0ffee");
        assert_eq!(after.len(), 3);
        assert_eq!(after.last(), Some(&before[0]));
        // Healthy shards keep their relative rendezvous order.
        assert_eq!(after[0], before[1]);

        table.record_probe(&before[0], ProbeStats::default(), vec![]);
        assert_eq!(table.candidates("00c0ffee00c0ffee"), before);
    }

    #[test]
    fn snapshot_carries_probe_telemetry() {
        let table = table();
        let stats = ProbeStats {
            hits: 7,
            misses: 2,
            queue_depth: 1,
            busy: 3,
            uptime_secs: 42,
        };
        table.record_probe("127.0.0.1:2", stats, vec!["00c0ffee00c0ffee".into()]);
        let snap = table
            .snapshot()
            .into_iter()
            .find(|s| s.addr == "127.0.0.1:2")
            .unwrap();
        assert!(snap.probed && snap.healthy);
        assert_eq!(snap.stats, stats);
        assert_eq!(snap.templates, vec!["00c0ffee00c0ffee"]);
        let other = table
            .snapshot()
            .into_iter()
            .find(|s| s.addr == "127.0.0.1:1")
            .unwrap();
        assert!(!other.probed, "unprobed entries say so");
    }
}
