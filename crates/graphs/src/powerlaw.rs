//! Degree-distribution statistics for identifying power-law structure and
//! hotspots (§3.1, Fig. 1b).

use serde::{Deserialize, Serialize};

use crate::Graph;

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Minimum degree.
    pub min: usize,
    /// Continuous maximum-likelihood power-law exponent
    /// `α = 1 + n / Σ ln(d_i / (d_min − ½))` over nodes with `d_i ≥ d_min`,
    /// with `d_min = 1`. `None` for degenerate inputs.
    pub alpha_mle: Option<f64>,
    /// Ratio of the mean degree of the top-k hotspots (k = max(1, n/100))
    /// to the overall mean — the "10 busiest airports have 10× the average
    /// connectivity" statistic of Fig. 1b.
    pub hotspot_ratio: f64,
    /// Gini coefficient of the degree distribution (0 = uniform).
    pub gini: f64,
}

/// Computes [`DegreeStats`] for a graph.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, powerlaw::degree_stats};
///
/// let ba = gen::barabasi_albert(300, 1, 2).unwrap();
/// let reg = gen::random_regular(300, 4, 2).unwrap();
/// // A BA graph concentrates edges in hotspots; a regular graph cannot.
/// assert!(degree_stats(&ba).hotspot_ratio > degree_stats(&reg).hotspot_ratio);
/// assert_eq!(degree_stats(&reg).gini, 0.0);
/// ```
#[must_use]
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let degrees = graph.degrees();
    let n = degrees.len();
    if n == 0 {
        return DegreeStats {
            mean: 0.0,
            max: 0,
            min: 0,
            alpha_mle: None,
            hotspot_ratio: 0.0,
            gini: 0.0,
        };
    }
    let sum: usize = degrees.iter().sum();
    let mean = sum as f64 / n as f64;
    let max = *degrees.iter().max().expect("non-empty");
    let min = *degrees.iter().min().expect("non-empty");

    // Clauset–Shalizi–Newman continuous MLE with x_min = 1.
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= 1)
        .map(|&d| d as f64)
        .collect();
    let alpha_mle = if tail.len() >= 2 {
        let s: f64 = tail.iter().map(|&d| (d / 0.5).ln()).sum();
        (s > 0.0).then(|| 1.0 + tail.len() as f64 / s)
    } else {
        None
    };

    let mut sorted = degrees.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = (n / 100).max(1);
    let hotspot_mean = sorted[..k].iter().sum::<usize>() as f64 / k as f64;
    let hotspot_ratio = if mean > 0.0 { hotspot_mean / mean } else { 0.0 };

    // Gini over the ascending-sorted degrees.
    sorted.reverse();
    let gini = if sum == 0 {
        0.0
    } else {
        let weighted: f64 = sorted
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * sum as f64)
    };

    DegreeStats {
        mean,
        max,
        min,
        alpha_mle,
        hotspot_ratio,
        gini,
    }
}

/// The degree histogram: `histogram[d]` = number of nodes with degree `d`.
#[must_use]
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let degrees = graph.degrees();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d] += 1;
    }
    hist
}

/// The top `k` hotspot nodes by degree (ties broken by lower index) —
/// exactly the nodes FrozenQubits freezes (§3.5).
#[must_use]
pub fn hotspots(graph: &Graph, k: usize) -> Vec<usize> {
    graph.nodes_by_degree().into_iter().take(k).collect()
}

/// How many edges are eliminated by freezing the given node set: incident
/// edges counted once even if both endpoints are frozen.
#[must_use]
pub fn edges_dropped_by_freezing(graph: &Graph, frozen: &[usize]) -> usize {
    let frozen_set: std::collections::BTreeSet<usize> = frozen.iter().copied().collect();
    graph
        .edges()
        .iter()
        .filter(|&&(i, j)| frozen_set.contains(&i) || frozen_set.contains(&j))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn ba_alpha_is_in_powerlaw_range() {
        let g = gen::barabasi_albert(1000, 1, 3).unwrap();
        let stats = degree_stats(&g);
        let alpha = stats.alpha_mle.expect("alpha defined");
        // BA graphs have theoretical exponent 3; MLE with x_min=1 lands lower
        // but must be clearly super-1.
        assert!(alpha > 1.2 && alpha < 4.5, "alpha = {alpha}");
        assert!(stats.gini > 0.2, "gini = {}", stats.gini);
    }

    #[test]
    fn regular_graph_has_zero_gini_and_unit_ratio() {
        let g = gen::random_regular(100, 3, 1).unwrap();
        let stats = degree_stats(&g);
        assert_eq!(stats.gini, 0.0);
        assert!((stats.hotspot_ratio - 1.0).abs() < 1e-12);
        assert_eq!(stats.max, 3);
        assert_eq!(stats.min, 3);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = gen::barabasi_albert(64, 2, 4).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 64);
    }

    #[test]
    fn hotspots_are_highest_degree() {
        let g = gen::star(10);
        assert_eq!(hotspots(&g, 1), vec![0]);
        assert_eq!(edges_dropped_by_freezing(&g, &[0]), 9);
    }

    #[test]
    fn freezing_two_adjacent_nodes_counts_shared_edge_once() {
        let g = gen::path(3); // edges (0,1), (1,2)
        assert_eq!(edges_dropped_by_freezing(&g, &[0, 1]), 2);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let stats = degree_stats(&Graph::new(0));
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.alpha_mle, None);
    }
}
