//! Error type for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and the random generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index was at or beyond the graph's node count.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// A self-loop `{i, i}` was requested.
    SelfLoop(usize),
    /// The undirected edge already exists.
    DuplicateEdge(usize, usize),
    /// Generator parameters are infeasible (e.g. `n·d` odd for a d-regular
    /// graph, or `d_BA >= n` for Barabási–Albert).
    InfeasibleParameters(String),
    /// A randomized generator exhausted its retry budget.
    GenerationFailed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for {num_nodes} nodes")
            }
            GraphError::SelfLoop(i) => write!(f, "self-loop on node {i} is not allowed"),
            GraphError::DuplicateEdge(i, j) => write!(f, "edge ({i}, {j}) already exists"),
            GraphError::InfeasibleParameters(msg) => write!(f, "infeasible parameters: {msg}"),
            GraphError::GenerationFailed(msg) => write!(f, "generation failed: {msg}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            GraphError::NodeOutOfRange {
                node: 3,
                num_nodes: 2,
            },
            GraphError::SelfLoop(0),
            GraphError::DuplicateEdge(0, 1),
            GraphError::InfeasibleParameters("x".into()),
            GraphError::GenerationFailed("y".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
