//! A minimal undirected simple graph.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// An undirected simple graph over nodes `0..num_nodes`.
///
/// Edges are stored once with the canonical orientation `i < j`; parallel
/// edges and self-loops are rejected, matching the problem graphs of the
/// paper (simple weighted graphs whose weights live in the Ising model, not
/// here).
///
/// # Example
///
/// ```
/// use fq_graphs::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// assert_eq!(g.degree(1), 2);
/// assert!(!g.is_connected()); // node 3 is isolated
/// # Ok::<(), fq_graphs::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
    edge_set: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// Creates an edgeless graph over `num_nodes` nodes.
    #[must_use]
    pub fn new(num_nodes: usize) -> Graph {
        Graph {
            num_nodes,
            edges: Vec::new(),
            edge_set: BTreeSet::new(),
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Graph::add_edge`].
    pub fn from_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Graph, GraphError> {
        let mut g = Graph::new(num_nodes);
        for (i, j) in edges {
            g.add_edge(i, j)?;
        }
        Ok(g)
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list with canonical orientation `i < j`, in insertion order.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Adds the undirected edge `{i, j}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for endpoints at or beyond
    /// `num_nodes`, [`GraphError::SelfLoop`] if `i == j`, and
    /// [`GraphError::DuplicateEdge`] if the edge already exists.
    pub fn add_edge(&mut self, i: usize, j: usize) -> Result<(), GraphError> {
        for k in [i, j] {
            if k >= self.num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: k,
                    num_nodes: self.num_nodes,
                });
            }
        }
        if i == j {
            return Err(GraphError::SelfLoop(i));
        }
        let key = (i.min(j), i.max(j));
        if !self.edge_set.insert(key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        self.edges.push(key);
        Ok(())
    }

    /// Whether the undirected edge `{i, j}` exists.
    #[must_use]
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.edge_set.contains(&(i.min(j), i.max(j)))
    }

    /// The degree of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_nodes`.
    #[must_use]
    pub fn degree(&self, i: usize) -> usize {
        assert!(i < self.num_nodes, "node out of range");
        self.edges
            .iter()
            .filter(|&&(a, b)| a == i || b == i)
            .count()
    }

    /// The degrees of all nodes.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes];
        for &(i, j) in &self.edges {
            deg[i] += 1;
            deg[j] += 1;
        }
        deg
    }

    /// Adjacency lists (neighbours in insertion order).
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for &(i, j) in &self.edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        adj
    }

    /// Whether the graph is connected (vacuously true for ≤ 1 node).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.num_nodes
    }

    /// Nodes sorted by degree, highest first; ties broken by lower index.
    #[must_use]
    pub fn nodes_by_degree(&self) -> Vec<usize> {
        let deg = self.degrees();
        let mut order: Vec<usize> = (0..self.num_nodes).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(deg[i]), i));
        order
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.num_nodes, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_canonicalizes_and_rejects_duplicates() {
        let mut g = Graph::new(3);
        g.add_edge(2, 0).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(matches!(
            g.add_edge(0, 2),
            Err(GraphError::DuplicateEdge(0, 2))
        ));
        assert!(matches!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1))));
        assert!(matches!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        assert_eq!(g.degrees().iter().sum::<usize>(), 2 * g.num_edges());
    }

    #[test]
    fn connectivity() {
        let connected = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(connected.is_connected());
        let disconnected = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
    }

    #[test]
    fn nodes_by_degree_orders_hotspots_first() {
        let g = Graph::from_edges(5, [(2, 0), (2, 1), (2, 3), (0, 4)]).unwrap();
        let order = g.nodes_by_degree();
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 0);
    }
}
