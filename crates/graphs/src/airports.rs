//! A synthetic stand-in for the U.S. airport connection network of Fig. 1b.
//!
//! The paper plots the degrees of ~1,300 U.S. airports (mean ≈ 26.5) and
//! observes that hub airports have roughly 10× the average connectivity.
//! The real dataset is proprietary flight data; we substitute a
//! preferential-attachment network with matching scale, which reproduces
//! the hub/hotspot structure that motivates FrozenQubits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{gen, Graph, GraphError};

/// Number of airports in the Fig. 1b dataset.
pub const DEFAULT_AIRPORTS: usize = 1_300;

/// Generates a synthetic airport-style network: a Barabási–Albert core
/// (hub formation) densified with degree-proportional extra routes until
/// the mean degree reaches ≈ `target_mean_degree`.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `n < 4` or the target
/// mean degree is not achievable (`target_mean_degree ≥ n − 1`).
///
/// # Example
///
/// ```
/// use fq_graphs::airports::synthetic_airport_network;
/// use fq_graphs::powerlaw::degree_stats;
///
/// let g = synthetic_airport_network(1300, 26.5, 0)?;
/// let stats = degree_stats(&g);
/// assert!((stats.mean - 26.5).abs() < 1.0);
/// assert!(stats.hotspot_ratio > 5.0); // hubs dominate, as in Fig. 1b
/// # Ok::<(), fq_graphs::GraphError>(())
/// ```
pub fn synthetic_airport_network(
    n: usize,
    target_mean_degree: f64,
    seed: u64,
) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(GraphError::InfeasibleParameters(
            "airport network needs at least 4 nodes".into(),
        ));
    }
    if target_mean_degree >= (n - 1) as f64 {
        return Err(GraphError::InfeasibleParameters(format!(
            "target mean degree {target_mean_degree} unreachable with {n} nodes"
        )));
    }
    let mut g = gen::barabasi_albert(n, 2, seed)?;
    let target_edges = ((target_mean_degree * n as f64) / 2.0).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x41_52_50)); // "ARP"

    // Densify with degree-proportional route additions (rich get richer).
    let mut endpoint_pool: Vec<usize> = g.edges().iter().flat_map(|&(a, b)| [a, b]).collect();
    let mut stall = 0usize;
    while g.num_edges() < target_edges && stall < 100_000 {
        // Both endpoints degree-proportional, so hub-to-hub routes dominate
        // and the hub/average ratio approaches the ~10x of Fig. 1b.
        let a = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
        let b = if rng.random::<f64>() < 0.7 {
            endpoint_pool[rng.random_range(0..endpoint_pool.len())]
        } else {
            rng.random_range(0..n)
        };
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b).expect("checked simple");
            endpoint_pool.push(a);
            endpoint_pool.push(b);
            stall = 0;
        } else {
            stall += 1;
        }
    }
    Ok(g)
}

/// The default Fig. 1b stand-in: 1,300 airports, mean degree ≈ 26.5.
///
/// # Errors
///
/// Propagates [`synthetic_airport_network`] errors (none for the default
/// parameters).
pub fn default_airport_network(seed: u64) -> Result<Graph, GraphError> {
    synthetic_airport_network(DEFAULT_AIRPORTS, 26.49, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::degree_stats;

    #[test]
    fn default_network_matches_fig1b_statistics() {
        let g = default_airport_network(7).unwrap();
        let stats = degree_stats(&g);
        assert_eq!(g.num_nodes(), DEFAULT_AIRPORTS);
        assert!((stats.mean - 26.49).abs() < 1.0, "mean = {}", stats.mean);
        // Paper: ten busiest airports have ~10x average connectivity.
        assert!(stats.hotspot_ratio > 5.0, "ratio = {}", stats.hotspot_ratio);
    }

    #[test]
    fn rejects_unreachable_targets() {
        assert!(synthetic_airport_network(3, 1.0, 0).is_err());
        assert!(synthetic_airport_network(10, 20.0, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_airport_network(100, 8.0, 1).unwrap();
        let b = synthetic_airport_network(100, 8.0, 1).unwrap();
        assert_eq!(a, b);
    }
}
