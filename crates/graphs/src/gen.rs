//! Random and deterministic graph generators (§4.1, Fig. 6).
//!
//! All randomized generators are deterministic functions of their `seed`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::{Graph, GraphError};

/// Generates a Barabási–Albert preferential-attachment graph with `n`
/// nodes and attachment factor `d` (`d_BA` in the paper).
///
/// The process mirrors the widely used implementation: `d` initial isolated
/// nodes; every subsequent node attaches to `d` distinct existing nodes
/// sampled with probability proportional to their current degree (uniformly
/// for the first arrival). `d = 1` produces the sparse power-law trees the
/// paper uses as its primary benchmark; `d = 2, 3` produce the denser
/// variants of Fig. 10.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] unless `1 ≤ d < n`.
///
/// # Example
///
/// ```
/// use fq_graphs::gen::barabasi_albert;
///
/// let g = barabasi_albert(50, 2, 1)?;
/// assert_eq!(g.num_edges(), 2 * (50 - 2)); // d·(n − d) attachments
/// assert!(g.is_connected());
/// # Ok::<(), fq_graphs::GraphError>(())
/// ```
pub fn barabasi_albert(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if d == 0 || d >= n {
        return Err(GraphError::InfeasibleParameters(format!(
            "barabasi-albert requires 1 <= d < n, got d={d}, n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    // Endpoint multiset: each node appears once per incident edge, so
    // uniform sampling from it is degree-proportional sampling.
    let mut repeated: Vec<usize> = Vec::with_capacity(2 * d * n);
    let mut targets: Vec<usize> = (0..d).collect();

    for source in d..n {
        for &t in &targets {
            g.add_edge(source, t)
                .expect("targets are distinct and valid");
            repeated.push(source);
            repeated.push(t);
        }
        // Sample d distinct next targets, degree-proportionally.
        let mut next = std::collections::BTreeSet::new();
        while next.len() < d {
            let pick = repeated[rng.random_range(0..repeated.len())];
            next.insert(pick);
        }
        targets = next.into_iter().collect();
    }
    Ok(g)
}

/// Generates a uniformly random `d`-regular graph via the configuration
/// (pairing) model with rejection, retried until a simple graph appears.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] unless `n·d` is even and
/// `d < n`, and [`GraphError::GenerationFailed`] if 1,000 pairing attempts
/// all produce self-loops or parallel edges (practically unreachable for
/// the 3-regular instances used in the paper).
///
/// # Example
///
/// ```
/// use fq_graphs::gen::random_regular;
///
/// let g = random_regular(16, 3, 9)?;
/// assert!(g.degrees().iter().all(|&deg| deg == 3));
/// # Ok::<(), fq_graphs::GraphError>(())
/// ```
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if !(n * d).is_multiple_of(2) || d >= n {
        return Err(GraphError::InfeasibleParameters(format!(
            "d-regular requires n*d even and d < n, got n={n}, d={d}"
        )));
    }
    if d == 0 {
        return Ok(Graph::new(n));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..1_000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut g = Graph::new(n);
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || g.has_edge(a, b) {
                continue 'attempt;
            }
            g.add_edge(a, b).expect("checked simple");
        }
        return Ok(g);
    }
    Err(GraphError::GenerationFailed(format!(
        "no simple {d}-regular pairing found for n={n} after 1000 attempts"
    )))
}

/// The complete graph `K_n` — the topology of the fully-connected
/// Sherrington–Kirkpatrick (SK) model benchmarks.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(i, j).expect("complete graph edges are simple");
        }
    }
    g
}

/// An Erdős–Rényi `G(n, p)` graph (not used by the paper's headline
/// figures, provided for ablation workloads).
#[must_use]
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let p = p.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                g.add_edge(i, j).expect("simple by construction");
            }
        }
    }
    g
}

/// Generates a power-law graph via the **erased configuration model**:
/// node degrees are sampled from a discrete power law `P(d) ∝ d^{−alpha}`
/// (truncated at `n − 1`), stubs are paired uniformly, and self-loops /
/// parallel edges are erased.
///
/// Unlike Barabási–Albert (whose exponent is fixed at 3 asymptotically),
/// this generator targets an arbitrary exponent — useful for matching
/// measured real-world distributions such as the airport network's.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] unless `n ≥ 2` and
/// `alpha > 1`.
///
/// # Example
///
/// ```
/// use fq_graphs::gen::powerlaw_configuration;
/// use fq_graphs::powerlaw::degree_stats;
///
/// let g = powerlaw_configuration(400, 2.2, 5)?;
/// let stats = degree_stats(&g);
/// assert!(stats.max > 10 * stats.min.max(1)); // heavy tail
/// # Ok::<(), fq_graphs::GraphError>(())
/// ```
pub fn powerlaw_configuration(n: usize, alpha: f64, seed: u64) -> Result<Graph, GraphError> {
    if n < 2 || alpha <= 1.0 {
        return Err(GraphError::InfeasibleParameters(format!(
            "configuration model needs n >= 2 and alpha > 1, got n={n}, alpha={alpha}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_degree = n - 1;
    // Inverse-CDF sampling of the zeta-like distribution over 1..=max.
    let weights: Vec<f64> = (1..=max_degree).map(|d| (d as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let sample_degree = |rng: &mut StdRng| -> usize {
        let mut u = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return i + 1;
            }
        }
        max_degree
    };
    let mut degrees: Vec<usize> = (0..n).map(|_| sample_degree(&mut rng)).collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] += 1; // even stub count
    }
    let mut stubs: Vec<usize> = degrees
        .iter()
        .enumerate()
        .flat_map(|(v, &d)| std::iter::repeat_n(v, d))
        .collect();
    stubs.shuffle(&mut rng);
    let mut g = Graph::new(n);
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b).expect("checked simple");
        }
    }
    Ok(g)
}

/// The cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n).expect("simple by construction");
    }
    g
}

/// The path `P_n` (n − 1 edges).
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i).expect("simple by construction");
    }
    g
}

/// The star `S_n`: node 0 is a maximal hotspot connected to all others —
/// the extreme case of the freezing argument (Fig. 1c is a 7-node star).
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(0, i).expect("simple by construction");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_d1_is_a_connected_tree() {
        for seed in 0..5 {
            let g = barabasi_albert(30, 1, seed).unwrap();
            assert_eq!(g.num_edges(), 29);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn ba_edge_count_formula() {
        for d in 1..=3 {
            let g = barabasi_albert(20, d, 3).unwrap();
            assert_eq!(g.num_edges(), d * (20 - d));
        }
    }

    #[test]
    fn ba_is_deterministic_per_seed() {
        let a = barabasi_albert(40, 2, 5).unwrap();
        let b = barabasi_albert(40, 2, 5).unwrap();
        let c = barabasi_albert(40, 2, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, 0).is_err());
        assert!(barabasi_albert(5, 5, 0).is_err());
    }

    #[test]
    fn ba_produces_skewed_degrees() {
        // Power law: the max degree should far exceed the mean (≈2 for d=1).
        let g = barabasi_albert(200, 1, 11).unwrap();
        let max = *g.degrees().iter().max().unwrap();
        assert!(max >= 8, "expected a hotspot, max degree {max}");
    }

    #[test]
    fn regular_graphs_are_regular() {
        for seed in 0..3 {
            let g = random_regular(20, 3, seed).unwrap();
            assert!(g.degrees().iter().all(|&d| d == 3));
            assert_eq!(g.num_edges(), 30);
        }
    }

    #[test]
    fn regular_rejects_odd_total_degree() {
        assert!(random_regular(5, 3, 0).is_err());
        assert!(random_regular(4, 4, 0).is_err());
        assert_eq!(random_regular(4, 0, 0).unwrap().num_edges(), 0);
    }

    #[test]
    fn complete_graph_edge_count() {
        assert_eq!(complete(10).num_edges(), 45);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn configuration_model_has_heavy_tail() {
        let g = powerlaw_configuration(500, 2.0, 1).unwrap();
        let stats = crate::powerlaw::degree_stats(&g);
        assert!(stats.max >= 20, "max degree {}", stats.max);
        assert!(stats.gini > 0.2, "gini {}", stats.gini);
    }

    #[test]
    fn configuration_model_exponent_tracks_target() {
        // Steeper target exponent -> lighter tail.
        let heavy = powerlaw_configuration(800, 1.8, 2).unwrap();
        let light = powerlaw_configuration(800, 3.5, 2).unwrap();
        let h = crate::powerlaw::degree_stats(&heavy);
        let l = crate::powerlaw::degree_stats(&light);
        assert!(h.max > l.max, "heavy max {} vs light max {}", h.max, l.max);
    }

    #[test]
    fn configuration_model_is_simple_and_seeded() {
        let a = powerlaw_configuration(100, 2.5, 7).unwrap();
        let b = powerlaw_configuration(100, 2.5, 7).unwrap();
        assert_eq!(a, b);
        // Simple graph: canonical edges, no duplicates (enforced by Graph).
        assert!(a.edges().iter().all(|&(i, j)| i < j));
    }

    #[test]
    fn configuration_model_rejects_bad_parameters() {
        assert!(powerlaw_configuration(1, 2.0, 0).is_err());
        assert!(powerlaw_configuration(10, 1.0, 0).is_err());
    }

    #[test]
    fn fixed_shapes() {
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
        let s = star(7);
        assert_eq!(s.num_edges(), 6);
        assert_eq!(s.degree(0), 6);
        assert_eq!(s.nodes_by_degree()[0], 0);
    }
}
