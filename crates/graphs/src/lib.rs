//! Benchmark graphs for the FrozenQubits evaluation (§4.1 of the paper).
//!
//! The paper studies three graph families — power-law Barabási–Albert
//! graphs with preferential-attachment factor `d_BA ∈ {1, 2, 3}`, random
//! 3-regular graphs, and fully-connected Sherrington–Kirkpatrick (SK)
//! graphs — with edge weights drawn uniformly from `{−1, +1}` and all node
//! weights zero. This crate provides those generators, a simple undirected
//! [`Graph`] type, power-law degree statistics ([`powerlaw`]) and the
//! synthetic airport network used to motivate the hotspot insight
//! (Fig. 1b).
//!
//! # Example
//!
//! ```
//! use fq_graphs::{gen, to_ising_pm1};
//!
//! let g = gen::barabasi_albert(24, 1, 42)?;
//! assert_eq!(g.num_edges(), 23); // a BA(d=1) graph is a tree
//! let model = to_ising_pm1(&g, 7);
//! assert!(model.has_zero_linear_terms());
//! # Ok::<(), fq_graphs::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airports;
mod error;
pub mod gen;
mod graph;
pub mod powerlaw;

pub use error::GraphError;
pub use graph::Graph;

use fq_ising::IsingModel;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Builds the Ising model of §4.1: one quadratic term per edge with weight
/// drawn uniformly from `{−1, +1}` (seeded), zero node weights, zero offset.
///
/// # Example
///
/// ```
/// use fq_graphs::{gen, to_ising_pm1};
///
/// let g = gen::complete(5);
/// let m = to_ising_pm1(&g, 0);
/// assert_eq!(m.num_couplings(), 10);
/// assert!(m.couplings().all(|(_, j)| j == 1.0 || j == -1.0));
/// ```
#[must_use]
pub fn to_ising_pm1(graph: &Graph, seed: u64) -> IsingModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = IsingModel::new(graph.num_nodes());
    for &(i, j) in graph.edges() {
        let w = if rng.random::<bool>() { 1.0 } else { -1.0 };
        m.set_coupling(i, j, w).expect("graph edges are in range");
    }
    m
}

/// Builds an Ising model with all edge weights `+1` (unweighted Max-Cut).
#[must_use]
pub fn to_ising_unit(graph: &Graph) -> IsingModel {
    let mut m = IsingModel::new(graph.num_nodes());
    for &(i, j) in graph.edges() {
        m.set_coupling(i, j, 1.0).expect("graph edges are in range");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm1_weights_are_seeded_and_pm1() {
        let g = gen::complete(6);
        let a = to_ising_pm1(&g, 9);
        let b = to_ising_pm1(&g, 9);
        let c = to_ising_pm1(&g, 10);
        assert_eq!(
            a.couplings().collect::<Vec<_>>(),
            b.couplings().collect::<Vec<_>>()
        );
        assert_ne!(
            a.couplings().collect::<Vec<_>>(),
            c.couplings().collect::<Vec<_>>()
        );
        assert!(a.couplings().all(|(_, j)| j == 1.0 || j == -1.0));
    }

    #[test]
    fn unit_weights_are_one() {
        let g = gen::cycle(5);
        let m = to_ising_unit(&g);
        assert!(m.couplings().all(|(_, j)| j == 1.0));
        assert_eq!(m.num_couplings(), 5);
    }
}
