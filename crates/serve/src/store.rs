//! The in-memory job registry: id allocation, lifecycle tracking, and
//! completion wake-ups for synchronous submitters.
//!
//! Every submission gets a monotonically increasing [`JobId`] and a
//! state that only moves forward: `Queued → Running → Done`. Results are
//! retained until the server stops (the registry is the poll endpoint's
//! backing store); bounding retention is an open ROADMAP item alongside
//! template-cache persistence.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use frozenqubits::{FqError, JobId, JobResult};

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub(crate) enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished, successfully or not. (`Arc`: polls snapshot the state
    /// under the registry mutex, and a deep copy of a large sampling
    /// result per `GET /v1/jobs/{id}` would serialize every poller and
    /// worker behind an O(result-size) critical section.)
    Done(std::sync::Arc<Result<JobResult, FqError>>),
}

impl JobState {
    /// The wire name of this state (`Done(Err)` reads as `failed`).
    pub(crate) fn status_name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(result) if result.is_ok() => "done",
            JobState::Done(_) => "failed",
        }
    }
}

/// Aggregate submission counters for `/v1/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct JobCounts {
    /// Jobs ever accepted (queued), including finished ones.
    pub(crate) submitted: u64,
    /// Jobs finished successfully.
    pub(crate) completed: u64,
    /// Jobs finished with an error.
    pub(crate) failed: u64,
}

/// The shared registry.
#[derive(Debug, Default)]
pub(crate) struct JobStore {
    jobs: Mutex<HashMap<u64, JobState>>,
    finished: Condvar,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

impl JobStore {
    /// An empty registry; ids start at 1.
    pub(crate) fn new() -> JobStore {
        JobStore {
            next_id: AtomicU64::new(1),
            ..JobStore::default()
        }
    }

    /// Mints a fresh id and registers it as queued.
    pub(crate) fn register(&self) -> JobId {
        let id = JobId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .insert(id.value(), JobState::Queued);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes a registration that never made it into the queue (the
    /// push bounced); undoes the `submitted` count.
    pub(crate) fn discard(&self, id: JobId) {
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .remove(&id.value());
        self.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks `id` as claimed by a worker.
    pub(crate) fn mark_running(&self, id: JobId) {
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .insert(id.value(), JobState::Running);
    }

    /// Records `id`'s final result and wakes synchronous waiters.
    pub(crate) fn complete(&self, id: JobId, result: Result<JobResult, FqError>) {
        match &result {
            Ok(_) => self.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .insert(id.value(), JobState::Done(std::sync::Arc::new(result)));
        self.finished.notify_all();
    }

    /// The current state of `id`, if it was ever registered.
    pub(crate) fn snapshot(&self, id: JobId) -> Option<JobState> {
        self.jobs
            .lock()
            .expect("store lock poisoned")
            .get(&id.value())
            .cloned()
    }

    /// Blocks until `id` finishes or `timeout` elapses; returns the
    /// last observed state (`Done(..)` unless the wait timed out), or
    /// `None` for an unknown id.
    pub(crate) fn await_done(&self, id: JobId, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.jobs.lock().expect("store lock poisoned");
        loop {
            let state = jobs.get(&id.value())?.clone();
            if matches!(state, JobState::Done(_)) {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let (guard, _) = self
                .finished
                .wait_timeout(jobs, deadline - now)
                .expect("store lock poisoned");
            jobs = guard;
        }
    }

    /// Aggregate counters.
    pub(crate) fn counts(&self) -> JobCounts {
        JobCounts {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frozenqubits::RunSummary;

    fn dummy_result() -> JobResult {
        JobResult::Baseline(RunSummary {
            label: "baseline".into(),
            circuit_qubits: 1,
            circuits_executed: 1,
            metrics: frozenqubits::CircuitMetrics::default(),
            ev_ideal: 0.0,
            ev_noisy: 0.0,
            arg: 0.0,
            log_eps: 0.0,
            params: (0.0, 0.0),
        })
    }

    #[test]
    fn lifecycle_and_counters() {
        let store = JobStore::new();
        let a = store.register();
        let b = store.register();
        assert_ne!(a, b);
        assert!(matches!(store.snapshot(a), Some(JobState::Queued)));
        store.mark_running(a);
        assert!(matches!(store.snapshot(a), Some(JobState::Running)));
        store.complete(a, Ok(dummy_result()));
        assert_eq!(store.snapshot(a).unwrap().status_name(), "done");
        store.complete(b, Err(FqError::InvalidConfig("x".into())));
        assert_eq!(store.snapshot(b).unwrap().status_name(), "failed");
        assert_eq!(
            store.counts(),
            JobCounts {
                submitted: 2,
                completed: 1,
                failed: 1
            }
        );
        assert!(store.snapshot(JobId::new(999)).is_none());
    }

    #[test]
    fn discard_undoes_a_bounced_registration() {
        let store = JobStore::new();
        let id = store.register();
        store.discard(id);
        assert!(store.snapshot(id).is_none());
        assert_eq!(store.counts().submitted, 0);
    }

    #[test]
    fn await_done_times_out_with_last_state() {
        let store = JobStore::new();
        let id = store.register();
        let state = store.await_done(id, Duration::from_millis(10)).unwrap();
        assert!(matches!(state, JobState::Queued));
        assert!(store.await_done(JobId::new(999), Duration::ZERO).is_none());
    }

    #[test]
    fn await_done_wakes_on_completion() {
        let store = std::sync::Arc::new(JobStore::new());
        let id = store.register();
        let waiter = {
            let store = store.clone();
            std::thread::spawn(move || store.await_done(id, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        store.complete(id, Ok(dummy_result()));
        let state = waiter.join().unwrap().unwrap();
        assert_eq!(state.status_name(), "done");
    }
}
