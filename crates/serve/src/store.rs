//! The in-memory job registry: id allocation, lifecycle tracking,
//! completion wake-ups for synchronous submitters, and bounded retention
//! of finished jobs.
//!
//! Every submission gets a monotonically increasing [`JobId`] and a
//! state that only moves forward: `Queued → Running → Done`. Finished
//! results are retained for polling, but not forever: a TTL and a count
//! bound expire the oldest completed entries (in completion order), so a
//! long-running server's registry cannot grow without bound. Expired ids
//! stay distinguishable from never-issued ids — polling one yields a
//! structured `410 Gone`, not a `404` — via a compact tombstone set.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use frozenqubits::{FqError, JobId, JobResult};

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub(crate) enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished, successfully or not. (`Arc`: polls snapshot the state
    /// under the registry mutex, and a deep copy of a large sampling
    /// result per `GET /v1/jobs/{id}` would serialize every poller and
    /// worker behind an O(result-size) critical section.)
    Done(std::sync::Arc<Result<JobResult, FqError>>),
}

impl JobState {
    /// The wire name of this state (`Done(Err)` reads as `failed`).
    pub(crate) fn status_name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(result) if result.is_ok() => "done",
            JobState::Done(_) => "failed",
        }
    }
}

/// What the registry knows about an id.
#[derive(Clone, Debug)]
pub(crate) enum Lookup {
    /// The job is live (queued, running, or retained done).
    Active(JobState),
    /// The job finished but its result was expired by the TTL or count
    /// bound. → `410 Gone`.
    Expired,
    /// The id was never issued (or bounced before queueing). → `404`.
    Unknown,
}

/// Aggregate submission counters for `/v1/stats`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct JobCounts {
    /// Jobs ever accepted (queued), including finished ones.
    pub(crate) submitted: u64,
    /// Jobs finished successfully.
    pub(crate) completed: u64,
    /// Jobs finished with an error.
    pub(crate) failed: u64,
    /// Finished jobs whose retained results were expired.
    pub(crate) expired: u64,
}

/// Most tombstones retained: enough to answer `410` for every id a
/// client could plausibly still hold, without reintroducing the
/// unbounded growth the expiry exists to prevent. Beyond it the oldest
/// (smallest) ids degrade to `404`.
const MAX_TOMBSTONES: usize = 65_536;

#[derive(Debug, Default)]
struct Registry {
    jobs: HashMap<u64, JobState>,
    /// Completed ids in completion order, with their completion times —
    /// the expiry scan order.
    done_order: VecDeque<(u64, Instant)>,
    /// Ids whose done entries were expired (ordered, so capping evicts
    /// the oldest).
    tombstones: BTreeSet<u64>,
}

/// The shared registry.
#[derive(Debug)]
pub(crate) struct JobStore {
    inner: Mutex<Registry>,
    finished: Condvar,
    next_id: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    expired: AtomicU64,
    /// How long a finished result is retained.
    ttl: Duration,
    /// Most finished results retained at once.
    max_done: usize,
}

impl JobStore {
    /// An empty registry; ids start at 1. Finished results are retained
    /// for at most `ttl`, and at most `max_done` of them at once
    /// (oldest-completed first out).
    pub(crate) fn new(ttl: Duration, max_done: usize) -> JobStore {
        JobStore {
            inner: Mutex::new(Registry::default()),
            finished: Condvar::new(),
            next_id: AtomicU64::new(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            ttl,
            max_done: max_done.max(1),
        }
    }

    /// Expires finished entries that are over the TTL or beyond the
    /// count bound. Called under the registry lock from every mutation
    /// and lookup, so expiry needs no background thread.
    fn prune(&self, registry: &mut Registry, now: Instant) {
        while let Some(&(id, done_at)) = registry.done_order.front() {
            let over_count = registry.done_order.len() > self.max_done;
            let over_ttl = now.duration_since(done_at) >= self.ttl;
            if !over_count && !over_ttl {
                break;
            }
            registry.done_order.pop_front();
            if registry.jobs.remove(&id).is_some() {
                registry.tombstones.insert(id);
                self.expired.fetch_add(1, Ordering::Relaxed);
            }
        }
        while registry.tombstones.len() > MAX_TOMBSTONES {
            let oldest = *registry.tombstones.iter().next().expect("non-empty set");
            registry.tombstones.remove(&oldest);
        }
    }

    /// Mints a fresh id and registers it as queued.
    pub(crate) fn register(&self) -> JobId {
        let id = JobId::new(self.next_id.fetch_add(1, Ordering::Relaxed));
        let mut registry = self.inner.lock().expect("store lock poisoned");
        self.prune(&mut registry, Instant::now());
        registry.jobs.insert(id.value(), JobState::Queued);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Removes a registration that never made it into the queue (the
    /// push bounced); undoes the `submitted` count.
    pub(crate) fn discard(&self, id: JobId) {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .jobs
            .remove(&id.value());
        self.submitted.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks `id` as claimed by a worker.
    pub(crate) fn mark_running(&self, id: JobId) {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .jobs
            .insert(id.value(), JobState::Running);
    }

    /// Records `id`'s final result and wakes synchronous waiters.
    pub(crate) fn complete(&self, id: JobId, result: Result<JobResult, FqError>) {
        match &result {
            Ok(_) => self.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        let now = Instant::now();
        let mut registry = self.inner.lock().expect("store lock poisoned");
        registry
            .jobs
            .insert(id.value(), JobState::Done(std::sync::Arc::new(result)));
        registry.done_order.push_back((id.value(), now));
        self.prune(&mut registry, now);
        drop(registry);
        self.finished.notify_all();
    }

    /// What the registry knows about `id`, expiring stale results on the
    /// way.
    pub(crate) fn lookup(&self, id: JobId) -> Lookup {
        let mut registry = self.inner.lock().expect("store lock poisoned");
        self.prune(&mut registry, Instant::now());
        match registry.jobs.get(&id.value()) {
            Some(state) => Lookup::Active(state.clone()),
            None if registry.tombstones.contains(&id.value()) => Lookup::Expired,
            None => Lookup::Unknown,
        }
    }

    /// The current state of `id`, if it is live (compatibility wrapper
    /// over [`JobStore::lookup`]; the server itself routes through
    /// `lookup` to distinguish expired ids).
    #[cfg(test)]
    pub(crate) fn snapshot(&self, id: JobId) -> Option<JobState> {
        match self.lookup(id) {
            Lookup::Active(state) => Some(state),
            Lookup::Expired | Lookup::Unknown => None,
        }
    }

    /// Blocks until `id` finishes or `timeout` elapses; returns the
    /// last observed state (`Done(..)` unless the wait timed out), or
    /// `None` for an unknown (or already-expired) id.
    pub(crate) fn await_done(&self, id: JobId, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut registry = self.inner.lock().expect("store lock poisoned");
        loop {
            let state = registry.jobs.get(&id.value())?.clone();
            if matches!(state, JobState::Done(_)) {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let (guard, _) = self
                .finished
                .wait_timeout(registry, deadline - now)
                .expect("store lock poisoned");
            registry = guard;
        }
    }

    /// Aggregate counters.
    pub(crate) fn counts(&self) -> JobCounts {
        JobCounts {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frozenqubits::RunSummary;

    /// Retention generous enough that nothing expires mid-test.
    fn retentive() -> JobStore {
        JobStore::new(Duration::from_secs(3600), 4096)
    }

    fn dummy_result() -> JobResult {
        JobResult::Baseline(RunSummary {
            label: "baseline".into(),
            circuit_qubits: 1,
            circuits_executed: 1,
            metrics: frozenqubits::CircuitMetrics::default(),
            ev_ideal: 0.0,
            ev_noisy: 0.0,
            arg: 0.0,
            log_eps: 0.0,
            params: (0.0, 0.0),
        })
    }

    #[test]
    fn lifecycle_and_counters() {
        let store = retentive();
        let a = store.register();
        let b = store.register();
        assert_ne!(a, b);
        assert!(matches!(store.snapshot(a), Some(JobState::Queued)));
        store.mark_running(a);
        assert!(matches!(store.snapshot(a), Some(JobState::Running)));
        store.complete(a, Ok(dummy_result()));
        assert_eq!(store.snapshot(a).unwrap().status_name(), "done");
        store.complete(b, Err(FqError::InvalidConfig("x".into())));
        assert_eq!(store.snapshot(b).unwrap().status_name(), "failed");
        assert_eq!(
            store.counts(),
            JobCounts {
                submitted: 2,
                completed: 1,
                failed: 1,
                expired: 0
            }
        );
        assert!(store.snapshot(JobId::new(999)).is_none());
        assert!(matches!(store.lookup(JobId::new(999)), Lookup::Unknown));
    }

    #[test]
    fn discard_undoes_a_bounced_registration() {
        let store = retentive();
        let id = store.register();
        store.discard(id);
        assert!(store.snapshot(id).is_none());
        assert_eq!(store.counts().submitted, 0);
    }

    #[test]
    fn await_done_times_out_with_last_state() {
        let store = retentive();
        let id = store.register();
        let state = store.await_done(id, Duration::from_millis(10)).unwrap();
        assert!(matches!(state, JobState::Queued));
        assert!(store.await_done(JobId::new(999), Duration::ZERO).is_none());
    }

    #[test]
    fn await_done_wakes_on_completion() {
        let store = std::sync::Arc::new(retentive());
        let id = store.register();
        let waiter = {
            let store = store.clone();
            std::thread::spawn(move || store.await_done(id, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        store.complete(id, Ok(dummy_result()));
        let state = waiter.join().unwrap().unwrap();
        assert_eq!(state.status_name(), "done");
    }

    #[test]
    fn ttl_expires_done_entries_into_tombstones() {
        let store = JobStore::new(Duration::from_millis(20), 4096);
        let id = store.register();
        store.complete(id, Ok(dummy_result()));
        assert!(matches!(store.lookup(id), Lookup::Active(_)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(matches!(store.lookup(id), Lookup::Expired));
        assert!(matches!(store.lookup(id), Lookup::Expired), "stays gone");
        assert_eq!(store.counts().expired, 1);
        // Queued/running entries never expire — only done ones do.
        let live = store.register();
        std::thread::sleep(Duration::from_millis(30));
        assert!(matches!(store.lookup(live), Lookup::Active(_)));
    }

    #[test]
    fn count_bound_expires_oldest_completed_first() {
        let store = JobStore::new(Duration::from_secs(3600), 2);
        let ids: Vec<JobId> = (0..3).map(|_| store.register()).collect();
        for &id in &ids {
            store.complete(id, Ok(dummy_result()));
        }
        assert!(matches!(store.lookup(ids[0]), Lookup::Expired));
        assert!(matches!(store.lookup(ids[1]), Lookup::Active(_)));
        assert!(matches!(store.lookup(ids[2]), Lookup::Active(_)));
        assert_eq!(store.counts().expired, 1);
    }
}
