//! Route resolution: `(method, path)` → what the server should do.
//!
//! The surface is tiny and versioned under `/v1`:
//!
//! | method | path                  | route                          |
//! |--------|-----------------------|--------------------------------|
//! | POST   | `/v1/jobs`            | submit a job (sync/async)      |
//! | GET    | `/v1/jobs/{id}`       | poll a submitted job           |
//! | GET    | `/v1/healthz`         | liveness probe                 |
//! | GET    | `/v1/stats`           | cache/queue/job telemetry      |
//! | GET    | `/v1/templates`       | resident-template index        |
//! | GET    | `/v1/templates/{fp}`  | one template artifact          |
//! | POST   | `/v1/templates`       | push a template artifact       |
//!
//! Known paths with the wrong method get `405` with an `Allow` header;
//! everything else is `404`. Trailing slashes are not aliased — the
//! wire format is pinned, and so are the paths.

use frozenqubits::JobId;

/// What a request resolves to.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Route {
    /// `GET /v1/healthz`.
    Healthz,
    /// `GET /v1/stats`.
    Stats,
    /// `POST /v1/jobs`.
    Submit,
    /// `GET /v1/jobs/{id}`.
    Job(JobId),
    /// A `/v1/jobs/{id}` target whose id does not parse, carrying the
    /// parse error's own message. → `400`.
    MalformedJobId(String),
    /// `GET /v1/templates`: the resident-template index (fingerprint +
    /// recency, hottest first) a peer shard pulls to plan its warm set.
    TemplateIndex,
    /// `GET /v1/templates/{fingerprint}`: one serialized template
    /// artifact.
    Template(String),
    /// `POST /v1/templates`: push a serialized template artifact into
    /// this shard's store (the receive half of warm transfer).
    TemplatePush,
    /// A `/v1/templates/{fingerprint}` target whose fingerprint is not
    /// 16 lower-case hex digits. → `400`.
    MalformedFingerprint(String),
    /// A known path with the wrong method. → `405` + `Allow`.
    MethodNotAllowed {
        /// The methods the path does accept.
        allow: &'static str,
    },
    /// No such path. → `404`.
    NotFound,
}

/// Resolves `(method, path)` to a [`Route`].
pub(crate) fn route(method: &str, path: &str) -> Route {
    match path {
        "/v1/healthz" => match method {
            "GET" => Route::Healthz,
            _ => Route::MethodNotAllowed { allow: "GET" },
        },
        "/v1/stats" => match method {
            "GET" => Route::Stats,
            _ => Route::MethodNotAllowed { allow: "GET" },
        },
        "/v1/jobs" => match method {
            "POST" => Route::Submit,
            _ => Route::MethodNotAllowed { allow: "POST" },
        },
        "/v1/templates" => match method {
            "GET" => Route::TemplateIndex,
            "POST" => Route::TemplatePush,
            _ => Route::MethodNotAllowed { allow: "GET, POST" },
        },
        _ => {
            if let Some(raw_id) = path.strip_prefix("/v1/jobs/") {
                if raw_id.is_empty() || raw_id.contains('/') {
                    return Route::NotFound;
                }
                if method != "GET" {
                    return Route::MethodNotAllowed { allow: "GET" };
                }
                return match raw_id.parse::<JobId>() {
                    Ok(id) => Route::Job(id),
                    // Keep `JobId::FromStr`'s message (the single source
                    // of the expected-format text), without the generic
                    // serde-error prefix.
                    Err(frozenqubits::FqError::Serde(message)) => Route::MalformedJobId(message),
                    Err(other) => Route::MalformedJobId(other.to_string()),
                };
            }
            if let Some(raw_fp) = path.strip_prefix("/v1/templates/") {
                if raw_fp.is_empty() || raw_fp.contains('/') {
                    return Route::NotFound;
                }
                if method != "GET" {
                    return Route::MethodNotAllowed { allow: "GET" };
                }
                // One source for the format check: the core validator
                // the stores themselves use.
                return if frozenqubits::is_template_fingerprint(raw_fp) {
                    Route::Template(raw_fp.to_string())
                } else {
                    Route::MalformedFingerprint(format!(
                        "malformed template fingerprint `{raw_fp}` (expected 16 lower-case hex digits)"
                    ))
                };
            }
            Route::NotFound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_the_published_surface() {
        assert_eq!(route("GET", "/v1/healthz"), Route::Healthz);
        assert_eq!(route("GET", "/v1/stats"), Route::Stats);
        assert_eq!(route("POST", "/v1/jobs"), Route::Submit);
        assert_eq!(
            route("GET", "/v1/jobs/job-000000000000002a"),
            Route::Job(JobId::new(42))
        );
    }

    #[test]
    fn rejects_wrong_methods_with_allow() {
        assert_eq!(
            route("DELETE", "/v1/jobs"),
            Route::MethodNotAllowed { allow: "POST" }
        );
        assert_eq!(
            route("POST", "/v1/stats"),
            Route::MethodNotAllowed { allow: "GET" }
        );
        assert_eq!(
            route("POST", "/v1/jobs/job-000000000000002a"),
            Route::MethodNotAllowed { allow: "GET" }
        );
    }

    #[test]
    fn routes_the_template_surface() {
        assert_eq!(route("GET", "/v1/templates"), Route::TemplateIndex);
        assert_eq!(route("POST", "/v1/templates"), Route::TemplatePush);
        assert_eq!(
            route("GET", "/v1/templates/00c0ffee00c0ffee"),
            Route::Template("00c0ffee00c0ffee".into())
        );
        assert_eq!(
            route("DELETE", "/v1/templates"),
            Route::MethodNotAllowed { allow: "GET, POST" }
        );
        assert_eq!(
            route("POST", "/v1/templates/00c0ffee00c0ffee"),
            Route::MethodNotAllowed { allow: "GET" }
        );
        assert!(matches!(
            route("GET", "/v1/templates/UPPER-not-hex"),
            Route::MalformedFingerprint(msg) if msg.contains("16 lower-case hex")
        ));
        assert_eq!(route("GET", "/v1/templates/"), Route::NotFound);
        assert_eq!(route("GET", "/v1/templates/a/b"), Route::NotFound);
    }

    #[test]
    fn unknown_targets_404_and_bad_ids_400() {
        assert_eq!(route("GET", "/"), Route::NotFound);
        assert_eq!(route("GET", "/v2/jobs"), Route::NotFound);
        assert_eq!(route("GET", "/v1/jobs/"), Route::NotFound);
        assert_eq!(route("GET", "/v1/jobs/a/b"), Route::NotFound);
        assert!(matches!(
            route("GET", "/v1/jobs/job-42"),
            Route::MalformedJobId(msg) if msg.contains("job-42") && msg.contains("16 hex")
        ));
    }
}
