//! The service's JSON envelopes, built on the same canonical document
//! model (`serde::json::Value`) as the core wire format.
//!
//! Two layers of format apply to every exchange:
//!
//! * **Payloads** — `JobSpec` request bodies and `JobResult` results —
//!   use the core wire format verbatim (`frozenqubits::api`, version
//!   tag `"v"`, golden-pinned in `tests/api_serde.rs`). The service
//!   never re-encodes a result: embedded results are
//!   `Value::parse(result.to_json())`, which round-trips byte-for-byte
//!   because the writer is canonical.
//! * **Envelopes** — submission acknowledgements, poll responses, error
//!   bodies, stats — carry their own `"v"` tag ([`WIRE_V`]) so the
//!   service surface can evolve independently of the job format.

use frozenqubits::{FqError, JobId, JobResult};
use serde::json::Value;

use crate::error::kind_name;
use crate::store::JobState;

/// Version tag of the service envelopes (independent of the job-spec
/// wire version).
pub const WIRE_V: u64 = 1;

/// The `{"v":1,"id":...,"status":...}` submission acknowledgement.
pub fn submit_ack(id: JobId) -> String {
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        ("id", Value::string(id.to_string())),
        ("status", Value::string("queued")),
    ])
    .to_json()
}

/// The poll envelope for `GET /v1/jobs/{id}`: status plus, when
/// finished, either the embedded result document or the error object.
pub(crate) fn job_envelope(id: JobId, state: &JobState) -> String {
    let mut pairs = vec![
        ("v", Value::UInt(WIRE_V)),
        ("id", Value::string(id.to_string())),
        ("status", Value::string(state.status_name())),
    ];
    match state {
        JobState::Done(result) => match result.as_ref() {
            Ok(result) => pairs.push(("result", embed_result(result))),
            Err(error) => pairs.push((
                "error",
                Value::object(vec![
                    ("kind", Value::string(kind_name(error))),
                    ("message", Value::string(error.to_string())),
                ]),
            )),
        },
        JobState::Queued | JobState::Running => {}
    }
    Value::object(pairs).to_json()
}

/// Embeds a result's canonical JSON as a document node. Parsing our own
/// canonical output is infallible; the error arm exists only to keep
/// this panic-free on a future format skew.
fn embed_result(result: &JobResult) -> Value {
    Value::parse(&result.to_json()).unwrap_or(Value::Null)
}

/// Extracts the embedded result from a poll envelope — the inverse of
/// [`job_envelope`] for finished jobs, used by clients (and the e2e
/// tests) to recover the byte-exact `JobResult` document.
///
/// # Errors
///
/// [`FqError::Serde`] when the envelope is malformed or the job is not
/// in the `done` state.
pub(crate) fn result_from_envelope(envelope: &str) -> Result<JobResult, FqError> {
    let v = Value::parse(envelope)?;
    let status = v.field("status")?.as_str()?;
    if status != "done" {
        return Err(FqError::Serde(format!(
            "job is `{status}`, not `done`; no result to extract"
        )));
    }
    JobResult::from_json(&v.field("result")?.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frozenqubits::api::{DeviceSpec, JobBuilder};

    #[test]
    fn submit_ack_is_canonical() {
        assert_eq!(
            submit_ack(JobId::new(7)),
            r#"{"v":1,"id":"job-0000000000000007","status":"queued"}"#
        );
    }

    #[test]
    fn envelopes_embed_results_byte_exactly() {
        let result = JobBuilder::new()
            .barabasi_albert(8, 1, 5)
            .device(DeviceSpec::IbmMontreal)
            .baseline()
            .build()
            .unwrap()
            .run()
            .unwrap();
        let envelope = job_envelope(
            JobId::new(1),
            &JobState::Done(std::sync::Arc::new(Ok(result.clone()))),
        );
        let parsed = Value::parse(&envelope).unwrap();
        assert_eq!(parsed.field("status").unwrap().as_str().unwrap(), "done");
        // The embedded document re-serializes to the pinned wire bytes.
        assert_eq!(
            parsed.field("result").unwrap().to_json(),
            result.to_json(),
            "embedding must preserve the canonical result bytes"
        );
        assert_eq!(result_from_envelope(&envelope).unwrap(), result);
    }

    #[test]
    fn envelopes_carry_errors_and_progress_states() {
        let failed = job_envelope(
            JobId::new(2),
            &JobState::Done(std::sync::Arc::new(Err(FqError::InvalidConfig(
                "boom".into(),
            )))),
        );
        let v = Value::parse(&failed).unwrap();
        assert_eq!(v.field("status").unwrap().as_str().unwrap(), "failed");
        assert_eq!(
            v.field("error")
                .unwrap()
                .field("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "invalid_config"
        );
        assert!(result_from_envelope(&failed).is_err());

        let queued = job_envelope(JobId::new(3), &JobState::Queued);
        assert!(Value::parse(&queued).unwrap().field("result").is_err());
    }
}
