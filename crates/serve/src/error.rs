//! Mapping [`FqError`] onto HTTP statuses and the structured error body.
//!
//! Every non-2xx response the service emits carries the same JSON
//! envelope:
//!
//! ```json
//! {"v":1,"error":{"kind":"invalid_config","message":"..."}}
//! ```
//!
//! `kind` is a stable machine-readable tag (one per [`FqError`] variant
//! plus the HTTP-layer tags `bad_request`, `not_found`,
//! `method_not_allowed`, `payload_too_large`, `not_implemented`,
//! `http_version`, `queue_full`, `shutting_down`, `timeout`); `message`
//! is human-readable and may change wording freely.

use frozenqubits::{FqError, JobId};
use serde::json::Value;

use crate::http::Response;
use crate::wire::WIRE_V;

/// The stable machine-readable tag for an [`FqError`].
pub fn kind_name(error: &FqError) -> &'static str {
    match error {
        FqError::TooManyFrozen { .. } => "too_many_frozen",
        FqError::InvalidConfig(_) => "invalid_config",
        FqError::Ising(_) => "ising",
        FqError::Circuit(_) => "circuit",
        FqError::Transpile(_) => "transpile",
        FqError::Sim(_) => "sim",
        FqError::Graph(_) => "graph",
        FqError::Cut(_) => "cut",
        FqError::Serde(_) => "serde",
        FqError::UnknownTier(_) => "unknown_tier",
        FqError::Io(_) => "io",
        // `FqError` is #[non_exhaustive]; new variants surface as
        // internal errors until this map learns their names.
        _ => "internal",
    }
}

/// The HTTP status class for an [`FqError`].
///
/// * wire-format problems ([`FqError::Serde`]) are the client's request
///   syntax → `400`;
/// * validation failures (invalid config, too many frozen qubits,
///   malformed problem graphs/models) are well-formed but unprocessable
///   → `422`;
/// * everything else is the engine's problem → `500`.
pub fn status_for(error: &FqError) -> u16 {
    match error {
        FqError::Serde(_) => 400,
        FqError::InvalidConfig(_)
        | FqError::TooManyFrozen { .. }
        | FqError::Graph(_)
        | FqError::Ising(_)
        | FqError::UnknownTier(_) => 422,
        _ => 500,
    }
}

/// [`status_for`] keyed by the wire tag instead of the error value:
/// the status a shard uses for an error of this `kind`. The dispatcher
/// uses it to reconstruct a synchronous response from a poll envelope
/// after a shard degraded a slow job to `202`.
pub fn status_for_kind(kind: &str) -> u16 {
    match kind {
        "serde" => 400,
        "invalid_config" | "too_many_frozen" | "graph" | "ising" | "unknown_tier" => 422,
        _ => 500,
    }
}

/// The canonical error envelope body.
pub fn error_body(kind: &str, message: &str) -> String {
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        (
            "error",
            Value::object(vec![
                ("kind", Value::string(kind)),
                ("message", Value::string(message)),
            ]),
        ),
    ])
    .to_json()
}

/// A complete error response with the envelope body.
pub fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(status, error_body(kind, message))
}

/// The error response for a job that failed with `error`, tagged with the
/// job id so sync submitters can still correlate.
pub(crate) fn job_error_response(id: JobId, error: &FqError) -> Response {
    error_response(status_for(error), kind_name(error), &error.to_string())
        .with_header("fq-job-id", id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_partition_the_error_space() {
        assert_eq!(status_for(&FqError::Serde("x".into())), 400);
        assert_eq!(status_for(&FqError::InvalidConfig("x".into())), 422);
        assert_eq!(status_for(&FqError::UnknownTier("turbo".into())), 422);
        assert_eq!(status_for_kind("unknown_tier"), 422);
        assert_eq!(
            status_for(&FqError::TooManyFrozen { m: 3, num_vars: 2 }),
            422
        );
        assert_eq!(status_for(&FqError::Io("x".into())), 500);
    }

    #[test]
    fn envelope_is_canonical_json() {
        let body = error_body("bad_request", "nope");
        assert_eq!(
            body,
            r#"{"v":1,"error":{"kind":"bad_request","message":"nope"}}"#
        );
        let parsed = Value::parse(&body).unwrap();
        assert_eq!(
            parsed
                .field("error")
                .unwrap()
                .field("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "bad_request"
        );
    }

    #[test]
    fn every_variant_has_a_kind() {
        let errors: Vec<FqError> = vec![
            FqError::TooManyFrozen { m: 1, num_vars: 0 },
            FqError::InvalidConfig("x".into()),
            FqError::Serde("x".into()),
            FqError::Io("x".into()),
            FqError::UnknownTier("turbo".into()),
        ];
        for e in errors {
            assert_ne!(kind_name(&e), "internal");
        }
        assert_eq!(
            kind_name(&FqError::UnknownTier("turbo".into())),
            "unknown_tier"
        );
    }
}
