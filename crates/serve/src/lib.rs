//! **fq-serve** — the HTTP/1.1 front door of the FrozenQubits engine.
//!
//! The engine has been service-shaped since the batch PRs: `JobSpec` /
//! `JobResult` have a pinned, version-tagged canonical JSON wire format,
//! and `BatchRunner` executes jobs against a concurrent, bounded,
//! stats-bearing `TemplateCache`. This crate adds the missing network
//! layer, hand-rolled on `std::net` because the workspace is offline
//! (no hyper/tokio):
//!
//! * a `TcpListener` accept loop feeding a **bounded job queue** (full →
//!   `503` backpressure, never unbounded memory);
//! * a **worker pool** draining the queue through one shared
//!   [`BatchRunner`](frozenqubits::BatchRunner) — concurrent clients
//!   warm each other's compiled templates;
//! * four endpoints under `/v1`:
//!
//! | endpoint | what it does |
//! |----------|--------------|
//! | `POST /v1/jobs` | submit a `JobSpec` body; sync by default (the `200` body is the bare canonical `JobResult`), `?mode=async` for `202` + id |
//! | `GET /v1/jobs/{id}` | poll: `queued` / `running` / `done` (+ embedded result) / `failed` (+ error) |
//! | `GET /v1/healthz` | liveness probe |
//! | `GET /v1/stats` | template-cache hit/miss/eviction, queue depth, job counters |
//!
//! Request and response payloads are exactly the core wire format —
//! golden-pinned in `tests/api_serde.rs` — so anything that can write a
//! spec to a file can drive the service, and a synchronous submission's
//! body is **byte-identical** to `JobResult::to_json()` of a direct
//! `BatchRunner` run (pinned in `tests/http_service.rs`).
//!
//! # In-process quickstart
//!
//! ```
//! use fq_serve::{client, Server, ServerConfig};
//! use frozenqubits::api::{DeviceSpec, JobBuilder};
//!
//! let handle = Server::spawn(ServerConfig::default())?;
//! let addr = handle.addr().to_string();
//!
//! let spec = JobBuilder::new()
//!     .barabasi_albert(10, 1, 7)
//!     .device(DeviceSpec::IbmMontreal)
//!     .compare()
//!     .build()?;
//! let report = client::submit_sync(&addr, &spec)?.into_compare()?;
//! assert!(report.improvement > 1.0);
//!
//! handle.shutdown();
//! # Ok::<(), frozenqubits::FqError>(())
//! ```
//!
//! Or from the shell: `cargo run --release -p fq-serve --bin serve`,
//! then `curl` the endpoints (see the README's "Running the service").

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
mod queue;
mod router;
mod server;
mod store;
pub mod wire;
mod worker;

pub use server::{Server, ServerConfig, ServerHandle};

// The service names jobs with the core's `JobId`; re-exported so client
// code doesn't need a direct `frozenqubits` dependency for polling.
pub use frozenqubits::JobId;
