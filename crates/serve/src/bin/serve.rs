//! The `serve` binary: run the FrozenQubits HTTP job service.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!       [--cache-capacity N] [--engine-threads N] [--backend sim|noise_model]
//!       [--max-body BYTES] [--sync-wait-secs N]
//! ```
//!
//! Defaults serve on `127.0.0.1:8077` with 4 workers. `FQ_SERVE_ADDR`
//! overrides the default address (flags beat the environment). The
//! process runs until killed; every in-flight job completes or fails on
//! its own merits — there is no state to corrupt (the registry and the
//! template cache are in-memory).

use std::process::ExitCode;
use std::time::Duration;

use fq_serve::{Server, ServerConfig};
use frozenqubits::api::BackendSpec;

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
             [--cache-capacity N] [--engine-threads N]
             [--backend sim|noise_model] [--max-body BYTES]
             [--sync-wait-secs N] [--max-connections N]

Serves the FrozenQubits job API over HTTP/1.1:
  POST /v1/jobs        submit a JobSpec (sync; ?mode=async to queue)
  GET  /v1/jobs/{id}   poll an async submission
  GET  /v1/healthz     liveness probe
  GET  /v1/stats       cache/queue/job telemetry

FQ_SERVE_ADDR sets the default address; flags win over the environment.";

fn parse_args(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let mut config = ServerConfig {
        addr: std::env::var("FQ_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:8077".into()),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let numeric = |what: &str| {
            value
                .parse::<usize>()
                .map_err(|_| format!("{what} must be an integer, got `{value}`"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = numeric("--workers")?,
            "--queue-capacity" => config.queue_capacity = numeric("--queue-capacity")?,
            "--cache-capacity" => config.cache_capacity = Some(numeric("--cache-capacity")?),
            "--engine-threads" => config.engine_threads = numeric("--engine-threads")?,
            "--max-body" => config.max_body_bytes = numeric("--max-body")?,
            "--max-connections" => config.max_connections = numeric("--max-connections")?,
            "--sync-wait-secs" => {
                config.sync_wait = Duration::from_secs(numeric("--sync-wait-secs")? as u64);
            }
            "--backend" => {
                config.backend_override = Some(
                    BackendSpec::from_name(value)
                        .ok_or_else(|| format!("unknown backend `{value}` (sim|noise_model)"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("serve: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let workers = config.workers;
    match Server::spawn(config) {
        Ok(handle) => {
            println!(
                "fq-serve listening on http://{} ({} workers); try: curl http://{}/v1/healthz",
                handle.addr(),
                workers,
                handle.addr()
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("serve: failed to start: {error}");
            ExitCode::FAILURE
        }
    }
}
