//! The `serve` binary: run the FrozenQubits HTTP job service.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!       [--cache-dir PATH] [--cache-capacity N] [--engine-threads N]
//!       [--warm-from HOST:PORT] [--warm-limit N]
//!       [--job-ttl-secs N] [--max-done-jobs N]
//!       [--backend sim|noise_model] [--max-body BYTES] [--sync-wait-secs N]
//!       [--auth-token TOKEN]
//! ```
//!
//! Defaults serve on `127.0.0.1:8077` with 4 workers. `FQ_SERVE_ADDR`
//! overrides the default address and `FQ_CACHE_DIR` the default cache
//! directory (flags beat the environment). With `--cache-dir`, compiled
//! templates spill to disk and a restarted process starts warm; with
//! `--warm-from`, a fresh shard pulls a peer's hottest templates at
//! boot. The job registry retains finished results for `--job-ttl-secs`
//! (bounded by `--max-done-jobs`); polling an expired id yields a
//! structured `410`. With `--auth-token` (or `FQ_AUTH_TOKEN`), template
//! pushes require the matching bearer token. Everything else is
//! in-memory and safe to kill.

use std::process::ExitCode;
use std::time::Duration;

use fq_serve::{Server, ServerConfig};
use frozenqubits::api::BackendSpec;

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
             [--cache-dir PATH] [--cache-capacity N] [--engine-threads N]
             [--warm-from HOST:PORT] [--warm-limit N]
             [--template-push-cap N]
             [--job-ttl-secs N] [--max-done-jobs N]
             [--backend sim|noise_model] [--max-body BYTES]
             [--sync-wait-secs N] [--max-connections N]
             [--auth-token TOKEN]

Serves the FrozenQubits job API over HTTP/1.1:
  POST /v1/jobs             submit a JobSpec (sync; ?mode=async to queue)
  GET  /v1/jobs/{id}        poll an async submission
  GET  /v1/healthz          liveness probe
  GET  /v1/stats            cache/queue/job telemetry
  GET  /v1/templates        resident-template index (warm-transfer source)
  GET  /v1/templates/{fp}   one serialized template artifact
  POST /v1/templates        push a template artifact into this shard

--cache-dir spills compiled templates to disk so restarts start warm;
--warm-from pulls a peer shard's hottest templates at boot.
--auth-token gates POST /v1/templates behind `authorization: Bearer
<token>` (401 otherwise); read endpoints stay open.
FQ_SERVE_ADDR sets the default address, FQ_CACHE_DIR the default cache
directory, and FQ_AUTH_TOKEN the default token; flags win over the
environment. FQ_FAULT_PLAN (chaos testing only, e.g.
`seed=42;worker:panic:1/8;accept:stall:1/4:ms=50`) arms deterministic
fault injection; never set it in production.";

fn parse_args(args: &[String]) -> Result<Option<ServerConfig>, String> {
    let fault_plan = fq_faults::FaultPlan::from_env("FQ_FAULT_PLAN")?;
    if fault_plan.is_some() {
        eprintln!("fq-serve: FQ_FAULT_PLAN set — injecting chaos faults (never use in production)");
    }
    let mut config = ServerConfig {
        addr: std::env::var("FQ_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:8077".into()),
        cache_dir: std::env::var("FQ_CACHE_DIR").ok(),
        auth_token: std::env::var("FQ_AUTH_TOKEN").ok(),
        fault_plan: fault_plan.map(std::sync::Arc::new),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = iter.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let numeric = |what: &str| {
            value
                .parse::<usize>()
                .map_err(|_| format!("{what} must be an integer, got `{value}`"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--auth-token" => config.auth_token = Some(value.clone()),
            "--workers" => config.workers = numeric("--workers")?,
            "--queue-capacity" => config.queue_capacity = numeric("--queue-capacity")?,
            "--cache-capacity" => config.cache_capacity = Some(numeric("--cache-capacity")?),
            "--cache-dir" => config.cache_dir = Some(value.clone()),
            "--warm-from" => config.warm_from = Some(value.clone()),
            "--warm-limit" => config.warm_limit = numeric("--warm-limit")?,
            "--template-push-cap" => config.template_push_cap = numeric("--template-push-cap")?,
            "--job-ttl-secs" => {
                config.job_ttl = Duration::from_secs(numeric("--job-ttl-secs")? as u64);
            }
            "--max-done-jobs" => config.max_done_jobs = numeric("--max-done-jobs")?,
            "--engine-threads" => config.engine_threads = numeric("--engine-threads")?,
            "--max-body" => config.max_body_bytes = numeric("--max-body")?,
            "--max-connections" => config.max_connections = numeric("--max-connections")?,
            "--sync-wait-secs" => {
                config.sync_wait = Duration::from_secs(numeric("--sync-wait-secs")? as u64);
            }
            "--backend" => {
                config.backend_override = Some(
                    BackendSpec::from_name(value)
                        .ok_or_else(|| format!("unknown backend `{value}` (sim|noise_model)"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("serve: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let workers = config.workers;
    match Server::spawn(config) {
        Ok(handle) => {
            println!(
                "fq-serve listening on http://{} ({} workers); try: curl http://{}/v1/healthz",
                handle.addr(),
                workers,
                handle.addr()
            );
            handle.join();
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("serve: failed to start: {error}");
            ExitCode::FAILURE
        }
    }
}
