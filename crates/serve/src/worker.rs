//! The worker pool that drains the submission queue through a shared
//! [`BatchRunner`].
//!
//! Every worker owns nothing: the queue, the registry and the runner are
//! all shared (`BatchRunner::run` takes `&self`; its `TemplateCache` is
//! concurrent), so concurrent clients warm each other's templates — the
//! first submitter of a (shape, device, layers, options) combination
//! pays the compile, everyone after it hits the cache, whichever worker
//! picks their job up.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use fq_faults::{FaultKind, FaultPlan, FaultSite};
use frozenqubits::{BatchRunner, FqError};

use crate::queue::JobQueue;
use crate::store::JobStore;

/// A fixed-size pool of job-executing threads.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `count` workers (zero is legal: jobs then queue without
    /// draining, which is what backpressure tests use). `busy` counts
    /// workers mid-job — held high for exactly the execution span, even
    /// across a panicking spec — so `/v1/stats` can report in-flight
    /// load to the dispatcher's sentinel.
    pub(crate) fn spawn(
        count: usize,
        queue: Arc<JobQueue>,
        store: Arc<JobStore>,
        runner: Arc<BatchRunner>,
        busy: Arc<AtomicUsize>,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> WorkerPool {
        let handles = (0..count)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let store = Arc::clone(&store);
                let runner = Arc::clone(&runner);
                let busy = Arc::clone(&busy);
                let fault_plan = fault_plan.clone();
                thread::Builder::new()
                    .name(format!("fq-serve-worker-{index}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            store.mark_running(job.id);
                            let in_flight = BusyGuard::arm(&busy);
                            // A panicking spec must not kill the worker
                            // (shrinking the pool) or strand the job in
                            // `running` forever — record it as failed
                            // and keep draining.
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    // Chaos hook: a scheduled panic here
                                    // takes the same containment path a
                                    // panicking spec would; a stall
                                    // holds the busy count high like a
                                    // genuinely slow job.
                                    if let Some(plan) = &fault_plan {
                                        match plan.roll(FaultSite::Worker) {
                                            Some(FaultKind::Panic) => {
                                                panic!("injected fault: worker panic")
                                            }
                                            Some(FaultKind::Stall(ms)) => {
                                                thread::sleep(std::time::Duration::from_millis(ms))
                                            }
                                            _ => {}
                                        }
                                    }
                                    runner
                                        .run(std::slice::from_ref(&job.spec))
                                        .pop()
                                        .expect("one result per submitted spec")
                                }))
                                .unwrap_or_else(|panic| {
                                    let what = panic
                                        .downcast_ref::<&str>()
                                        .map(|s| (*s).to_string())
                                        .or_else(|| panic.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    Err(FqError::Io(format!("job execution panicked: {what}")))
                                });
                            // Drop the guard *before* publishing: completion
                            // wakes synchronous waiters, and a stats read
                            // issued the moment a sync submit returns must
                            // not still see this worker counted busy.
                            drop(in_flight);
                            store.complete(job.id, result);
                        }
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to exit (call after closing the queue).
    pub(crate) fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// Holds the in-flight count high for one job's execution span; the
/// drop impl keeps the count honest even when `catch_unwind` trips.
struct BusyGuard<'a>(&'a AtomicUsize);

impl<'a> BusyGuard<'a> {
    fn arm(counter: &'a AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        BusyGuard(counter)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuedJob;
    use frozenqubits::api::{DeviceSpec, JobBuilder};
    use frozenqubits::JobId;
    use std::time::Duration;

    #[test]
    fn workers_drain_the_queue_and_record_results() {
        let queue = Arc::new(JobQueue::new(8));
        let store = Arc::new(JobStore::new(Duration::from_secs(3600), 4096));
        let runner = Arc::new(BatchRunner::new().with_threads(1));
        let busy = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::spawn(
            2,
            queue.clone(),
            store.clone(),
            runner.clone(),
            busy.clone(),
            None,
        );

        let spec = JobBuilder::new()
            .barabasi_albert(10, 1, 3)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap();
        let ids: Vec<JobId> = (0..4)
            .map(|_| {
                let id = store.register();
                queue
                    .push(QueuedJob {
                        id,
                        spec: spec.clone(),
                    })
                    .unwrap();
                id
            })
            .collect();

        let expected = spec.run().unwrap();
        for id in ids {
            let state = store.await_done(id, Duration::from_secs(60)).unwrap();
            let crate::store::JobState::Done(result) = state else {
                panic!("job should have finished");
            };
            assert_eq!(result.as_ref().as_ref().unwrap(), &expected);
        }
        // All four jobs share one shape: exactly one compile.
        assert_eq!(runner.templates_compiled(), 1);

        queue.close();
        pool.join();
        assert_eq!(busy.load(Ordering::SeqCst), 0, "guards must balance");
    }

    #[test]
    fn injected_panic_is_contained_and_the_worker_keeps_draining() {
        let queue = Arc::new(JobQueue::new(8));
        let store = Arc::new(JobStore::new(Duration::from_secs(3600), 4096));
        let runner = Arc::new(BatchRunner::new().with_threads(1));
        let busy = Arc::new(AtomicUsize::new(0));
        // Exactly the first job panics; the second must still execute
        // on the same (surviving) worker thread.
        let plan = Arc::new(fq_faults::FaultPlan::new(1).with_rule(
            FaultSite::Worker,
            FaultKind::Panic,
            1,
            Some(1),
        ));
        let pool = WorkerPool::spawn(
            1,
            queue.clone(),
            store.clone(),
            runner.clone(),
            busy.clone(),
            Some(plan),
        );

        let spec = JobBuilder::new()
            .barabasi_albert(10, 1, 3)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap();
        let ids: Vec<JobId> = (0..2)
            .map(|_| {
                let id = store.register();
                queue
                    .push(QueuedJob {
                        id,
                        spec: spec.clone(),
                    })
                    .unwrap();
                id
            })
            .collect();

        let first = store.await_done(ids[0], Duration::from_secs(60)).unwrap();
        let crate::store::JobState::Done(result) = first else {
            panic!("panicked job must still reach a terminal state");
        };
        let error = result.as_ref().as_ref().unwrap_err().to_string();
        assert!(error.contains("injected fault: worker panic"), "{error}");

        let second = store.await_done(ids[1], Duration::from_secs(60)).unwrap();
        let crate::store::JobState::Done(result) = second else {
            panic!("job after the panic should have finished");
        };
        assert_eq!(result.as_ref().as_ref().unwrap(), &spec.run().unwrap());

        queue.close();
        pool.join();
        assert_eq!(
            busy.load(Ordering::SeqCst),
            0,
            "guards balance across panics"
        );
    }
}
