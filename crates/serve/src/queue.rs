//! The bounded submission queue between the HTTP accept path and the
//! worker pool.
//!
//! A plain `Mutex<VecDeque>` + `Condvar` MPMC queue. Submissions never
//! block: when the queue is full, [`JobQueue::push`] fails immediately
//! and the HTTP layer turns that into `503` backpressure — the client,
//! not the server, holds the retry state. Workers block in
//! [`JobQueue::pop`] until an item or shutdown arrives; after
//! [`JobQueue::close`] they drain what is already queued and then see
//! `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use frozenqubits::{JobId, JobSpec};

/// One queued submission.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    /// The id the store minted for this submission.
    pub(crate) id: JobId,
    /// The validated-on-parse job spec.
    pub(crate) spec: JobSpec,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue is at capacity — backpressure, try again later.
    Full,
    /// The server is shutting down.
    Closed,
}

#[derive(Debug)]
struct Inner {
    items: VecDeque<QueuedJob>,
    closed: bool,
}

/// A bounded MPMC job queue.
#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    capacity: usize,
    ready: Condvar,
}

impl JobQueue {
    /// A queue holding at most `capacity` pending jobs.
    pub(crate) fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub(crate) fn push(&self, job: QueuedJob) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed **and**
    /// drained; `None` tells a worker to exit.
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Current number of pending jobs.
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// The configured bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Marks the queue closed and wakes every waiting worker. Already
    /// queued jobs still drain.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frozenqubits::api::{DeviceSpec, JobBuilder};

    fn job(id: u64) -> QueuedJob {
        QueuedJob {
            id: JobId::new(id),
            spec: JobBuilder::new()
                .barabasi_albert(8, 1, 1)
                .device(DeviceSpec::IbmMontreal)
                .baseline()
                .build()
                .unwrap(),
        }
    }

    #[test]
    fn bounded_fifo_with_backpressure() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        queue.push(job(1)).unwrap();
        queue.push(job(2)).unwrap();
        assert_eq!(queue.push(job(3)).unwrap_err(), PushError::Full);
        assert_eq!(queue.depth(), 2);
        assert_eq!(queue.pop().unwrap().id, JobId::new(1));
        queue.push(job(3)).unwrap();
        assert_eq!(queue.pop().unwrap().id, JobId::new(2));
        assert_eq!(queue.pop().unwrap().id, JobId::new(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let queue = JobQueue::new(4);
        queue.push(job(1)).unwrap();
        queue.close();
        assert_eq!(queue.push(job(2)).unwrap_err(), PushError::Closed);
        assert_eq!(queue.pop().unwrap().id, JobId::new(1));
        assert!(queue.pop().is_none());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let queue = std::sync::Arc::new(JobQueue::new(1));
        let waiter = {
            let queue = queue.clone();
            std::thread::spawn(move || queue.pop())
        };
        // Give the waiter a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap().is_none());
    }
}
