//! Minimal HTTP/1.1 framing over `std::net` — request parsing and
//! response writing for the job service. Public because the sibling
//! `fq-dispatch` crate serves its front-door surface on exactly this
//! framing (same limits, same error mapping, same defensive posture).
//!
//! The workspace is offline (no hyper/tokio), so this is a deliberately
//! small, defensive hand-rolled subset: request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and hard limits on line, header
//! and body sizes so a misbehaving client can never make the server
//! allocate unboundedly or hang (reads are additionally bounded by the
//! socket read timeout the server installs). Chunked transfer encoding
//! is out of scope and rejected with `501 Not Implemented`.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request line or single header line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method token as received (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Header `(name, value)` pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The value of query parameter `key` (`?key=value`), if present.
    /// No percent-decoding — the service's parameters are plain tokens.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Every variant maps to a close-worthy
/// condition: either the connection ended cleanly ([`ReadError::Closed`],
/// [`ReadError::IdleTimeout`]) or the server answers with the mapped
/// status and closes.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before the first byte of a request — the normal end of
    /// a keep-alive connection. Close silently.
    Closed,
    /// The read timeout expired with no request in flight. Close
    /// silently.
    IdleTimeout,
    /// The peer vanished or stalled mid-request (truncated body, EOF
    /// inside headers, timeout after partial data). → `400`.
    Truncated(String),
    /// Anything malformed: bad request line, bad header, bad
    /// `Content-Length`. → `400`.
    BadRequest(String),
    /// `Content-Length` exceeds the configured body limit. → `413`.
    PayloadTooLarge {
        /// The configured limit the request exceeded.
        limit: usize,
    },
    /// A feature this server deliberately does not speak (chunked
    /// transfer encoding). → `501`.
    NotImplemented(String),
    /// An HTTP version other than 1.0/1.1. → `505`.
    VersionNotSupported(String),
}

impl ReadError {
    /// The response status for this error, or `None` when the connection
    /// should just close silently.
    pub fn status(&self) -> Option<u16> {
        match self {
            ReadError::Closed | ReadError::IdleTimeout => None,
            ReadError::Truncated(_) | ReadError::BadRequest(_) => Some(400),
            ReadError::PayloadTooLarge { .. } => Some(413),
            ReadError::NotImplemented(_) => Some(501),
            ReadError::VersionNotSupported(_) => Some(505),
        }
    }

    /// Human-readable message for the error body.
    pub fn message(&self) -> String {
        match self {
            ReadError::Closed => "connection closed".into(),
            ReadError::IdleTimeout => "idle timeout".into(),
            ReadError::Truncated(msg) | ReadError::BadRequest(msg) => msg.clone(),
            ReadError::PayloadTooLarge { limit } => {
                format!("request body exceeds the {limit}-byte limit")
            }
            ReadError::NotImplemented(msg) => msg.clone(),
            ReadError::VersionNotSupported(v) => format!("unsupported HTTP version `{v}`"),
        }
    }
}

fn timed_out(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A [`Read`] wrapper enforcing a wall-clock deadline across a whole
/// request, not per syscall.
///
/// The socket read timeout alone resets on every byte, so a slow-drip
/// ("slowloris") client sending one header byte per interval would hold
/// a connection thread forever. This wrapper fails any read attempted
/// after `deadline` with [`io::ErrorKind::TimedOut`]; combined with the
/// per-read socket timeout, total request time is bounded by
/// `deadline + read_timeout`. The connection loop resets the deadline
/// before each request.
#[derive(Debug)]
pub struct DeadlineReader<R> {
    inner: R,
    deadline: std::time::Instant,
}

impl<R> DeadlineReader<R> {
    /// Wraps `inner` with no deadline armed yet (reads pass through
    /// until [`DeadlineReader::arm`] is called).
    pub fn new(inner: R) -> DeadlineReader<R> {
        DeadlineReader {
            inner,
            deadline: std::time::Instant::now() + std::time::Duration::from_secs(60 * 60 * 24),
        }
    }

    /// Starts a fresh per-request deadline `budget` from now.
    pub fn arm(&mut self, budget: std::time::Duration) {
        self.deadline = std::time::Instant::now() + budget;
    }
}

impl<R: Read> Read for DeadlineReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if std::time::Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        self.inner.read(buf)
    }
}

/// Reads one CRLF (or bare-LF) terminated line, without the terminator.
/// `first` marks the request line, where EOF/timeout mean a clean close
/// rather than a truncated request.
fn read_line(reader: &mut impl BufRead, first: bool) -> Result<String, ReadError> {
    let mut raw = Vec::new();
    let mut limited = reader.take(MAX_LINE_BYTES as u64 + 1);
    match limited.read_until(b'\n', &mut raw) {
        Ok(0) if first && raw.is_empty() => return Err(ReadError::Closed),
        Ok(0) => return Err(ReadError::Truncated("connection closed mid-request".into())),
        Ok(_) if raw.last() != Some(&b'\n') => {
            return if raw.len() > MAX_LINE_BYTES {
                Err(ReadError::BadRequest(format!(
                    "line exceeds {MAX_LINE_BYTES} bytes"
                )))
            } else {
                Err(ReadError::Truncated("connection closed mid-line".into()))
            };
        }
        Ok(_) => {}
        Err(e) if timed_out(&e) && first && raw.is_empty() => return Err(ReadError::IdleTimeout),
        Err(e) if timed_out(&e) => {
            return Err(ReadError::Truncated("read timed out mid-request".into()))
        }
        Err(e) => return Err(ReadError::Truncated(format!("read failed: {e}"))),
    }
    while matches!(raw.last(), Some(b'\n') | Some(b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ReadError::BadRequest("line is not valid UTF-8".into()))
}

/// Reads and validates one request. `max_body` bounds the accepted
/// `Content-Length`.
pub fn read_request(reader: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let request_line = read_line(reader, true)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    match version {
        "HTTP/1.1" | "HTTP/1.0" => {}
        other => return Err(ReadError::VersionNotSupported(other.into())),
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, false)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::BadRequest(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::BadRequest(format!("malformed header `{line}`")));
        };
        // RFC 9112 §5.1: no whitespace between the field name and the
        // colon (`Content-Length : 44` must be rejected, not honored —
        // a proxy that ignores it would disagree with us on the body
        // length), and leading whitespace would be obs-fold
        // continuation, which this server does not speak either.
        if name.is_empty() || name != name.trim() {
            return Err(ReadError::BadRequest(format!(
                "whitespace around header name in `{line}`"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    };

    // Check every occurrence, not the first: `transfer-encoding:
    // identity` followed by `transfer-encoding: chunked` must not slip
    // past a first-match lookup (the TE flavor of the content-length
    // smuggling vector handled below).
    if headers
        .iter()
        .filter(|(n, _)| n == "transfer-encoding")
        .any(|(_, v)| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::NotImplemented(
            "transfer-encoding is not supported; send a content-length body".into(),
        ));
    }

    // Strict `content-length`: exactly one occurrence (duplicate or
    // conflicting values are the classic request-smuggling vector behind
    // a proxy that picks the other one — RFC 9112 §6.3 says reject) and
    // plain ASCII digits only (`+5`/`0x5` would also be
    // proxy-divergent, even though `usize::from_str` accepts `+`).
    let mut lengths = headers.iter().filter(|(n, _)| n == "content-length");
    let content_length = match (lengths.next(), lengths.next()) {
        (None, _) => 0,
        (Some(_), Some(_)) => {
            return Err(ReadError::BadRequest(
                "multiple content-length headers".into(),
            ));
        }
        (Some((_, v)), None) => {
            let digits = v.trim();
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ReadError::BadRequest(format!(
                    "malformed content-length `{digits}`"
                )));
            }
            digits.parse::<usize>().map_err(|_| {
                ReadError::BadRequest(format!("malformed content-length `{digits}`"))
            })?
        }
    };
    if content_length > max_body {
        return Err(ReadError::PayloadTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if timed_out(&e) {
                ReadError::Truncated("read timed out inside the request body".into())
            } else {
                ReadError::Truncated(format!("connection closed inside the request body ({e})"))
            }
        })?;
    }

    let connection = find("connection").map(str::to_ascii_lowercase);
    let keep_alive = match version {
        "HTTP/1.0" => connection.as_deref() == Some("keep-alive"),
        _ => connection.as_deref() != Some("close"),
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
        keep_alive,
        headers,
    })
}

/// An outgoing response: status, optional extra headers, JSON body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the always-present content/connection set.
    pub extra_headers: Vec<(&'static str, String)>,
    /// The response body (the service always speaks JSON).
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serializes the response to `writer`. `keep_alive` selects the
    /// advertised `connection` disposition.
    pub fn write(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        writer.write_all(out.as_bytes())?;
        writer.flush()
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_a_minimal_request() {
        let req = parse(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.query, None);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_bodies_queries_and_connection_close() {
        let req = parse(
            b"POST /v1/jobs?mode=async HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.query_param("mode"), Some("async"));
        assert_eq!(req.query_param("nope"), None);
        assert_eq!(req.body, b"body");
        assert!(!req.keep_alive);
    }

    #[test]
    fn retains_headers_for_handlers() {
        let req =
            parse(b"GET /v1/stats HTTP/1.1\r\nAuthorization: Bearer sesame\r\nX-Custom: v\r\n\r\n")
                .unwrap();
        assert_eq!(req.header("authorization"), Some("Bearer sesame"));
        assert_eq!(req.header("x-custom"), Some("v"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn http_10_defaults_to_close() {
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse(b""), Err(ReadError::Closed)));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            Err(ReadError::VersionNotSupported(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        // RFC 9112 §5.1: whitespace before the colon must be rejected —
        // a proxy that strips `Content-Length : 4` while we honor it
        // would disagree with us about where the body ends.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length : 4\r\n\r\nbody"),
            Err(ReadError::BadRequest(msg)) if msg.contains("whitespace")
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\n folded: continuation\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: frog\r\n\r\n"),
            Err(ReadError::BadRequest(_))
        ));
        // Smuggling-adjacent leniency: duplicate or sign-prefixed
        // content-length values must be rejected, not first-one-wins.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\nbody"),
            Err(ReadError::BadRequest(msg)) if msg.contains("multiple")
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nbody"),
            Err(ReadError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::NotImplemented(_))
        ));
    }

    #[test]
    fn rejects_oversized_and_truncated_bodies() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n"),
            Err(ReadError::PayloadTooLarge { limit: 1024 })
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ReadError::Truncated(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x"),
            Err(ReadError::Truncated(_))
        ));
    }

    #[test]
    fn caps_line_length() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(
            parse(&raw),
            Err(ReadError::BadRequest(msg)) if msg.contains("exceeds")
        ));
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("x-extra", "1")
            .write(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-extra: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
