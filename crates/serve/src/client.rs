//! A minimal blocking HTTP client for the job service — enough for the
//! examples, the e2e tests and CI smoke steps, with no dependencies
//! beyond `std::net` (the same offline constraint as the server).
//!
//! Two tiers, by traffic shape:
//!
//! * [`request`] and the typed helpers ([`submit_sync`],
//!   [`submit_async`], [`poll`]) open one connection per call
//!   (`connection: close`) — fine for smoke tests and scripts;
//! * [`ShardConn`] holds a keep-alive `TcpStream` across requests and
//!   frames responses by `content-length` — what `fq-dispatch` uses to
//!   forward thousands of jobs without a TCP handshake per job.
//!
//! # Examples
//!
//! ```no_run
//! use fq_serve::client;
//! use frozenqubits::api::{DeviceSpec, JobBuilder};
//!
//! let spec = JobBuilder::new()
//!     .barabasi_albert(12, 1, 7)
//!     .device(DeviceSpec::IbmMontreal)
//!     .compare()
//!     .build()?;
//! let report = client::submit_sync("127.0.0.1:8077", &spec)?.into_compare()?;
//! println!("improvement: {:.2}x", report.improvement);
//! # Ok::<(), frozenqubits::FqError>(())
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fq_faults::{FaultKind, FaultPlan, FaultSite};
use frozenqubits::{FqError, JobId, JobResult, JobSpec, TemplateArtifact, TemplateCache};
use serde::json::Value;

/// How long the client waits for a response before giving up.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(300);

/// Upper bound on a response body the client will buffer. A shard's
/// largest legitimate answer is a template artifact (well under a
/// megabyte); anything claiming more is a broken or hostile peer, and
/// honoring it would let one response OOM the dispatcher.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body (the service always answers JSON).
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as a JSON document.
    ///
    /// # Errors
    ///
    /// [`FqError::Serde`] when the body is not valid JSON.
    pub fn json(&self) -> Result<Value, FqError> {
        Ok(Value::parse(&self.body)?)
    }
}

/// Performs one HTTP request against `addr` and reads the full response.
///
/// # Errors
///
/// [`FqError::Io`] for connection problems and [`FqError::Serde`] for an
/// unparsable response.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<HttpResponse, FqError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;

    let mut out = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    if let Some(body) = body {
        out.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    out.push_str("\r\n");
    if let Some(body) = body {
        out.push_str(body);
    }
    stream.write_all(out.as_bytes())?;

    // `connection: close` means the response ends at EOF.
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> Result<HttpResponse, FqError> {
    let bad = |msg: &str| FqError::Serde(format!("malformed HTTP response: {msg}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("unparsable status line `{status_line}`")))?;
    let headers = lines
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(&format!("malformed header `{line}`")))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect::<Result<_, FqError>>()?;
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Turns a non-2xx service response into an [`FqError::Io`] carrying the
/// status and the error envelope.
fn service_error(response: &HttpResponse) -> FqError {
    FqError::Io(format!("HTTP {}: {}", response.status, response.body))
}

/// A keep-alive client connection to one shard.
///
/// Unlike [`request`], which opens a fresh TCP connection per call,
/// `ShardConn` holds the `TcpStream` across requests and frames each
/// response by its `content-length` header, so a dispatcher forwarding
/// thousands of jobs to the same shard pays one TCP handshake, not one
/// per job. The connection is (re-)established lazily: on first use,
/// after any transport error, and after a server-initiated
/// `connection: close`. [`connects`](Self::connects) counts dials, which
/// is what the reuse regression test pins.
#[derive(Debug)]
pub struct ShardConn {
    addr: String,
    auth_token: Option<String>,
    stream: Option<BufReader<TcpStream>>,
    connects: u64,
    read_timeout: Duration,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ShardConn {
    /// Creates a (not yet connected) handle to the shard at `addr`.
    #[must_use]
    pub fn new(addr: &str) -> Self {
        Self {
            addr: addr.to_string(),
            auth_token: None,
            stream: None,
            connects: 0,
            read_timeout: RESPONSE_TIMEOUT,
            fault_plan: None,
        }
    }

    /// Sets the bearer token sent as `authorization: Bearer <token>` on
    /// every request (the shard gates `POST /v1/templates` behind it).
    pub fn set_token(&mut self, token: &str) {
        self.auth_token = Some(token.to_string());
    }

    /// Overrides the per-request read timeout (default 300 s). Takes
    /// effect on the next dial, so call it before the first request.
    /// The dispatcher's sentinel uses a short timeout here so one
    /// stalled shard cannot wedge a whole probe cycle.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        self.read_timeout = timeout;
        // Drop any cached connection still carrying the old timeout.
        self.stream = None;
    }

    /// Arms chaos-test fault injection on this connection: the plan's
    /// [`FaultSite::Dial`] and [`FaultSite::Response`] schedules are
    /// consulted on every dial and response read. Never set in
    /// production paths — with no plan the hooks are skipped branches.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// The shard address this connection dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// How many times this handle has dialed the shard. Two sequential
    /// requests on a healthy connection leave this at 1.
    #[must_use]
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Performs one HTTP request over the held connection, dialing first
    /// if necessary, and reads the `content-length`-framed response.
    ///
    /// Any transport error drops the cached connection so the next call
    /// redials; the error itself is surfaced to the caller (the
    /// dispatcher's retry policy decides whether to try again — this
    /// layer never re-sends a request by itself, which keeps
    /// non-idempotent submissions single-shot).
    ///
    /// # Errors
    ///
    /// [`FqError::Io`] for connect/read/write failures, truncated or
    /// oversized responses; [`FqError::Serde`] for an unparsable status
    /// line or header.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, FqError> {
        match self.request_inner(method, target, body) {
            Ok(response) => Ok(response),
            Err(error) => {
                self.stream = None;
                Err(error)
            }
        }
    }

    fn request_inner(
        &mut self,
        method: &str,
        target: &str,
        body: Option<&str>,
    ) -> Result<HttpResponse, FqError> {
        if self.stream.is_none() {
            if let Some(plan) = &self.fault_plan {
                match plan.roll(FaultSite::Dial) {
                    Some(FaultKind::Refuse) => {
                        return Err(FqError::Io(format!(
                            "injected fault: connection to {} refused",
                            self.addr
                        )));
                    }
                    Some(FaultKind::Stall(ms)) => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    _ => {}
                }
            }
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(BufReader::new(stream));
            self.connects += 1;
        }

        let mut out = format!(
            "{method} {target} HTTP/1.1\r\nhost: {}\r\nconnection: keep-alive\r\n",
            self.addr
        );
        if let Some(token) = &self.auth_token {
            out.push_str(&format!("authorization: Bearer {token}\r\n"));
        }
        if let Some(body) = body {
            out.push_str(&format!(
                "content-type: application/json\r\ncontent-length: {}\r\n",
                body.len()
            ));
        }
        out.push_str("\r\n");
        if let Some(body) = body {
            out.push_str(body);
        }

        let reader = self.stream.as_mut().expect("connection established above");
        reader.get_mut().write_all(out.as_bytes())?;

        let (response, close) = read_framed_response(reader)?;
        if let Some(plan) = &self.fault_plan {
            match plan.roll(FaultSite::Response) {
                // The request reached the shard and *executed* — only
                // the response is lost. This is the nastiest transport
                // fault for a forwarder: retrying may run the job twice
                // (safe here because execution is deterministic), and
                // the caller cannot tell it from a pre-execution cut.
                Some(FaultKind::Truncate) => {
                    return Err(FqError::Io(
                        "injected fault: response truncated mid-body".to_string(),
                    ));
                }
                Some(FaultKind::Stall(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
        }
        if close {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Reads one `content-length`-framed response from a keep-alive stream.
/// Returns the response and whether the server asked to close.
fn read_framed_response(
    reader: &mut BufReader<TcpStream>,
) -> Result<(HttpResponse, bool), FqError> {
    let truncated =
        |at: &str| FqError::Io(format!("truncated HTTP response: connection closed {at}"));
    let bad = |msg: &str| FqError::Serde(format!("malformed HTTP response: {msg}"));

    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(truncated("before the status line"));
    }
    let status_line = status_line.trim_end();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("unparsable status line `{status_line}`")))?;

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(truncated("mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(&format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| bad(&format!("unparsable content-length `{v}`")))?,
        None => 0,
    };
    if length > MAX_RESPONSE_BYTES {
        return Err(FqError::Io(format!(
            "oversized HTTP response: content-length {length} exceeds the {MAX_RESPONSE_BYTES}-byte cap"
        )));
    }

    let mut body = vec![0u8; length];
    reader
        .read_exact(&mut body)
        .map_err(|_| truncated("mid-body"))?;
    let body =
        String::from_utf8(body).map_err(|_| FqError::Io("non-UTF-8 response body".to_string()))?;

    let close = headers
        .iter()
        .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
    Ok((
        HttpResponse {
            status,
            headers,
            body,
        },
        close,
    ))
}

/// Submits `spec` synchronously; the `200` body is the byte-canonical
/// `JobResult` document, parsed and returned.
///
/// # Errors
///
/// [`FqError::Io`] carrying the status and error envelope for any
/// non-`200` response (including job failures), plus transport errors.
pub fn submit_sync(addr: &str, spec: &JobSpec) -> Result<JobResult, FqError> {
    let response = request(addr, "POST", "/v1/jobs", Some(&spec.to_json()))?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    JobResult::from_json(&response.body)
}

/// Submits `spec` asynchronously; returns the id to poll.
///
/// # Errors
///
/// [`FqError::Io`] for any non-`202` response, plus transport errors.
pub fn submit_async(addr: &str, spec: &JobSpec) -> Result<JobId, FqError> {
    let response = request(addr, "POST", "/v1/jobs?mode=async", Some(&spec.to_json()))?;
    if response.status != 202 {
        return Err(service_error(&response));
    }
    response.json()?.field("id")?.as_str()?.parse()
}

/// Polls `GET /v1/jobs/{id}`: returns the status string (`queued`,
/// `running`, `done`, `failed`) and, for `done`, the decoded result.
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses (e.g. an unknown id), plus
/// transport and decode errors.
pub fn poll(addr: &str, id: JobId) -> Result<(String, Option<JobResult>), FqError> {
    let response = request(addr, "GET", &format!("/v1/jobs/{id}"), None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    let status = response.json()?.field("status")?.as_str()?.to_string();
    let result = (status == "done")
        .then(|| crate::wire::result_from_envelope(&response.body))
        .transpose()?;
    Ok((status, result))
}

/// Fetches a peer shard's resident-template index: `(fingerprint,
/// last_used)` rows, hottest first (the peer's ordering).
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses, plus transport and decode
/// errors.
pub fn template_index(addr: &str) -> Result<Vec<(String, u64)>, FqError> {
    let response = request(addr, "GET", "/v1/templates", None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    response
        .json()?
        .field("templates")?
        .as_array()?
        .iter()
        .map(|entry| {
            Ok((
                entry.field("fingerprint")?.as_str()?.to_string(),
                entry.field("last_used")?.as_u64()?,
            ))
        })
        .collect()
}

/// Fetches one template artifact from a peer shard by fingerprint.
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses (e.g. the peer evicted it),
/// plus transport and artifact-decode errors.
pub fn fetch_template(addr: &str, fingerprint: &str) -> Result<TemplateArtifact, FqError> {
    let response = request(addr, "GET", &format!("/v1/templates/{fingerprint}"), None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    TemplateArtifact::from_json(&response.body)
}

/// Pushes one template artifact into a peer shard's store (`POST
/// /v1/templates`).
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses, plus transport errors.
pub fn push_template(addr: &str, artifact: &TemplateArtifact) -> Result<(), FqError> {
    push_template_with_token(addr, artifact, None)
}

/// [`push_template`] with an optional bearer token for shards running
/// with `--auth-token` (which gates `POST /v1/templates` behind it).
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses (including `401` when the
/// token is missing or wrong), plus transport errors.
pub fn push_template_with_token(
    addr: &str,
    artifact: &TemplateArtifact,
    token: Option<&str>,
) -> Result<(), FqError> {
    let mut conn = ShardConn::new(addr);
    if let Some(token) = token {
        conn.set_token(token);
    }
    let response = conn.request("POST", "/v1/templates", Some(&artifact.to_json()))?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    Ok(())
}

/// Warms `cache` from a peer shard: pulls the peer's template index and
/// fetches up to `limit` of its hottest artifacts into the cache, so a
/// freshly started shard serves its first jobs without paying compiles
/// the fleet already paid. Returns how many templates were installed.
///
/// Individual artifacts that vanish or fail integrity checks mid-pull
/// are skipped (the peer keeps serving; its cache keeps evolving) —
/// only an unreachable peer or an unreadable index is an error.
///
/// # Errors
///
/// [`FqError::Io`] when the peer's index cannot be fetched.
pub fn warm_from(addr: &str, cache: &TemplateCache, limit: usize) -> Result<usize, FqError> {
    let mut installed = 0usize;
    for (fingerprint, _) in template_index(addr)?.into_iter().take(limit) {
        if let Ok(artifact) = fetch_template(addr, &fingerprint) {
            cache.insert_artifact(&artifact);
            installed += 1;
        }
    }
    Ok(installed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\nRetry-After: 1\r\n\r\n{}";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.body, "{}");
        assert!(parse_response("garbage").is_err());
    }
}
