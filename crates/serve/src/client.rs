//! A minimal blocking HTTP client for the job service — enough for the
//! examples, the e2e tests and CI smoke steps, with no dependencies
//! beyond `std::net` (the same offline constraint as the server).
//!
//! One request per connection (`connection: close`): the client's jobs
//! are smoke tests and batch submission scripts, not connection-pool
//! performance. Use [`request`] for raw access or the typed helpers
//! ([`submit_sync`], [`submit_async`], [`poll`]) for the common flows.
//!
//! # Examples
//!
//! ```no_run
//! use fq_serve::client;
//! use frozenqubits::api::{DeviceSpec, JobBuilder};
//!
//! let spec = JobBuilder::new()
//!     .barabasi_albert(12, 1, 7)
//!     .device(DeviceSpec::IbmMontreal)
//!     .compare()
//!     .build()?;
//! let report = client::submit_sync("127.0.0.1:8077", &spec)?.into_compare()?;
//! println!("improvement: {:.2}x", report.improvement);
//! # Ok::<(), frozenqubits::FqError>(())
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use frozenqubits::{FqError, JobId, JobResult, JobSpec, TemplateArtifact, TemplateCache};
use serde::json::Value;

/// How long the client waits for a response before giving up.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(300);

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body (the service always answers JSON).
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (lower-case), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as a JSON document.
    ///
    /// # Errors
    ///
    /// [`FqError::Serde`] when the body is not valid JSON.
    pub fn json(&self) -> Result<Value, FqError> {
        Ok(Value::parse(&self.body)?)
    }
}

/// Performs one HTTP request against `addr` and reads the full response.
///
/// # Errors
///
/// [`FqError::Io`] for connection problems and [`FqError::Serde`] for an
/// unparsable response.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<HttpResponse, FqError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;

    let mut out = format!("{method} {target} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n");
    if let Some(body) = body {
        out.push_str(&format!(
            "content-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        ));
    }
    out.push_str("\r\n");
    if let Some(body) = body {
        out.push_str(body);
    }
    stream.write_all(out.as_bytes())?;

    // `connection: close` means the response ends at EOF.
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> Result<HttpResponse, FqError> {
    let bad = |msg: &str| FqError::Serde(format!("malformed HTTP response: {msg}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("no header/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("unparsable status line `{status_line}`")))?;
    let headers = lines
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad(&format!("malformed header `{line}`")))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect::<Result<_, FqError>>()?;
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Turns a non-2xx service response into an [`FqError::Io`] carrying the
/// status and the error envelope.
fn service_error(response: &HttpResponse) -> FqError {
    FqError::Io(format!("HTTP {}: {}", response.status, response.body))
}

/// Submits `spec` synchronously; the `200` body is the byte-canonical
/// `JobResult` document, parsed and returned.
///
/// # Errors
///
/// [`FqError::Io`] carrying the status and error envelope for any
/// non-`200` response (including job failures), plus transport errors.
pub fn submit_sync(addr: &str, spec: &JobSpec) -> Result<JobResult, FqError> {
    let response = request(addr, "POST", "/v1/jobs", Some(&spec.to_json()))?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    JobResult::from_json(&response.body)
}

/// Submits `spec` asynchronously; returns the id to poll.
///
/// # Errors
///
/// [`FqError::Io`] for any non-`202` response, plus transport errors.
pub fn submit_async(addr: &str, spec: &JobSpec) -> Result<JobId, FqError> {
    let response = request(addr, "POST", "/v1/jobs?mode=async", Some(&spec.to_json()))?;
    if response.status != 202 {
        return Err(service_error(&response));
    }
    response.json()?.field("id")?.as_str()?.parse()
}

/// Polls `GET /v1/jobs/{id}`: returns the status string (`queued`,
/// `running`, `done`, `failed`) and, for `done`, the decoded result.
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses (e.g. an unknown id), plus
/// transport and decode errors.
pub fn poll(addr: &str, id: JobId) -> Result<(String, Option<JobResult>), FqError> {
    let response = request(addr, "GET", &format!("/v1/jobs/{id}"), None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    let status = response.json()?.field("status")?.as_str()?.to_string();
    let result = (status == "done")
        .then(|| crate::wire::result_from_envelope(&response.body))
        .transpose()?;
    Ok((status, result))
}

/// Fetches a peer shard's resident-template index: `(fingerprint,
/// last_used)` rows, hottest first (the peer's ordering).
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses, plus transport and decode
/// errors.
pub fn template_index(addr: &str) -> Result<Vec<(String, u64)>, FqError> {
    let response = request(addr, "GET", "/v1/templates", None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    response
        .json()?
        .field("templates")?
        .as_array()?
        .iter()
        .map(|entry| {
            Ok((
                entry.field("fingerprint")?.as_str()?.to_string(),
                entry.field("last_used")?.as_u64()?,
            ))
        })
        .collect()
}

/// Fetches one template artifact from a peer shard by fingerprint.
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses (e.g. the peer evicted it),
/// plus transport and artifact-decode errors.
pub fn fetch_template(addr: &str, fingerprint: &str) -> Result<TemplateArtifact, FqError> {
    let response = request(addr, "GET", &format!("/v1/templates/{fingerprint}"), None)?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    TemplateArtifact::from_json(&response.body)
}

/// Pushes one template artifact into a peer shard's store (`POST
/// /v1/templates`).
///
/// # Errors
///
/// [`FqError::Io`] for non-`200` responses, plus transport errors.
pub fn push_template(addr: &str, artifact: &TemplateArtifact) -> Result<(), FqError> {
    let response = request(addr, "POST", "/v1/templates", Some(&artifact.to_json()))?;
    if response.status != 200 {
        return Err(service_error(&response));
    }
    Ok(())
}

/// Warms `cache` from a peer shard: pulls the peer's template index and
/// fetches up to `limit` of its hottest artifacts into the cache, so a
/// freshly started shard serves its first jobs without paying compiles
/// the fleet already paid. Returns how many templates were installed.
///
/// Individual artifacts that vanish or fail integrity checks mid-pull
/// are skipped (the peer keeps serving; its cache keeps evolving) —
/// only an unreachable peer or an unreadable index is an error.
///
/// # Errors
///
/// [`FqError::Io`] when the peer's index cannot be fetched.
pub fn warm_from(addr: &str, cache: &TemplateCache, limit: usize) -> Result<usize, FqError> {
    let mut installed = 0usize;
    for (fingerprint, _) in template_index(addr)?.into_iter().take(limit) {
        if let Ok(artifact) = fetch_template(addr, &fingerprint) {
            cache.insert_artifact(&artifact);
            installed += 1;
        }
    }
    Ok(installed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = "HTTP/1.1 503 Service Unavailable\r\ncontent-type: application/json\r\nRetry-After: 1\r\n\r\n{}";
        let response = parse_response(raw).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.body, "{}");
        assert!(parse_response("garbage").is_err());
    }
}
