//! The server proper: configuration, the accept loop, per-connection
//! request handling, and the endpoint implementations.
//!
//! The data path is
//!
//! ```text
//! TcpListener ──▶ connection threads ──▶ bounded JobQueue ──▶ worker pool
//!                      (parse spec,            │                  │
//!                       mint JobId)            ▼                  ▼
//!                                         503 when full    shared BatchRunner
//!                                                          (one TemplateCache —
//!                                                           clients warm each other)
//! ```
//!
//! Submissions are synchronous by default (`POST /v1/jobs` blocks until
//! the job finishes and returns the bare canonical `JobResult` JSON) or
//! asynchronous with `?mode=async` (`202` + id, poll `GET
//! /v1/jobs/{id}`). Either way the job goes through the same queue and
//! workers, so backpressure and cache warming behave identically.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use fq_faults::{FaultKind, FaultPlan, FaultSite, FaultyStore};
use frozenqubits::api::BackendSpec;
use frozenqubits::{
    BatchRunner, DiskStore, FqError, JobSpec, MemoryStore, QosTier, TemplateArtifact,
    TemplateStore, TieredStore,
};
use serde::json::Value;

use crate::error::{error_response, job_error_response, kind_name, status_for};
use crate::http::{self, ReadError, Request, Response};
use crate::queue::{JobQueue, PushError, QueuedJob};
use crate::router::{route, Route};
use crate::store::{JobState, JobStore, Lookup};
use crate::wire::{job_envelope, submit_ack, WIRE_V};
use crate::worker::WorkerPool;

/// Server configuration. Start from [`ServerConfig::default`] and
/// override what you need; every field has a conservative default.
///
/// # Examples
///
/// ```no_run
/// use fq_serve::{Server, ServerConfig};
///
/// let config = ServerConfig {
///     addr: "127.0.0.1:8077".into(),
///     workers: 8,
///     ..ServerConfig::default()
/// };
/// let handle = Server::spawn(config)?;
/// println!("listening on http://{}", handle.addr());
/// handle.join();
/// # Ok::<(), frozenqubits::FqError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. `127.0.0.1:0` (the default) picks an ephemeral
    /// loopback port — read the actual one from [`ServerHandle::addr`].
    pub addr: String,
    /// Worker threads draining the queue. `0` is legal and means jobs
    /// queue without executing (useful for backpressure tests and
    /// drain-later setups); synchronous submissions then time out.
    pub workers: usize,
    /// Bound on queued-but-unclaimed jobs; beyond it submissions get
    /// `503`. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Optional LRU bound on the shared template cache
    /// ([`BatchRunner::with_cache_capacity`]); `None` = unbounded.
    pub cache_capacity: Option<usize>,
    /// When set, compiled templates spill to (and warm-start from) this
    /// directory through a [`TieredStore`]: every compile is written
    /// through to disk, restarts find it there, and the LRU bound (if
    /// any) demotes instead of discarding. `None` = memory only.
    pub cache_dir: Option<String>,
    /// When set, pull the peer shard's hottest templates into this
    /// server's store at boot (`GET /v1/templates` on the peer, then one
    /// `GET /v1/templates/{fingerprint}` per pulled artifact). Best
    /// effort: an unreachable peer logs to stderr and the server starts
    /// cold.
    pub warm_from: Option<String>,
    /// Most templates pulled from `warm_from` at boot.
    pub warm_limit: usize,
    /// Residency bound gating `POST /v1/templates`: pushes are refused
    /// (`503` + kind `cache_full`) once the store holds this many
    /// artifacts across both tiers. Organic compiles are bounded by the
    /// workload's shape space, but pushes are remote input — without a
    /// cap an unauthenticated client could grow an unbounded store (or
    /// the disk spill directory) without limit.
    pub template_push_cap: usize,
    /// How long a finished job's result is retained for polling before
    /// the registry expires it (poll-after-expiry → `410 Gone`).
    pub job_ttl: Duration,
    /// Most finished results retained at once (oldest-completed expire
    /// first).
    pub max_done_jobs: usize,
    /// Thread count each worker's engine uses for one job's branches
    /// (`BatchRunner::with_threads`). The default `1` is right when
    /// parallelism comes from concurrent workers; raise it for
    /// branch-heavy single jobs on an otherwise idle service. `0` =
    /// the engine's auto count (honors `FQ_THREADS`).
    pub engine_threads: usize,
    /// Largest accepted request body, in bytes; beyond it → `413`.
    pub max_body_bytes: usize,
    /// Socket read timeout — bounds how long any **single** read may
    /// block (idle keep-alive connections, stalled senders).
    pub read_timeout: Duration,
    /// Wall-clock budget for receiving one complete request. The socket
    /// timeout resets per read, so a slow-drip client could otherwise
    /// hold a connection thread forever; past this deadline the request
    /// fails with `400` (worst case one extra `read_timeout` for a read
    /// already in flight).
    pub request_deadline: Duration,
    /// Most concurrent connections served; beyond it new connections
    /// are shed immediately with `503` instead of spawning unboundedly
    /// many threads.
    pub max_connections: usize,
    /// How long a synchronous submission waits before degrading to an
    /// async-style `202` (the job keeps running; poll the id).
    pub sync_wait: Duration,
    /// When set, every submitted spec is pinned to this backend
    /// ([`JobSpec::with_backend`]) — the operator's backend-selection
    /// hook (e.g. forcing `sim` while a real-device backend is in
    /// shakedown).
    pub backend_override: Option<BackendSpec>,
    /// When set, `POST /v1/templates` requires `authorization: Bearer
    /// <token>` and answers `401` otherwise. Template pushes inject
    /// remote artifacts into the execution path, so they are the one
    /// shard endpoint worth gating even on a trusted network; read
    /// endpoints stay open for probes and warm pulls.
    pub auth_token: Option<String>,
    /// Chaos-test fault injection (see `fq-faults`). When set, the
    /// template store is wrapped in a [`FaultyStore`], the accept loop
    /// rolls [`FaultSite::Accept`] per connection, and workers roll
    /// [`FaultSite::Worker`] per job. `None` (the default, and the only
    /// production setting) leaves every path byte-identical to a build
    /// without the hooks.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            cache_capacity: None,
            cache_dir: None,
            warm_from: None,
            warm_limit: 32,
            template_push_cap: 4096,
            job_ttl: Duration::from_secs(3600),
            max_done_jobs: 4096,
            engine_threads: 1,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(60),
            max_connections: 256,
            sync_wait: Duration::from_secs(120),
            backend_override: None,
            auth_token: None,
            fault_plan: None,
        }
    }
}

/// Everything the request handlers share.
#[derive(Debug)]
struct ServerState {
    queue: Arc<JobQueue>,
    store: Arc<JobStore>,
    runner: Arc<BatchRunner>,
    config: ServerConfig,
    /// Workers executing a job right now (incremented/decremented by
    /// the pool around each job) — the in-flight half of `/v1/stats`.
    busy: Arc<AtomicUsize>,
    /// When the server came up; `/v1/stats` reports the elapsed time so
    /// a dispatcher can tell a fresh (cold-cache) shard from a veteran.
    started: Instant,
    /// Accepted submissions per QoS tier, indexed by [`QosTier::ALL`]
    /// order — the `jobs.tiers` object of `/v1/stats`, so operators can
    /// see the exact/balanced/fast mix a shard is absorbing.
    tier_submitted: [AtomicUsize; QosTier::ALL.len()],
}

/// The HTTP job service. [`Server::spawn`] starts it on a background
/// accept thread and returns a [`ServerHandle`] for address discovery
/// and shutdown.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// [`FqError::InvalidConfig`] for a zero `queue_capacity`;
    /// [`FqError::Io`] when the bind fails.
    pub fn spawn(config: ServerConfig) -> Result<ServerHandle, FqError> {
        if config.queue_capacity == 0 {
            return Err(FqError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if config.max_connections == 0 {
            return Err(FqError::InvalidConfig(
                "max_connections must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut runner = BatchRunner::new().with_threads(config.engine_threads);
        runner = match (&config.cache_dir, config.cache_capacity) {
            // A cache dir composes the memory tier (bounded or not) over
            // the disk spill tier; a bad directory is a startup error.
            (Some(dir), capacity) => {
                let memory = capacity.map_or_else(MemoryStore::new, MemoryStore::with_capacity);
                let tiered: Box<dyn TemplateStore> =
                    Box::new(TieredStore::new(memory, DiskStore::new(dir)?));
                runner.with_store(faulted(tiered, config.fault_plan.as_ref()))
            }
            // A fault plan forces the explicit-store path even without a
            // cache dir, so storage faults can wrap the memory tier; the
            // store built here is exactly what `with_cache_capacity`
            // would have installed.
            (None, capacity) if config.fault_plan.is_some() => {
                let memory = capacity.map_or_else(MemoryStore::new, MemoryStore::with_capacity);
                runner.with_store(faulted(Box::new(memory), config.fault_plan.as_ref()))
            }
            (None, Some(capacity)) => runner.with_cache_capacity(capacity),
            (None, None) => runner,
        };
        if let Some(peer) = &config.warm_from {
            // Best effort: a cold start is a performance problem, a
            // refused boot would be an availability one.
            match crate::client::warm_from(peer, runner.cache(), config.warm_limit) {
                Ok(pulled) => {
                    if pulled > 0 {
                        eprintln!("fq-serve: warm-started with {pulled} templates from {peer}");
                    }
                }
                Err(error) => {
                    eprintln!(
                        "fq-serve: warm transfer from {peer} failed ({error}); starting cold"
                    );
                }
            }
        }
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let store = Arc::new(JobStore::new(config.job_ttl, config.max_done_jobs));
        let runner = Arc::new(runner);
        let busy = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::spawn(
            config.workers,
            Arc::clone(&queue),
            Arc::clone(&store),
            Arc::clone(&runner),
            Arc::clone(&busy),
            config.fault_plan.clone(),
        );
        let state = Arc::new(ServerState {
            queue: Arc::clone(&queue),
            store,
            runner,
            config,
            busy,
            started: Instant::now(),
            tier_submitted: Default::default(),
        });

        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let spawned = thread::Builder::new()
                .name("fq-serve-accept".into())
                .spawn(move || accept_loop(&listener, &state, &stop));
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // Unwind the already-running pool: otherwise its
                    // workers block on the never-closed queue forever.
                    queue.close();
                    pool.join();
                    return Err(FqError::Io(format!("spawning the accept thread: {e}")));
                }
            }
        };

        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            pool: Some(pool),
            queue,
        })
    }
}

/// A running server: address discovery plus orderly shutdown.
///
/// Dropping the handle shuts the server down (stops accepting, closes
/// the queue, drains queued jobs through the workers, joins them), so a
/// test that panics still releases its port and threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
    queue: Arc<JobQueue>,
}

impl ServerHandle {
    /// The actual bound address (resolves `:0` ephemeral binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains already-queued jobs through the workers,
    /// and joins the accept and worker threads.
    pub fn shutdown(mut self) {
        self.stop_internal();
    }

    /// Blocks the calling thread for the server's lifetime (the `serve`
    /// binary's main loop). Returns only if the accept loop exits, then
    /// performs the same cleanup as [`ServerHandle::shutdown`].
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop_internal();
    }

    fn stop_internal(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: `TcpListener::accept` has no timeout, so
        // poke it with a throwaway connection. A `0.0.0.0`/`[::]` bind
        // is not connectable on every platform — poke loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_internal();
    }
}

/// Wraps `store` in a [`FaultyStore`] when a chaos plan is configured;
/// the identity function otherwise.
fn faulted(store: Box<dyn TemplateStore>, plan: Option<&Arc<FaultPlan>>) -> Box<dyn TemplateStore> {
    match plan {
        Some(plan) => Box::new(FaultyStore::new(store, Arc::clone(plan))),
        None => store,
    }
}

/// Decrements the live-connection count even if a handler panics.
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Refuses an over-cap connection with `503`, then drains the client's
/// already-sent request bytes before closing. Closing with unread data
/// in the receive queue makes the kernel RST the connection and discard
/// the queued response — the client would see "connection reset"
/// instead of the 503 (a race the connection-cap test hits under load).
/// The drain is bounded by a short read timeout so a hostile peer can
/// only hold the accept thread briefly.
fn shed_connection(mut stream: TcpStream) {
    let _ = error_response(503, "overloaded", "connection limit reached")
        .write(&mut stream, false)
        .and_then(|()| stream.shutdown(std::net::Shutdown::Write));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut scratch = [0u8; 4096];
    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {}
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, stop: &Arc<AtomicBool>) {
    let active = Arc::new(AtomicUsize::new(0));
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (e.g. fd exhaustion) would
                // otherwise busy-spin this thread at 100% CPU; back off
                // briefly so in-flight connections can release fds.
                thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        // Connection cap: beyond it, shed load with an immediate 503
        // instead of spawning an unbounded number of threads.
        if active.load(Ordering::SeqCst) >= state.config.max_connections {
            shed_connection(stream);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let slot = ConnectionSlot(Arc::clone(&active));
        let state = Arc::clone(state);
        let stop = Arc::clone(stop);
        // Connection threads are detached: each is bounded by the
        // per-request deadline + read timeout, counted against
        // `max_connections`, and closed (`connection: close`) once
        // `stop` is set.
        let spawned = thread::Builder::new()
            .name("fq-serve-conn".into())
            .spawn(move || {
                let _slot = slot;
                handle_connection(stream, &state, &stop);
            });
        // Spawn failure: `slot` moved into the closure that never ran —
        // it is dropped with the error, releasing the count.
        drop(spawned);
    }
}

/// Serves one connection: a keep-alive loop of read → route → respond.
/// Framing errors answer with the mapped status (when one applies) and
/// close; the loop also closes once shutdown has begun.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>, stop: &Arc<AtomicBool>) {
    if let Some(plan) = &state.config.fault_plan {
        match plan.roll(FaultSite::Accept) {
            // Drop the accepted connection before reading a byte — the
            // client sees a reset/EOF, the transport shape of a shard
            // dying between `connect` and its first response.
            Some(FaultKind::Refuse) => return,
            // Sit on the connection (paused-shard / slow-loris shape):
            // the client's read blocks until its own timeout fires.
            Some(FaultKind::Stall(ms)) => thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
    }
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(http::DeadlineReader::new(read_half));
    loop {
        // Arm the slow-drip guard: this whole request must arrive within
        // `request_deadline` (reads already in flight add at most one
        // `read_timeout`).
        reader.get_mut().arm(state.config.request_deadline);
        match http::read_request(&mut reader, state.config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = request.keep_alive && !stop.load(Ordering::SeqCst);
                let response = handle_request(state, &request);
                if response.write(&mut stream, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(error) => {
                if let Some(status) = error.status() {
                    let kind = match &error {
                        ReadError::PayloadTooLarge { .. } => "payload_too_large",
                        ReadError::NotImplemented(_) => "not_implemented",
                        ReadError::VersionNotSupported(_) => "http_version",
                        _ => "bad_request",
                    };
                    let _ =
                        error_response(status, kind, &error.message()).write(&mut stream, false);
                }
                return;
            }
        }
    }
}

/// Routes and executes one request.
fn handle_request(state: &ServerState, request: &Request) -> Response {
    match route(&request.method, &request.path) {
        Route::Healthz => Response::json(
            200,
            Value::object(vec![
                ("v", Value::UInt(WIRE_V)),
                ("status", Value::string("ok")),
            ])
            .to_json(),
        ),
        Route::Stats => Response::json(200, stats_body(state)),
        Route::Submit => handle_submit(state, request),
        Route::Job(id) => match state.store.lookup(id) {
            Lookup::Active(job_state) => Response::json(200, job_envelope(id, &job_state)),
            Lookup::Expired => error_response(
                410,
                "expired",
                &format!("job `{id}` finished, but its result passed the retention bound (TTL/count) and was expired"),
            ),
            Lookup::Unknown => error_response(404, "not_found", &format!("no such job `{id}`")),
        },
        // The message is `JobId::FromStr`'s own (carried through the
        // router), so the wire-facing text has exactly one source.
        Route::MalformedJobId(message) => error_response(400, "bad_request", &message),
        Route::TemplateIndex => Response::json(200, template_index_body(state)),
        Route::Template(fingerprint) => match state.runner.cache().artifact(&fingerprint) {
            Some(artifact) => Response::json(200, artifact.to_json()),
            None => error_response(
                404,
                "not_found",
                &format!("no template `{fingerprint}` resident"),
            ),
        },
        Route::TemplatePush => match authorized(state, request) {
            true => handle_template_push(state, request),
            false => error_response(
                401,
                "unauthorized",
                "POST /v1/templates requires `authorization: Bearer <token>`",
            ),
        },
        Route::MalformedFingerprint(message) => error_response(400, "bad_request", &message),
        Route::MethodNotAllowed { allow } => error_response(
            405,
            "method_not_allowed",
            &format!("{} is not allowed here; allowed: {allow}", request.method),
        )
        .with_header("allow", allow),
        Route::NotFound => error_response(
            404,
            "not_found",
            &format!("no route for `{}`", request.path),
        ),
    }
}

/// `POST /v1/jobs`: parse → (optional backend pin) → enqueue → sync wait
/// or async acknowledgement.
fn handle_submit(state: &ServerState, request: &Request) -> Response {
    let sync = match request.query_param("mode") {
        None | Some("sync") => true,
        Some("async") => false,
        Some(other) => {
            return error_response(
                400,
                "bad_request",
                &format!("unknown mode `{other}` (expected sync or async)"),
            )
        }
    };
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "request body is not valid UTF-8");
    };
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(error) => {
            return error_response(status_for(&error), kind_name(&error), &error.to_string())
        }
    };
    let spec = match state.config.backend_override {
        Some(backend) => spec.with_backend(backend),
        None => spec,
    };
    if let Some(slot) = QosTier::ALL.iter().position(|&t| t == spec.config.tier) {
        state.tier_submitted[slot].fetch_add(1, Ordering::SeqCst);
    }

    let id = state.store.register();
    match state.queue.push(QueuedJob { id, spec }) {
        Ok(()) => {}
        Err(PushError::Full) => {
            state.store.discard(id);
            return error_response(
                503,
                "queue_full",
                &format!(
                    "job queue is at capacity ({}); retry later",
                    state.queue.capacity()
                ),
            )
            .with_header("retry-after", "1");
        }
        Err(PushError::Closed) => {
            state.store.discard(id);
            return error_response(503, "shutting_down", "server is shutting down");
        }
    }

    if !sync {
        return Response::json(202, submit_ack(id))
            .with_header("location", format!("/v1/jobs/{id}"))
            .with_header("fq-job-id", id.to_string());
    }
    match state.store.await_done(id, state.config.sync_wait) {
        // Finished in time: the body is the bare canonical JobResult
        // document — byte-identical to `JobResult::to_json()` of a
        // direct `BatchRunner` run of the same spec.
        Some(JobState::Done(result)) => match result.as_ref() {
            Ok(result) => {
                Response::json(200, result.to_json()).with_header("fq-job-id", id.to_string())
            }
            Err(error) => job_error_response(id, error),
        },
        // Still queued/running after `sync_wait`: degrade to async.
        Some(state_now) => Response::json(202, job_envelope(id, &state_now))
            .with_header("location", format!("/v1/jobs/{id}"))
            .with_header("fq-job-id", id.to_string()),
        None => error_response(500, "internal", "job vanished from the registry"),
    }
}

/// `POST /v1/templates`: accept a serialized template artifact into the
/// shared store — the receive half of shard-to-shard warm transfer. The
/// artifact's own integrity checks (version, fingerprint-vs-key,
/// template width) gate admission; a rejected artifact is a `400`, and
/// an accepted one is immediately servable to every queued job and to
/// further `GET /v1/templates/{fingerprint}` pulls.
fn handle_template_push(state: &ServerState, request: &Request) -> Response {
    // Pushes are remote input: refuse beyond the residency cap so an
    // unauthenticated peer cannot grow the store (or its disk spill)
    // without bound. Organic compiles are not gated — the workload's
    // own shape space bounds those (plus the LRU, when configured).
    let stats = state.runner.cache_stats();
    if stats.len + stats.spill_len >= state.config.template_push_cap {
        return error_response(
            503,
            "cache_full",
            &format!(
                "template store holds {} artifacts (push cap {}); raise --template-push-cap \
                 or bound the store with --cache-capacity",
                stats.len + stats.spill_len,
                state.config.template_push_cap
            ),
        );
    }
    let Ok(body) = std::str::from_utf8(&request.body) else {
        return error_response(400, "bad_request", "request body is not valid UTF-8");
    };
    match TemplateArtifact::from_json(body) {
        Ok(artifact) => {
            let fingerprint = artifact.fingerprint();
            state.runner.cache().insert_artifact(&artifact);
            Response::json(
                200,
                Value::object(vec![
                    ("v", Value::UInt(WIRE_V)),
                    ("status", Value::string("stored")),
                    ("fingerprint", Value::string(fingerprint)),
                ])
                .to_json(),
            )
        }
        Err(error) => error_response(status_for(&error), kind_name(&error), &error.to_string()),
    }
}

/// `GET /v1/templates`: every resident template's fingerprint with a
/// recency stamp, hottest first — what a peer pulls to plan its warm
/// set.
fn template_index_body(state: &ServerState) -> String {
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        (
            "templates",
            Value::Array(
                state
                    .runner
                    .cache()
                    .index()
                    .into_iter()
                    .map(|entry| {
                        Value::object(vec![
                            ("fingerprint", Value::string(entry.fingerprint)),
                            ("last_used", Value::UInt(entry.last_used)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

/// `GET /v1/stats`: cache, queue, job and worker telemetry.
fn stats_body(state: &ServerState) -> String {
    let cache = state.runner.cache_stats();
    let counts = state.store.counts();
    Value::object(vec![
        ("v", Value::UInt(WIRE_V)),
        (
            "cache",
            Value::object(vec![
                ("hits", Value::UInt(cache.hits)),
                ("misses", Value::UInt(cache.misses)),
                ("evictions", Value::UInt(cache.evictions)),
                ("len", Value::UInt(cache.len as u64)),
                (
                    "capacity",
                    cache
                        .capacity
                        .map_or(Value::Null, |c| Value::UInt(c as u64)),
                ),
                ("spills", Value::UInt(cache.spills)),
                ("promotions", Value::UInt(cache.promotions)),
                ("spill_len", Value::UInt(cache.spill_len as u64)),
            ]),
        ),
        (
            "queue",
            Value::object(vec![
                ("depth", Value::UInt(state.queue.depth() as u64)),
                ("capacity", Value::UInt(state.queue.capacity() as u64)),
            ]),
        ),
        (
            "jobs",
            Value::object(vec![
                ("submitted", Value::UInt(counts.submitted)),
                ("completed", Value::UInt(counts.completed)),
                ("failed", Value::UInt(counts.failed)),
                ("expired", Value::UInt(counts.expired)),
                (
                    "tiers",
                    Value::object(
                        QosTier::ALL
                            .iter()
                            .zip(&state.tier_submitted)
                            .map(|(tier, count)| {
                                (
                                    tier.name(),
                                    Value::UInt(count.load(Ordering::SeqCst) as u64),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "workers",
            Value::object(vec![
                ("configured", Value::UInt(state.config.workers as u64)),
                (
                    "busy",
                    Value::UInt(state.busy.load(Ordering::SeqCst) as u64),
                ),
            ]),
        ),
        (
            "uptime_secs",
            Value::UInt(state.started.elapsed().as_secs()),
        ),
    ])
    .to_json()
}

/// Checks the static bearer token gating template pushes. A server
/// started without `--auth-token` accepts everything (the pre-auth
/// behavior); with one, only an exact `Bearer <token>` match passes.
fn authorized(state: &ServerState, request: &Request) -> bool {
    match &state.config.auth_token {
        None => true,
        Some(token) => request
            .header("authorization")
            .and_then(|value| value.strip_prefix("Bearer "))
            .is_some_and(|presented| presented == token.as_str()),
    }
}
