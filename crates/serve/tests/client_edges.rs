//! Client-side edge cases: keep-alive connection reuse and the failure
//! paths a dispatcher meets when a shard misbehaves. Every broken-peer
//! shape must surface as a typed [`FqError`], never a panic — the
//! dispatcher's retry policy is built on matching these errors.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

use fq_serve::client::ShardConn;
use frozenqubits::FqError;

/// Reads one request head (through the blank line) off a fake-shard
/// connection, returning the request line.
fn read_request_head(reader: &mut BufReader<TcpStream>) -> String {
    let mut request_line = String::new();
    reader.read_line(&mut request_line).unwrap();
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line.is_empty() {
            break;
        }
    }
    request_line.trim_end().to_string()
}

/// Spawns a fake shard that accepts exactly one connection and answers
/// each request on it with `responses` in order, then closes.
fn fake_shard(responses: Vec<String>) -> (String, thread::JoinHandle<Vec<String>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut seen = Vec::new();
        for response in responses {
            seen.push(read_request_head(&mut reader));
            stream.write_all(response.as_bytes()).unwrap();
        }
        seen
    });
    (addr, handle)
}

fn ok_response(body: &str) -> String {
    format!(
        "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------------
// Satellite: keep-alive reuse regression
// ---------------------------------------------------------------------

/// Two sequential requests on a `ShardConn` ride one TCP connection:
/// the fake shard accepts exactly once, and `connects()` stays at 1.
#[test]
fn shard_conn_reuses_one_connection_across_requests() {
    let (addr, shard) = fake_shard(vec![ok_response("{\"a\":1}"), ok_response("{\"b\":2}")]);
    let mut conn = ShardConn::new(&addr);

    let first = conn.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.body, "{\"a\":1}");
    let second = conn.request("GET", "/v1/healthz", None).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, "{\"b\":2}");

    assert_eq!(conn.connects(), 1, "second request must reuse the stream");
    let seen = shard.join().unwrap();
    assert_eq!(
        seen,
        vec!["GET /v1/stats HTTP/1.1", "GET /v1/healthz HTTP/1.1"]
    );
}

/// A server-initiated `connection: close` drops the cached stream; the
/// next request redials instead of writing into a dead socket.
#[test]
fn shard_conn_redials_after_server_close() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shard = thread::spawn(move || {
        for _ in 0..2 {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            read_request_head(&mut reader);
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nconnection: close\r\ncontent-length: 2\r\n\r\nok")
                .unwrap();
        }
    });

    let mut conn = ShardConn::new(&addr);
    for _ in 0..2 {
        let response = conn.request("GET", "/v1/healthz", None).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, "ok");
    }
    assert_eq!(conn.connects(), 2, "close must force a redial");
    shard.join().unwrap();
}

/// The bearer token set on the connection rides every request.
#[test]
fn shard_conn_sends_bearer_token() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shard = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut request_line = String::new();
        reader.read_line(&mut request_line).unwrap();
        let mut auth = None;
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(value) = trimmed.strip_prefix("authorization:") {
                auth = Some(value.trim().to_string());
            }
        }
        stream
            .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n")
            .unwrap();
        auth
    });

    let mut conn = ShardConn::new(&addr);
    conn.set_token("hunter2");
    conn.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(shard.join().unwrap().as_deref(), Some("Bearer hunter2"));
}

// ---------------------------------------------------------------------
// Satellite: broken-peer error paths map to typed errors, not panics
// ---------------------------------------------------------------------

/// Dialing a port nothing listens on is a typed transport error.
#[test]
fn connection_refused_is_typed_io_error() {
    // Bind-then-drop reserves an address that is guaranteed dead.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let mut conn = ShardConn::new(&addr);
    let error = conn.request("GET", "/v1/healthz", None).unwrap_err();
    assert!(matches!(error, FqError::Io(_)), "got {error:?}");
    assert_eq!(conn.connects(), 0, "a failed dial is not a connect");
}

/// A peer that closes mid-body (announced length longer than what it
/// sends) yields a truncation error, and the poisoned stream is dropped
/// so the next request redials.
#[test]
fn truncated_response_is_typed_io_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shard = thread::spawn(move || {
        // First connection: lie about the length, then hang up.
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        read_request_head(&mut reader);
        stream
            .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\n\r\nonly-a-few-bytes")
            .unwrap();
        drop(stream);
        // Second connection: behave.
        let (mut stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        read_request_head(&mut reader);
        stream
            .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok")
            .unwrap();
    });

    let mut conn = ShardConn::new(&addr);
    let error = conn.request("GET", "/v1/stats", None).unwrap_err();
    match error {
        FqError::Io(message) => assert!(message.contains("truncated"), "got `{message}`"),
        other => panic!("expected Io, got {other:?}"),
    }

    // The poisoned stream must not be reused: the next call dials again
    // and succeeds.
    let response = conn.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(response.body, "ok");
    assert_eq!(conn.connects(), 2);
    shard.join().unwrap();
}

/// A peer that closes before finishing the header block is the same
/// truncation class.
#[test]
fn truncated_headers_are_typed_io_error() {
    let (addr, shard) = fake_shard(vec!["HTTP/1.1 200 OK\r\ncontent-type: applica".to_string()]);
    let mut conn = ShardConn::new(&addr);
    let error = conn.request("GET", "/v1/stats", None).unwrap_err();
    assert!(matches!(error, FqError::Io(_)), "got {error:?}");
    shard.join().unwrap();
}

/// A 200 whose body is not JSON fails at decode time with a typed
/// serde error — the transport layer itself accepts any bytes.
#[test]
fn non_json_body_is_typed_serde_error() {
    let (addr, shard) = fake_shard(vec![ok_response("<html>not json</html>")]);
    let mut conn = ShardConn::new(&addr);
    let response = conn.request("GET", "/v1/stats", None).unwrap();
    assert_eq!(response.status, 200);
    let error = response.json().unwrap_err();
    assert!(matches!(error, FqError::Serde(_)), "got {error:?}");
    shard.join().unwrap();
}

/// A peer claiming a multi-gigabyte body is rejected up front instead
/// of being buffered: the `content-length` cap is checked before any
/// allocation.
#[test]
fn oversized_content_length_is_typed_io_error() {
    let (addr, shard) = fake_shard(vec![
        "HTTP/1.1 200 OK\r\ncontent-length: 99999999999\r\n\r\n".to_string(),
    ]);
    let mut conn = ShardConn::new(&addr);
    let error = conn.request("GET", "/v1/templates", None).unwrap_err();
    match error {
        FqError::Io(message) => assert!(message.contains("oversized"), "got `{message}`"),
        other => panic!("expected Io, got {other:?}"),
    }
    shard.join().unwrap();
}

/// An unparsable `content-length` is a malformed-response error, not a
/// zero-length assumption that would desync the framing.
#[test]
fn garbage_content_length_is_typed_serde_error() {
    let (addr, shard) = fake_shard(vec![
        "HTTP/1.1 200 OK\r\ncontent-length: banana\r\n\r\n".to_string()
    ]);
    let mut conn = ShardConn::new(&addr);
    let error = conn.request("GET", "/v1/stats", None).unwrap_err();
    assert!(matches!(error, FqError::Serde(_)), "got {error:?}");
    shard.join().unwrap();
}
