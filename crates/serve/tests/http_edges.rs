//! HTTP edge-case coverage: every malformed, hostile or unlucky request
//! gets a structured JSON error — never a panic, never a hang.
//!
//! The cases the service must survive:
//! oversized and truncated bodies, unknown routes and methods, malformed
//! JSON, version-mismatched specs, queue-full backpressure, chunked
//! transfer encoding, unsupported HTTP versions, and garbage request
//! lines — plus the positive framing paths (keep-alive reuse, sync
//! degradation to async under a zero-worker drain).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use fq_serve::{client, Server, ServerConfig, ServerHandle};
use frozenqubits::api::{DeviceSpec, JobBuilder, JobSpec};
use frozenqubits::QosTier;
use serde::json::Value;

fn spawn(config: ServerConfig) -> (ServerHandle, String) {
    let handle = Server::spawn(config).unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn small_spec() -> JobSpec {
    JobBuilder::new()
        .barabasi_albert(8, 1, 1)
        .device(DeviceSpec::IbmMontreal)
        .baseline()
        .build()
        .unwrap()
}

/// Writes raw bytes, optionally half-closes the write side, and reads
/// the full response (the server closes after an error).
fn raw_roundtrip(addr: &str, request: &[u8], half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).unwrap();
    if half_close {
        stream.shutdown(Shutdown::Write).unwrap();
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {response:?}"))
}

fn error_kind(response: &str) -> String {
    let body = response.split("\r\n\r\n").nth(1).expect("a body");
    Value::parse(body)
        .unwrap_or_else(|e| panic!("error bodies are JSON ({e:?}): {body:?}"))
        .field("error")
        .unwrap()
        .field("kind")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn routing_errors_are_structured() {
    let (handle, addr) = spawn(ServerConfig::default());

    // Unknown routes.
    for target in ["/", "/v2/jobs", "/v1/jobs/extra/deep"] {
        let response = client::request(&addr, "GET", target, None).unwrap();
        assert_eq!(response.status, 404, "{target}");
        assert_eq!(
            response
                .json()
                .unwrap()
                .field("error")
                .unwrap()
                .field("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "not_found"
        );
    }

    // Known routes, wrong methods — with an Allow header.
    let response = client::request(&addr, "DELETE", "/v1/jobs", None).unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("POST"));
    let response = client::request(&addr, "POST", "/v1/healthz", None).unwrap();
    assert_eq!(response.status, 405);
    assert_eq!(response.header("allow"), Some("GET"));

    // Job polling: malformed ids 400, unknown ids 404.
    let response = client::request(&addr, "GET", "/v1/jobs/job-42", None).unwrap();
    assert_eq!(response.status, 400);
    let response = client::request(&addr, "GET", "/v1/jobs/job-00000000000000ff", None).unwrap();
    assert_eq!(response.status, 404);

    // Unknown submission modes.
    let response = client::request(
        &addr,
        "POST",
        "/v1/jobs?mode=telepathy",
        Some(&small_spec().to_json()),
    )
    .unwrap();
    assert_eq!(response.status, 400);

    handle.shutdown();
}

#[test]
fn malformed_and_mismatched_bodies_are_rejected() {
    let (handle, addr) = spawn(ServerConfig::default());

    // Malformed JSON.
    let response = client::request(&addr, "POST", "/v1/jobs", Some("{not json")).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(
        response
            .json()
            .unwrap()
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "serde"
    );

    // A well-formed spec from a future wire version.
    let mismatched = small_spec().to_json().replace("\"v\":1", "\"v\":2");
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&mismatched)).unwrap();
    assert_eq!(response.status, 400);
    assert!(
        response.body.contains("unsupported wire version"),
        "{}",
        response.body
    );

    // Valid JSON that is not a JobSpec document.
    let response = client::request(&addr, "POST", "/v1/jobs", Some("[1,2,3]")).unwrap();
    assert_eq!(response.status, 400);

    handle.shutdown();
}

#[test]
fn unknown_qos_tiers_get_a_structured_422() {
    let (handle, addr) = spawn(ServerConfig::default());

    // A valid tiered (v2) spec is accepted end to end.
    let tiered = JobBuilder::new()
        .barabasi_albert(8, 1, 1)
        .device(DeviceSpec::IbmMontreal)
        .baseline()
        .tier(QosTier::Balanced)
        .build()
        .unwrap();
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&tiered.to_json())).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // The same bytes naming a tier this build doesn't know: a
    // structured 422 with the stable `unknown_tier` kind, not a 500.
    let unknown = tiered
        .to_json()
        .replace("\"tier\":\"balanced\"", "\"tier\":\"turbo\"");
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&unknown)).unwrap();
    assert_eq!(response.status, 422, "{}", response.body);
    assert_eq!(
        response
            .json()
            .unwrap()
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "unknown_tier"
    );
    assert!(response.body.contains("turbo"), "{}", response.body);

    // A non-string tier is a wire-syntax problem, not a validation one.
    let nonstring = tiered
        .to_json()
        .replace("\"tier\":\"balanced\"", "\"tier\":7");
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&nonstring)).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);

    // The accepted balanced job shows up in the per-tier counters.
    let stats = client::request(&addr, "GET", "/v1/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let tiers = stats.field("jobs").unwrap().field("tiers").unwrap();
    assert_eq!(tiers.field("balanced").unwrap().as_u64().unwrap(), 1);
    assert_eq!(tiers.field("exact").unwrap().as_u64().unwrap(), 0);
    assert_eq!(tiers.field("fast").unwrap().as_u64().unwrap(), 0);

    handle.shutdown();
}

#[test]
fn framing_abuse_gets_structured_errors_not_hangs() {
    let (handle, addr) = spawn(ServerConfig {
        max_body_bytes: 1024,
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    });

    // Oversized body, announced: rejected before reading it.
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4096\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&response), 413);
    assert_eq!(error_kind(&response), "payload_too_large");

    // Truncated body: client promises 100 bytes, sends 9, hangs up.
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"v\":1,..",
        true,
    );
    assert_eq!(status_of(&response), 400);
    assert_eq!(error_kind(&response), "bad_request");

    // Truncated header section.
    let response = raw_roundtrip(&addr, b"GET /v1/healthz HTTP/1.1\r\nhost: x", true);
    assert_eq!(status_of(&response), 400);

    // Garbage request lines: not method/target/version shaped at all,
    // or shaped like one but with a version this server does not speak.
    let response = raw_roundtrip(&addr, b"garbage\r\n\r\n", false);
    assert_eq!(status_of(&response), 400);
    let response = raw_roundtrip(&addr, b"how about no\r\n\r\n", false);
    assert_eq!(status_of(&response), 505);

    // Unsupported HTTP version.
    let response = raw_roundtrip(&addr, b"GET /v1/healthz HTTP/2.0\r\n\r\n", false);
    assert_eq!(status_of(&response), 505);

    // Chunked transfer encoding is deliberately not implemented —
    // including when smuggled behind a benign first occurrence.
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&response), 501);
    assert_eq!(error_kind(&response), "not_implemented");
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: identity\r\ntransfer-encoding: chunked\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&response), 501);

    // Duplicate content-length headers are the classic smuggling vector:
    // rejected outright, not first-one-wins.
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 40\r\n\r\nbody",
        false,
    );
    assert_eq!(status_of(&response), 400);

    // Bad content-length values.
    let response = raw_roundtrip(
        &addr,
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: over9000\r\n\r\n",
        false,
    );
    assert_eq!(status_of(&response), 400);

    handle.shutdown();
}

#[test]
fn slow_drip_requests_hit_the_request_deadline() {
    let (handle, addr) = spawn(ServerConfig {
        request_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // A slowloris-style sender: drip a partial request line, wait past
    // the deadline, drip again. The next read attempt after the second
    // byte arrives fails the deadline check → 400, connection closed.
    stream.write_all(b"GET /v1").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    stream.write_all(b"/he").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert_eq!(status_of(&response), 400);
    assert!(
        response.contains("timed out"),
        "deadline errors say so: {response}"
    );
    handle.shutdown();
}

#[test]
fn connection_cap_sheds_load_with_503() {
    let (handle, addr) = spawn(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    // Occupy the single slot with a keep-alive connection that has
    // completed a request (so its thread is definitely counted).
    let mut holder = TcpStream::connect(&addr).unwrap();
    holder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    holder
        .write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let mut first = [0u8; 64];
    let n = holder.read(&mut first).unwrap();
    assert!(String::from_utf8_lossy(&first[..n]).starts_with("HTTP/1.1 200"));

    // The next connection is over the cap: immediate 503, no thread.
    let response = client::request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(
        response
            .json()
            .unwrap()
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "overloaded"
    );

    // Releasing the holder frees the slot (drop closes the socket; give
    // the server a beat to notice EOF and retire the thread).
    drop(holder);
    let ok = (0..50).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        client::request(&addr, "GET", "/v1/healthz", None)
            .map(|r| r.status == 200)
            .unwrap_or(false)
    });
    assert!(ok, "slot must free after the holder disconnects");
    handle.shutdown();
}

#[test]
fn queue_backpressure_returns_503_with_retry_after() {
    // Zero workers: nothing drains, so the queue fills deterministically.
    let (handle, addr) = spawn(ServerConfig {
        workers: 0,
        queue_capacity: 2,
        ..ServerConfig::default()
    });
    let spec = small_spec().to_json();

    for _ in 0..2 {
        let response = client::request(&addr, "POST", "/v1/jobs?mode=async", Some(&spec)).unwrap();
        assert_eq!(response.status, 202, "{}", response.body);
    }
    let response = client::request(&addr, "POST", "/v1/jobs?mode=async", Some(&spec)).unwrap();
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert_eq!(
        response
            .json()
            .unwrap()
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "queue_full"
    );

    // The stats endpoint reflects the backpressure state.
    let stats = client::request(&addr, "GET", "/v1/stats", None).unwrap();
    let stats = stats.json().unwrap();
    let queue = stats.field("queue").unwrap();
    assert_eq!(queue.field("depth").unwrap().as_u64().unwrap(), 2);
    assert_eq!(queue.field("capacity").unwrap().as_u64().unwrap(), 2);

    handle.shutdown();
}

#[test]
fn sync_submissions_degrade_to_async_when_workers_lag() {
    // Zero workers and a tiny sync budget: the submission cannot finish,
    // so the service answers 202 with the poll location instead of
    // hanging the client.
    let (handle, addr) = spawn(ServerConfig {
        workers: 0,
        sync_wait: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    let response =
        client::request(&addr, "POST", "/v1/jobs", Some(&small_spec().to_json())).unwrap();
    assert_eq!(response.status, 202, "{}", response.body);
    let envelope = response.json().unwrap();
    assert_eq!(
        envelope.field("status").unwrap().as_str().unwrap(),
        "queued"
    );
    let location = response.header("location").unwrap().to_string();
    let polled = client::request(&addr, "GET", &location, None).unwrap();
    assert_eq!(polled.status, 200);

    handle.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let (handle, addr) = spawn(ServerConfig::default());
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Reads one framed response off the keep-alive connection.
    let read_response = |reader: &mut BufReader<TcpStream>| -> (u16, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status = head.split(' ').nth(1).unwrap().parse().unwrap();
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length: "))
            .unwrap()
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    };

    stream
        .write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
        .unwrap();
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""));

    // Second request on the same connection — including a body this time.
    let spec = small_spec().to_json();
    stream
        .write_all(
            format!(
                "POST /v1/jobs HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{spec}",
                spec.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"kind\":\"baseline\""));

    handle.shutdown();
}

#[test]
fn shutdown_drains_queued_jobs() {
    // One worker, several queued jobs: shutdown must let the queue
    // drain (the workers finish what was accepted) and join cleanly.
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let spec = small_spec().to_json();
    let mut ids = Vec::new();
    for _ in 0..3 {
        let response = client::request(&addr, "POST", "/v1/jobs?mode=async", Some(&spec)).unwrap();
        assert_eq!(response.status, 202);
        ids.push(
            response
                .json()
                .unwrap()
                .field("id")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string(),
        );
    }
    handle.shutdown();
    // The handle is gone and the port released; all accepted jobs ran
    // (shutdown joins the workers after the queue drains) — nothing to
    // poll anymore, but nothing hung either.
}

#[test]
fn expired_jobs_answer_410_and_unknown_ids_stay_404() {
    // A 50 ms TTL: the result is pollable right after completion, gone
    // (structurally: `410` + kind `expired`, not a bare `404`) shortly
    // after.
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        job_ttl: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    // Sync submission: the 200 proves the result existed at completion
    // time without racing a poll loop against the 50 ms TTL.
    let spec = small_spec().to_json();
    let response = client::request(&addr, "POST", "/v1/jobs", Some(&spec)).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let id: frozenqubits::JobId = response.header("fq-job-id").unwrap().parse().unwrap();
    std::thread::sleep(Duration::from_millis(80));

    let response = client::request(&addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(response.status, 410, "{}", response.body);
    let envelope = response.json().unwrap();
    assert_eq!(
        envelope
            .field("error")
            .unwrap()
            .field("kind")
            .unwrap()
            .as_str()
            .unwrap(),
        "expired"
    );
    // Expiry is sticky, and never-issued ids remain plain 404s.
    let again = client::request(&addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
    assert_eq!(again.status, 410);
    let unknown = client::request(&addr, "GET", "/v1/jobs/job-00000000000000ff", None).unwrap();
    assert_eq!(unknown.status, 404);
    assert_eq!(
        error_kind(&format!("x\r\n\r\n{}", unknown.body)),
        "not_found"
    );

    // /v1/stats reports the expiry.
    let stats = client::request(&addr, "GET", "/v1/stats", None).unwrap();
    let jobs = stats.json().unwrap();
    assert_eq!(
        jobs.field("jobs")
            .unwrap()
            .field("expired")
            .unwrap()
            .as_u64()
            .unwrap(),
        1
    );
    handle.shutdown();
}

#[test]
fn done_count_bound_expires_oldest_results_first() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        max_done_jobs: 1,
        ..ServerConfig::default()
    });
    // Two sync submissions: completing the second expires the first.
    let spec = small_spec().to_json();
    let first = client::request(&addr, "POST", "/v1/jobs", Some(&spec)).unwrap();
    assert_eq!(first.status, 200);
    let first_id = first.header("fq-job-id").unwrap().to_string();
    let second = client::request(&addr, "POST", "/v1/jobs", Some(&spec)).unwrap();
    assert_eq!(second.status, 200);
    let second_id = second.header("fq-job-id").unwrap().to_string();

    let gone = client::request(&addr, "GET", &format!("/v1/jobs/{first_id}"), None).unwrap();
    assert_eq!(gone.status, 410, "{}", gone.body);
    let kept = client::request(&addr, "GET", &format!("/v1/jobs/{second_id}"), None).unwrap();
    assert_eq!(kept.status, 200, "{}", kept.body);
    handle.shutdown();
}

#[test]
fn template_endpoints_reject_garbage_and_miss_cleanly() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });

    // Empty shard: an empty index, clean 404s for absent fingerprints,
    // 400s for malformed ones (including traversal shapes — they never
    // reach the filesystem).
    let index = client::request(&addr, "GET", "/v1/templates", None).unwrap();
    assert_eq!(index.status, 200);
    assert_eq!(index.body, r#"{"v":1,"templates":[]}"#);
    let missing = client::request(&addr, "GET", "/v1/templates/0123456789abcdef", None).unwrap();
    assert_eq!(missing.status, 404);
    for bad in ["not-a-fingerprint", "0123456789ABCDEF", "..%2f..%2fetc"] {
        let response =
            client::request(&addr, "GET", &format!("/v1/templates/{bad}"), None).unwrap();
        assert_eq!(response.status, 400, "`{bad}` must be rejected");
    }

    // Garbage pushes: malformed JSON, version skew and tampered keys
    // are structured 400s, never stored.
    for bad_body in [
        "not json",
        r#"{"v":99,"fingerprint":"0123456789abcdef"}"#,
        r#"{"v":1,"fingerprint":"0123456789abcdef","key":{},"template":{}}"#,
    ] {
        let response = client::request(&addr, "POST", "/v1/templates", Some(bad_body)).unwrap();
        assert_eq!(response.status, 400, "{}", response.body);
        assert_eq!(error_kind(&format!("x\r\n\r\n{}", response.body)), "serde");
    }
    let index = client::request(&addr, "GET", "/v1/templates", None).unwrap();
    assert_eq!(index.body, r#"{"v":1,"templates":[]}"#, "nothing stored");

    // A genuine artifact round-trips: push, index, fetch byte-for-byte.
    let spec = small_spec();
    let model = spec.problem.resolve().unwrap();
    let device = frozenqubits::api::DeviceSpec::IbmMontreal.build();
    let options = frozenqubits::FrozenQubitsConfig::default().compile;
    let template = frozenqubits::CompiledTemplate::compile(&model, 1, &device, options).unwrap();
    let key = frozenqubits::TemplateKey::new(
        frozenqubits::ShapeSignature::of(&model),
        &device,
        1,
        options,
    );
    let artifact = frozenqubits::TemplateArtifact::new(key, template);
    client::push_template(&addr, &artifact).unwrap();
    let fetched = client::fetch_template(&addr, &artifact.fingerprint()).unwrap();
    assert_eq!(fetched.to_json(), artifact.to_json());
    assert_eq!(client::template_index(&addr).unwrap().len(), 1);

    handle.shutdown();
}

#[test]
fn template_push_cap_refuses_unbounded_growth() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        template_push_cap: 1,
        ..ServerConfig::default()
    });
    let spec = small_spec();
    let model = spec.problem.resolve().unwrap();
    let device = frozenqubits::api::DeviceSpec::IbmMontreal.build();
    let options = frozenqubits::FrozenQubitsConfig::default().compile;
    let template = frozenqubits::CompiledTemplate::compile(&model, 1, &device, options).unwrap();
    let key = frozenqubits::TemplateKey::new(
        frozenqubits::ShapeSignature::of(&model),
        &device,
        1,
        options,
    );
    let artifact = frozenqubits::TemplateArtifact::new(key, template);

    // First push fills the 1-slot cap; any further push is shed with a
    // structured 503, before its body is even parsed.
    client::push_template(&addr, &artifact).unwrap();
    let refused =
        client::request(&addr, "POST", "/v1/templates", Some(&artifact.to_json())).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert_eq!(
        error_kind(&format!("x\r\n\r\n{}", refused.body)),
        "cache_full"
    );
    handle.shutdown();
}

/// Builds one pushable template artifact from the small spec's shape.
fn small_artifact() -> frozenqubits::TemplateArtifact {
    let spec = small_spec();
    let model = spec.problem.resolve().unwrap();
    let device = frozenqubits::api::DeviceSpec::IbmMontreal.build();
    let options = frozenqubits::FrozenQubitsConfig::default().compile;
    let template = frozenqubits::CompiledTemplate::compile(&model, 1, &device, options).unwrap();
    let key = frozenqubits::TemplateKey::new(
        frozenqubits::ShapeSignature::of(&model),
        &device,
        1,
        options,
    );
    frozenqubits::TemplateArtifact::new(key, template)
}

/// Pins the `/v1/stats` JSON shape the dispatcher's sentinel consumes:
/// exact top-level keys, the cache/queue/jobs sub-objects, and the
/// fields added for cluster telemetry — `workers.configured`,
/// `workers.busy` and `uptime_secs`.
#[test]
fn stats_shape_is_pinned_for_the_sentinel() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 3,
        queue_capacity: 17,
        ..ServerConfig::default()
    });
    client::submit_sync(&addr, &small_spec()).unwrap();

    let stats = client::request(&addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let stats = stats.json().unwrap();

    // Exact top-level key set: adding a field is a deliberate wire
    // change, and this test is where it gets acknowledged.
    let mut keys: Vec<&str> = match &stats {
        Value::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("stats must be an object, got {other:?}"),
    };
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec!["cache", "jobs", "queue", "uptime_secs", "v", "workers"]
    );

    let cache = stats.field("cache").unwrap();
    for field in [
        "hits",
        "misses",
        "evictions",
        "len",
        "capacity",
        "spills",
        "promotions",
        "spill_len",
    ] {
        cache.field(field).unwrap();
    }
    assert_eq!(cache.field("misses").unwrap().as_u64().unwrap(), 1);

    let queue = stats.field("queue").unwrap();
    assert_eq!(queue.field("depth").unwrap().as_u64().unwrap(), 0);
    assert_eq!(queue.field("capacity").unwrap().as_u64().unwrap(), 17);

    let jobs = stats.field("jobs").unwrap();
    assert_eq!(jobs.field("submitted").unwrap().as_u64().unwrap(), 1);
    assert_eq!(jobs.field("completed").unwrap().as_u64().unwrap(), 1);

    let workers = stats.field("workers").unwrap();
    assert_eq!(workers.field("configured").unwrap().as_u64().unwrap(), 3);
    assert_eq!(workers.field("busy").unwrap().as_u64().unwrap(), 0);

    // Uptime is seconds-since-boot: tiny but present and integral.
    assert!(stats.field("uptime_secs").unwrap().as_u64().unwrap() < 3600);

    handle.shutdown();
}

/// `workers.busy` reports in-flight execution: with zero workers a
/// queued job never starts, so busy stays 0 while depth grows — and a
/// served job returns it to 0 (pinned above). The transition itself is
/// covered by the worker pool's drop-guard unit test.
#[test]
fn stats_busy_counts_in_flight_only() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 0,
        sync_wait: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let spec = small_spec().to_json();
    let submitted = client::request(&addr, "POST", "/v1/jobs?mode=async", Some(&spec)).unwrap();
    assert_eq!(submitted.status, 202);

    let stats = client::request(&addr, "GET", "/v1/stats", None)
        .unwrap()
        .json()
        .unwrap();
    let workers = stats.field("workers").unwrap();
    assert_eq!(workers.field("busy").unwrap().as_u64().unwrap(), 0);
    assert_eq!(
        stats
            .field("queue")
            .unwrap()
            .field("depth")
            .unwrap()
            .as_u64()
            .unwrap(),
        1
    );
    handle.shutdown();
}

/// With `--auth-token`, `POST /v1/templates` demands the exact bearer
/// token: missing and wrong tokens are structured `401`s (and the
/// artifact is not admitted), the right one stores the artifact. Read
/// endpoints stay open — probes and warm pulls need no credential.
#[test]
fn auth_token_gates_template_pushes() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        auth_token: Some("sesame".into()),
        ..ServerConfig::default()
    });
    let artifact = small_artifact();

    // No token → 401, nothing stored.
    let refused = client::push_template(&addr, &artifact).unwrap_err();
    assert!(refused.to_string().contains("401"), "{refused}");
    // Wrong token → 401, nothing stored.
    let wrong = client::push_template_with_token(&addr, &artifact, Some("not-sesame")).unwrap_err();
    assert!(wrong.to_string().contains("401"), "{wrong}");
    assert_eq!(client::template_index(&addr).unwrap().len(), 0);

    let raw = client::request(&addr, "POST", "/v1/templates", Some(&artifact.to_json())).unwrap();
    assert_eq!(raw.status, 401);
    assert_eq!(
        error_kind(&format!("x\r\n\r\n{}", raw.body)),
        "unauthorized"
    );

    // Right token → stored and servable.
    client::push_template_with_token(&addr, &artifact, Some("sesame")).unwrap();
    assert_eq!(client::template_index(&addr).unwrap().len(), 1);

    // Reads never need the token.
    let health = client::request(&addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    let fetched = client::fetch_template(&addr, &artifact.fingerprint()).unwrap();
    assert_eq!(fetched.to_json(), artifact.to_json());

    handle.shutdown();
}

/// Without `--auth-token` the push path is exactly as before: open.
#[test]
fn no_auth_token_means_open_pushes() {
    let (handle, addr) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    client::push_template(&addr, &small_artifact()).unwrap();
    assert_eq!(client::template_index(&addr).unwrap().len(), 1);
    handle.shutdown();
}
