//! QoS-tier release smoke (a CI step): boot a live shard, run the same
//! problem at `exact`, `balanced`, and `fast`, and hold every
//! approximate result to the accuracy bound **its own** `error_model`
//! reports — the per-release check that the speed knobs never ship
//! outside the contract the corpus-wide deviation test pins.
//!
//! ```sh
//! cargo run --release -p fq-serve --example tier_smoke
//! ```
//!
//! Set `FQ_SERVE_ADDR` to point at an already-running `serve` process
//! instead (the example then skips booting its own).

use fq_serve::{client, Server, ServerConfig, ServerHandle};
use frozenqubits::api::{DeviceSpec, JobBuilder, JobResult, JobSpec};
use frozenqubits::{FqError, QosTier};

/// The expectation values a result is judged on.
fn headline_evs(result: &JobResult) -> Vec<(&'static str, f64)> {
    match result {
        JobResult::Approx { inner, .. } => headline_evs(inner),
        JobResult::Frozen { summary, .. } => vec![
            ("ev_ideal", summary.ev_ideal),
            ("ev_noisy", summary.ev_noisy),
        ],
        other => panic!("smoke runs frozen jobs only, got {other:?}"),
    }
}

fn spec(tier: QosTier) -> Result<JobSpec, FqError> {
    JobBuilder::new()
        .barabasi_albert(20, 1, 11)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(2)
        .tier(tier)
        .frozen()
        .build()
}

fn main() -> Result<(), FqError> {
    let (addr, handle): (String, Option<ServerHandle>) = match std::env::var("FQ_SERVE_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let handle = Server::spawn(ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            })?;
            (handle.addr().to_string(), Some(handle))
        }
    };

    // The reference: one exact run of the probe problem.
    let exact = client::submit_sync(&addr, &spec(QosTier::Exact)?)?;
    assert!(
        exact.error_model().is_none(),
        "exact results carry no error model"
    );
    let exact_evs = headline_evs(&exact);
    println!("exact         ev_ideal {:+.6}", exact_evs[0].1);

    // Each approximate tier must land inside its own reported bound.
    for tier in [QosTier::Balanced, QosTier::Fast] {
        let approx = client::submit_sync(&addr, &spec(tier)?)?;
        let em = *approx
            .error_model()
            .unwrap_or_else(|| panic!("{} result carries no error model", tier.name()));
        assert_eq!(em.tier, tier, "result reports the tier that ran");
        for ((name, e), (_, a)) in exact_evs.iter().zip(headline_evs(&approx)) {
            let bound = em.bound_for(*e);
            assert!(
                (a - e).abs() <= bound,
                "{} {name} deviates |{a} - {e}| = {} > bound {bound}",
                tier.name(),
                (a - e).abs()
            );
            println!(
                "{:<13} {name} {:+.6}   |Δ| {:.6} ≤ bound {:.6}",
                tier.name(),
                a,
                (a - e).abs(),
                bound
            );
        }
    }

    // The shard counted one submission per tier.
    let stats = client::request(&addr, "GET", "/v1/stats", None)?;
    assert_eq!(stats.status, 200);
    for needle in ["\"tiers\"", "\"exact\":1", "\"balanced\":1", "\"fast\":1"] {
        assert!(
            stats.body.contains(needle),
            "stats missing {needle}: {}",
            stats.body
        );
    }
    println!("stats         {}", stats.body);

    if let Some(handle) = handle {
        handle.shutdown();
        println!("shutdown      clean");
    }
    Ok(())
}
