//! End-to-end service demo (and the CI smoke step): boot the server on
//! an ephemeral loopback port, drive every endpoint through the bundled
//! HTTP client, and shut down cleanly.
//!
//! ```sh
//! cargo run --release -p fq-serve --example client
//! ```
//!
//! Set `FQ_SERVE_ADDR` to point at an already-running `serve` process
//! instead (the example then skips booting its own).

use fq_serve::{client, Server, ServerConfig, ServerHandle};
use frozenqubits::api::{DeviceSpec, JobBuilder};
use frozenqubits::FqError;

fn main() -> Result<(), FqError> {
    // Boot an in-process server unless one was pointed at via the env.
    let (addr, handle): (String, Option<ServerHandle>) = match std::env::var("FQ_SERVE_ADDR") {
        Ok(addr) => (addr, None),
        Err(_) => {
            let handle = Server::spawn(ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            })?;
            (handle.addr().to_string(), Some(handle))
        }
    };

    // 1. Liveness.
    let health = client::request(&addr, "GET", "/v1/healthz", None)?;
    assert_eq!(health.status, 200, "healthz: {}", health.body);
    println!("healthz       {} {}", health.status, health.body);

    // 2. A synchronous round trip: the response body is the canonical
    //    JobResult document.
    let compare = JobBuilder::new()
        .barabasi_albert(14, 1, 42)
        .device(DeviceSpec::IbmMontreal)
        .num_frozen(2)
        .compare()
        .build()?;
    let report = client::submit_sync(&addr, &compare)?.into_compare()?;
    println!(
        "sync compare  baseline ARG {:.4} -> frozen ARG {:.4} ({:.2}x)",
        report.baseline.arg, report.frozen.arg, report.improvement
    );

    // 3. An asynchronous submission, polled to completion.
    let sample = JobBuilder::new()
        .barabasi_albert(12, 1, 7)
        .device(DeviceSpec::IbmAuckland)
        .num_frozen(1)
        .sample(256)
        .build()?;
    let id = client::submit_async(&addr, &sample)?;
    println!("async sample  submitted as {id}");
    let outcome = loop {
        let (status, result) = client::poll(&addr, id)?;
        match status.as_str() {
            "done" => break result.expect("done jobs embed their result"),
            "failed" => return Err(FqError::Io(format!("job {id} failed"))),
            _ => std::thread::sleep(std::time::Duration::from_millis(25)),
        }
    };
    let solution = outcome.into_sample()?;
    println!(
        "async sample  best energy {:.1} from {} frozen qubit(s)",
        solution.energy,
        solution.frozen_qubits.len()
    );

    // 4. Telemetry: the second job of a shape hits the warm cache.
    let stats = client::request(&addr, "GET", "/v1/stats", None)?;
    assert_eq!(stats.status, 200);
    println!("stats         {}", stats.body);

    if let Some(handle) = handle {
        handle.shutdown();
        println!("shutdown      clean");
    }
    Ok(())
}
