//! Compile-once / edit-many execution (§3.7.1).
//!
//! All `2^m` sub-Hamiltonians share one quadratic structure, so their
//! circuits differ only in rotation angles. FrozenQubits therefore
//! compiles a single *template* (paying layout + routing once) and derives
//! every sibling executable by rewriting the γ-rotation scales in the
//! already-routed circuit — the `O(1)` compile cost of Table 3.

use std::sync::{Arc, Mutex};

use fq_circuit::{build_qaoa_template, rebind_coefficients};
use fq_ising::IsingModel;
use fq_sim::{
    fidelity_model, lightcone_fidelities_truncated, log_eps, FidelityModel, LightconeFidelity,
};
use fq_transpile::{compile, CompileOptions, Compiled, Device};
use serde::json::Value;

use crate::pipeline::{metrics_of, CircuitMetrics};
use crate::store::device_fingerprint;
use crate::FqError;

/// Branch-invariant tables of the approximate-tier execution path,
/// computed once per template and shared by every branch (and every
/// job) that executes on it.
///
/// The invariance argument, field by field: the tiers run all branches
/// on the template's own compiled circuit (no angle edit — nothing in
/// these tables reads an angle), every sibling model sharing the
/// template has the same variable count and the same coupling key set
/// in the same canonical order (that is what
/// [`ShapeSignature`](crate::ShapeSignature) equality means, and
/// freezing never touches couplings between free variables), and cone
/// fidelities depend only on a term's qubit set plus the circuit's gate
/// structure — never on coefficient values. So each field is a pure
/// function of `(template, device, layers, lightcone depth)` and caching
/// it changes no output bit.
pub(crate) struct TierDerived {
    /// Global/per-qubit attenuation factors of the compiled template.
    pub(crate) fid: FidelityModel,
    /// Truncated per-term cone fidelities at the tier's lightcone depth.
    pub(crate) cones: LightconeFidelity,
    /// `log_eps` of the template executable.
    pub(crate) eps_log: f64,
    /// Circuit-level cost metrics of the template executable.
    pub(crate) metrics: CircuitMetrics,
}

/// Cache key of one [`TierDerived`] entry: device identity fingerprint,
/// QAOA layer count, lightcone truncation depth.
type TierKey = (u64, usize, usize);

/// The lazily built [`TierDerived`] memo a template shares across its
/// clones.
type TierDerivedMemo = Arc<Mutex<Vec<(TierKey, Arc<TierDerived>)>>>;

/// A routed, reusable circuit template for a family of sibling
/// sub-problems.
pub struct CompiledTemplate {
    compiled: Compiled,
    num_vars: usize,
    /// Lazily built [`TierDerived`] tables, shared across clones: the
    /// template cache hands out clones per plan, so one computation
    /// serves every branch of every job on this shape. Excluded from
    /// `PartialEq`/`Debug`/serialization — it is a memo, not state.
    tier_derived: TierDerivedMemo,
}

impl Clone for CompiledTemplate {
    fn clone(&self) -> CompiledTemplate {
        CompiledTemplate {
            compiled: self.compiled.clone(),
            num_vars: self.num_vars,
            tier_derived: Arc::clone(&self.tier_derived),
        }
    }
}

impl std::fmt::Debug for CompiledTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledTemplate")
            .field("compiled", &self.compiled)
            .field("num_vars", &self.num_vars)
            .finish_non_exhaustive()
    }
}

impl PartialEq for CompiledTemplate {
    fn eq(&self, other: &CompiledTemplate) -> bool {
        self.compiled == other.compiled && self.num_vars == other.num_vars
    }
}

impl CompiledTemplate {
    /// Compiles the template from a representative sub-problem.
    ///
    /// The representative's model defines the quadratic structure; every
    /// sibling passed to [`CompiledTemplate::edit_for`] must share it
    /// (guaranteed for sub-problems of one freezing plan).
    ///
    /// # Errors
    ///
    /// Propagates circuit synthesis and transpilation errors.
    ///
    /// # Example
    ///
    /// ```
    /// use fq_ising::{IsingModel, Spin};
    /// use fq_transpile::{CompileOptions, Device};
    /// use frozenqubits::CompiledTemplate;
    ///
    /// let mut parent = IsingModel::new(5);
    /// for i in 1..5 {
    ///     parent.set_coupling(0, i, 1.0)?;
    /// }
    /// let plus = parent.freeze(&[(0, Spin::UP)])?;
    /// let minus = parent.freeze(&[(0, Spin::DOWN)])?;
    ///
    /// let dev = Device::ibm_montreal();
    /// let template = CompiledTemplate::compile(plus.model(), 1, &dev, CompileOptions::level3())?;
    /// let edited = template.edit_for(minus.model())?;
    /// // Same routed structure, zero additional routing work.
    /// assert_eq!(edited.stats.cnot_count, template.compiled().stats.cnot_count);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compile(
        representative: &IsingModel,
        layers: usize,
        device: &Device,
        options: CompileOptions,
    ) -> Result<CompiledTemplate, FqError> {
        let qc = build_qaoa_template(representative, layers)?;
        let compiled = compile(&qc, device, options)?;
        Ok(CompiledTemplate {
            compiled,
            num_vars: representative.num_vars(),
            tier_derived: Arc::default(),
        })
    }

    /// The underlying compiled artifact.
    #[must_use]
    pub fn compiled(&self) -> &Compiled {
        &self.compiled
    }

    /// The canonical document form of this template (the payload half of
    /// a [`TemplateArtifact`](crate::TemplateArtifact)). Serialization is
    /// bit-exact: parsing the document back yields a template **equal**
    /// to this one, whose [`CompiledTemplate::edit_for`] output is
    /// byte-identical.
    pub(crate) fn to_value(&self) -> Value {
        Value::object(vec![
            ("num_vars", Value::UInt(self.num_vars as u64)),
            ("compiled", fq_transpile::compiled_to_value(&self.compiled)),
        ])
    }

    /// Parses the canonical document form.
    pub(crate) fn from_value(v: &Value) -> Result<CompiledTemplate, FqError> {
        Ok(CompiledTemplate {
            num_vars: v.field("num_vars")?.as_usize()?,
            compiled: fq_transpile::compiled_from_value(v.field("compiled")?)?,
            tier_derived: Arc::default(),
        })
    }

    /// The memoized [`TierDerived`] tables for `(device, layers,
    /// lightcone_depth)`, computing them on first use. `model` may be
    /// any sibling sharing this template's shape — the tables do not
    /// depend on which one (see [`TierDerived`]).
    ///
    /// # Errors
    ///
    /// Propagates the cone-walk width check (a model wider than the
    /// template, impossible for models the plan paired with it).
    pub(crate) fn tier_derived(
        &self,
        model: &IsingModel,
        layers: usize,
        device: &Device,
        lightcone_depth: usize,
    ) -> Result<Arc<TierDerived>, FqError> {
        let key = (device_fingerprint(device), layers, lightcone_depth);
        let mut cache = self
            .tier_derived
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((_, derived)) = cache.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(derived));
        }
        let derived = Arc::new(TierDerived {
            fid: fidelity_model(&self.compiled, device),
            cones: lightcone_fidelities_truncated(model, &self.compiled, device, lightcone_depth)?,
            eps_log: log_eps(&self.compiled, device),
            metrics: metrics_of(model, layers, &self.compiled),
        });
        cache.push((key, Arc::clone(&derived)));
        Ok(derived)
    }

    /// Produces the executable for a sibling sub-problem by rewriting the
    /// rotation scales of the routed template — no layout, routing or
    /// scheduling is redone.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::InvalidConfig`] on variable-count
    /// mismatch and propagates rebinding errors for structural mismatches.
    pub fn edit_for(&self, sibling: &IsingModel) -> Result<Compiled, FqError> {
        if sibling.num_vars() != self.num_vars {
            return Err(FqError::InvalidConfig(format!(
                "sibling has {} variables, template was built for {}",
                sibling.num_vars(),
                self.num_vars
            )));
        }
        let circuit = rebind_coefficients(&self.compiled.circuit, sibling)?;
        Ok(self.compiled.instantiate(circuit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_graphs::{gen, to_ising_pm1};
    use fq_ising::Spin;

    fn family() -> (IsingModel, IsingModel, IsingModel) {
        let parent = to_ising_pm1(&gen::barabasi_albert(8, 1, 2).unwrap(), 2);
        let hub = parent.hotspots()[0];
        let plus = parent.freeze(&[(hub, Spin::UP)]).unwrap();
        let minus = parent.freeze(&[(hub, Spin::DOWN)]).unwrap();
        (parent, plus.model().clone(), minus.model().clone())
    }

    #[test]
    fn edit_preserves_structure_and_changes_angles() {
        let (_, plus, minus) = family();
        let dev = Device::ibm_montreal();
        let template = CompiledTemplate::compile(&plus, 1, &dev, CompileOptions::level3()).unwrap();
        let edited = template.edit_for(&minus).unwrap();
        assert_eq!(edited.circuit.len(), template.compiled().circuit.len());
        assert_eq!(edited.final_layout, template.compiled().final_layout);
        // Angles differ because the two branches fold ±J into h.
        assert_ne!(edited.circuit, template.compiled().circuit);
    }

    #[test]
    fn edited_circuit_binds_to_the_sibling_semantics() {
        // The edited template, bound and ideally simulated, must match the
        // sibling's directly synthesized circuit in expectation value.
        let (_, plus, minus) = family();
        let topo = fq_transpile::Topology::grid(3, 3).unwrap();
        let dev = Device::ideal("ideal", topo);
        let template = CompiledTemplate::compile(&plus, 1, &dev, CompileOptions::level3()).unwrap();
        let edited = template.edit_for(&minus).unwrap();

        let bound = edited.circuit.bind(&[0.4], &[0.7]).unwrap();
        let recompiled = Compiled {
            circuit: bound,
            ..edited.clone()
        };
        let (compact, layout) = recompiled.compact();
        let sv = fq_sim::run_circuit(&compact).unwrap();

        // Compare per-logical-qubit expectation against the analytic EV of
        // the sibling model, by building the model over compact indices.
        let mut remapped = fq_ising::IsingModel::new(compact.num_qubits());
        for (i, hi) in minus.linears() {
            remapped.set_linear(layout[i], hi).unwrap();
        }
        for ((i, j), jij) in minus.couplings() {
            remapped.set_coupling(layout[i], layout[j], jij).unwrap();
        }
        remapped.set_offset(minus.offset());
        let ev_sv = sv.expectation_ising(&remapped).unwrap();
        let ev_analytic = fq_sim::analytic::expectation_p1(&minus, 0.4, 0.7).unwrap();
        assert!(
            (ev_sv - ev_analytic).abs() < 1e-9,
            "edited template EV {ev_sv} vs analytic {ev_analytic}"
        );
    }

    #[test]
    fn level3_keeps_placeholders_for_terms_zero_only_in_the_representative() {
        // Regression: two frozen hubs couple to a shared neighbour with
        // opposite signs, so the representative branch (both UP) folds
        // them to h = 0 while the flipped sibling gets h = 2. The level-3
        // cleanup passes must not strip the zero-scale placeholder Rz
        // from the compiled template, or the sibling silently loses that
        // Hamiltonian term.
        let mut parent = IsingModel::new(4);
        parent.set_coupling(0, 2, 1.0).unwrap();
        parent.set_coupling(1, 2, -1.0).unwrap();
        parent.set_coupling(2, 3, 1.0).unwrap();
        let rep = parent.freeze(&[(0, Spin::UP), (1, Spin::UP)]).unwrap();
        let sibling = parent.freeze(&[(0, Spin::UP), (1, Spin::DOWN)]).unwrap();
        assert_eq!(rep.model().linear(0), 0.0, "representative h cancels");
        assert_eq!(sibling.model().linear(0), 2.0, "sibling h does not");

        let topo = fq_transpile::Topology::grid(2, 2).unwrap();
        let dev = Device::ideal("ideal", topo);
        let template =
            CompiledTemplate::compile(rep.model(), 1, &dev, CompileOptions::level3()).unwrap();
        let edited = template.edit_for(sibling.model()).unwrap();

        // The edited executable, simulated, must realize the sibling's
        // Hamiltonian — linear term included.
        let bound = edited.circuit.bind(&[0.4], &[0.7]).unwrap();
        let (compact, layout) = edited.instantiate(bound).compact();
        let sv = fq_sim::run_circuit(&compact).unwrap();
        let mut remapped = IsingModel::new(compact.num_qubits());
        for (i, hi) in sibling.model().linears() {
            remapped.set_linear(layout[i], hi).unwrap();
        }
        for ((i, j), jij) in sibling.model().couplings() {
            remapped.set_coupling(layout[i], layout[j], jij).unwrap();
        }
        remapped.set_offset(sibling.model().offset());
        let ev_sv = sv.expectation_ising(&remapped).unwrap();
        let ev_analytic = fq_sim::analytic::expectation_p1(sibling.model(), 0.4, 0.7).unwrap();
        assert!(
            (ev_sv - ev_analytic).abs() < 1e-9,
            "edited template EV {ev_sv} vs analytic {ev_analytic} — placeholder Rz was dropped"
        );
    }

    #[test]
    fn rejects_wrong_width() {
        let (_, plus, _) = family();
        let dev = Device::ibm_montreal();
        let template = CompiledTemplate::compile(&plus, 1, &dev, CompileOptions::level3()).unwrap();
        let wrong = IsingModel::new(3);
        assert!(template.edit_for(&wrong).is_err());
    }
}
