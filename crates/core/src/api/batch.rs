//! Batched job execution: cross-job template amortization plus a
//! flattened jobs×branches work-stealing pool.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use fq_ising::IsingModel;
use fq_transpile::Device;

use super::{noise_model_sampling_error, Job, JobUnit, UnitOutput, UnitRole};
use crate::executor::{auto_threads, execute_branch, par_collect, sample_branch};
use crate::plan::{plan_execution_cached, CacheStats, ExecutionPlan, TemplateCache};
use crate::store::{DiskStore, MemoryStore, TemplateStore, TieredStore};
use crate::{BranchOutcome, BranchSamples, FqError, JobResult, JobSpec};

/// Runs many [`JobSpec`]s against one shared [`TemplateCache`],
/// saturating the machine across **jobs × branches**.
///
/// PR 1 made the compile cost of one job `O(distinct shapes)` instead of
/// `O(2^m)`; the batch runner extends that across jobs — a parameter sweep
/// over the same problem family compiles each distinct (shape, device,
/// layers, options) combination **once for the whole batch** — and since
/// this PR it also flattens the batch into per-branch work items drained
/// by one shared work-stealing pool. A batch of 100 four-branch jobs is
/// 400 independent items on that pool, not 100 mostly-idle 4-way bursts,
/// so sweeps scale with the core count rather than with `2^{m−1}`.
///
/// The engine schedules branches itself; the per-job
/// [`FrozenQubitsConfig::executor`](crate::FrozenQubitsConfig) knob only
/// applies when a job runs alone via [`JobSpec::run`] /
/// [`Job::run_cached`].
///
/// # Determinism
///
/// Results are **bit-identical** to running every spec sequentially in
/// input order: outcomes are aggregated in job order and branch order,
/// and within a job the first error (by unit order, then branch index)
/// wins — scheduling never leaks into results. Jobs are independent, so a
/// failing spec yields its own `Err` without sinking the rest.
///
/// # Example
///
/// ```
/// use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder};
///
/// let jobs: Vec<_> = (0..3)
///     .map(|seed| {
///         JobBuilder::new()
///             .barabasi_albert(10, 1, 4)
///             .device(DeviceSpec::IbmMontreal)
///             .seed(seed)
///             .frozen()
///             .build()
///     })
///     .collect::<Result<_, _>>()?;
/// let runner = BatchRunner::new();
/// let results = runner.run(&jobs);
/// assert!(results.iter().all(Result::is_ok));
/// // Three jobs, one distinct sub-circuit shape: one compiled template.
/// assert_eq!(runner.templates_compiled(), 1);
/// # Ok::<(), frozenqubits::FqError>(())
/// ```
#[derive(Debug, Default)]
pub struct BatchRunner {
    cache: TemplateCache,
    /// Worker count; 0 = auto (`FQ_THREADS` env override, else one per
    /// available core).
    threads: usize,
    /// Memoized whole plans of **approximate-tier** units, keyed by
    /// every plan input (problem, device, planning config). The exact
    /// tier never touches this map — its resolve-and-plan path stays
    /// bit-for-bit the pre-tier one — but for `balanced`/`fast` sweeps
    /// (many seeds over one family) it collapses the per-job problem
    /// materialization, hotspot selection, partitioning and template
    /// fetch into one `Arc` clone per job. Planning is a pure function
    /// of the key, so memoization changes no output bit.
    tier_plans: Mutex<HashMap<String, Arc<ExecutionPlan>>>,
    /// Memoized `(model, device)` resolution for approximate-tier jobs,
    /// keyed by the problem + device specs (same purity argument).
    tier_resolved: Mutex<HashMap<String, Arc<(IsingModel, Device)>>>,
}

/// The memo maps above are bounded: past this many entries they are
/// cleared and rebuilt, so a long-lived service shard sweeping an
/// unbounded stream of distinct tier problems cannot grow them without
/// limit (a clear only costs the next batch one re-plan per key).
const TIER_MEMO_CAP: usize = 256;

/// One planned execution unit: `job_index` into the spec slice plus the
/// unit's role/config and its compiled plan.
struct PlannedUnit {
    job: usize,
    unit: JobUnit,
    plan: Result<Arc<ExecutionPlan>, FqError>,
    /// Offset of this unit's first branch in the flattened item space.
    first_item: usize,
    /// Number of flattened branch items this unit contributes.
    items: usize,
}

/// A branch-level result in the flattened pool, matching the unit's role.
enum BranchResult {
    Outcome(BranchOutcome),
    Samples(BranchSamples),
}

impl BatchRunner {
    /// A runner with an empty, unbounded template cache and automatic
    /// thread count.
    #[must_use]
    pub fn new() -> BatchRunner {
        BatchRunner::default()
    }

    /// Sets the worker-thread count of the jobs×branches pool.
    ///
    /// `0` (the default) selects automatically: the `FQ_THREADS`
    /// environment variable if it parses as an integer ≥ 1, else one
    /// worker per available core. `1` forces fully sequential in-order
    /// execution (useful as a bit-identical reference and for
    /// benchmarking speedups). Values above the available parallelism are
    /// accepted but add nothing; the pool is additionally clamped to the
    /// number of work items, so oversized values never spawn idle
    /// threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> BatchRunner {
        self.threads = threads;
        self
    }

    /// Bounds the shared template cache to at most `capacity` resident
    /// templates (LRU eviction; see [`TemplateCache::with_capacity`]).
    /// The default is unbounded.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> BatchRunner {
        self.cache = TemplateCache::with_capacity(capacity);
        self
    }

    /// Replaces the template cache's backing [`TemplateStore`] — the
    /// persistence seam. Pass a
    /// [`TieredStore`](crate::TieredStore) to spill compiled templates
    /// to disk; [`BatchRunner::with_cache_dir`] is the one-call form.
    #[must_use]
    pub fn with_store(mut self, store: Box<dyn TemplateStore>) -> BatchRunner {
        self.cache = TemplateCache::with_store(store);
        self
    }

    /// Backs the template cache with an unbounded memory tier over a
    /// disk spill tier rooted at `dir`: every compiled template is
    /// written through to `dir`, so a later runner (or a restarted
    /// process, or a sibling shard mounting the same directory) pointed
    /// at the same path re-runs the batch with **zero** new compiles —
    /// pinned in `tests/warm_start.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`FqError::Io`] when `dir` cannot be created.
    pub fn with_cache_dir(self, dir: impl AsRef<std::path::Path>) -> Result<BatchRunner, FqError> {
        let disk = DiskStore::new(dir)?;
        Ok(self.with_store(Box::new(TieredStore::new(MemoryStore::new(), disk))))
    }

    /// The shared template cache — warm-transfer surface included
    /// ([`TemplateCache::index`], [`TemplateCache::artifact`],
    /// [`TemplateCache::insert_artifact`]), which is how the HTTP
    /// service serves `GET`/`POST /v1/templates`.
    #[must_use]
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// The effective worker count for `items` work items.
    fn effective_threads(&self, items: usize) -> usize {
        let t = if self.threads == 0 {
            auto_threads()
        } else {
            self.threads
        };
        t.min(items).max(1)
    }

    /// Runs every spec, sharing compiled templates across jobs and
    /// fanning **all** branches of **all** jobs out over one
    /// work-stealing pool. Each job gets its own `Result`; order matches
    /// the input and every result is bit-identical to running the specs
    /// one by one.
    ///
    /// Takes `&self`: the shared [`TemplateCache`] is concurrent, so any
    /// number of callers (e.g. the `fq-serve` worker pool) may run
    /// batches against one runner at once, warming each other's cache.
    pub fn run(&self, specs: &[JobSpec]) -> Vec<Result<JobResult, FqError>> {
        // Resolve specs in input order (problem materialization; memoized
        // for approximate tiers, untouched for exact).
        let jobs: Vec<Result<Job, FqError>> = specs.iter().map(|s| self.resolve_job(s)).collect();

        // Decompose resolved jobs into execution units.
        let mut pending: Vec<(usize, JobUnit)> = Vec::new();
        for (job_index, job) in jobs.iter().enumerate() {
            if let Ok(job) = job {
                for unit in job.decompose() {
                    pending.push((job_index, unit));
                }
            }
        }

        // Phase 1 — plan every unit in parallel against the shared
        // concurrent cache. The per-key once-compile slots guarantee each
        // distinct template is compiled exactly once even when many units
        // race for it; distinct templates compile concurrently.
        let threads = self.effective_threads(pending.len());
        let plans: Vec<Result<Arc<ExecutionPlan>, FqError>> =
            par_collect(threads, pending.len(), |u| {
                let (job_index, unit) = &pending[u];
                let job = jobs[*job_index]
                    .as_ref()
                    .expect("only resolved jobs decompose into units");
                self.plan_unit(&specs[*job_index], job, unit)
            });

        // Flatten planned units into the jobs×branches item space. A
        // sampling unit on a backend without sampling physics plans (the
        // sequential path compiles before rejecting too) but contributes
        // no branch items — it fails at assembly instead.
        let mut units: Vec<PlannedUnit> = Vec::with_capacity(pending.len());
        let mut total_items = 0usize;
        for ((job_index, unit), plan) in pending.into_iter().zip(plans) {
            let runnable = plan.is_ok() && !self.unit_rejected(&jobs[job_index], &unit);
            let items = if runnable {
                plan.as_ref().map_or(0, |p| p.num_branches())
            } else {
                0
            };
            units.push(PlannedUnit {
                job: job_index,
                unit,
                plan,
                first_item: total_items,
                items,
            });
            total_items += items;
        }

        // Phase 2 — drain all branches of all jobs from one pool.
        let threads = self.effective_threads(total_items);
        let branch_results: Vec<Result<BranchResult, FqError>> =
            par_collect(threads, total_items, |item| {
                // Map the flat index back to (unit, branch).
                let u = units.partition_point(|pu| pu.first_item <= item) - 1;
                let pu = &units[u];
                let branch = item - pu.first_item;
                let plan = pu.plan.as_ref().expect("runnable units have plans");
                let job = jobs[pu.job].as_ref().expect("runnable units have jobs");
                match pu.unit.role {
                    UnitRole::Baseline | UnitRole::Frozen => execute_branch(
                        plan,
                        branch,
                        &job.device,
                        &pu.unit.config,
                        job.branch_noise(),
                    )
                    .map(BranchResult::Outcome),
                    UnitRole::Sample { shots } => {
                        sample_branch(plan, branch, &job.device, &pu.unit.config, shots)
                            .map(BranchResult::Samples)
                    }
                }
            });

        // Phase 3 — reassemble in job order, branch order, with the first
        // error (unit order, then branch index) winning per job: exactly
        // the sequential path's semantics. `Ok(None)` marks a job whose
        // units all succeeded but whose result is not yet assembled.
        let mut results: Vec<Result<Option<JobResult>, FqError>> = jobs
            .iter()
            .map(|job| match job {
                Ok(_) => Ok(None),
                Err(e) => Err(e.clone()),
            })
            .collect();
        let mut parts: Vec<Vec<(Arc<ExecutionPlan>, UnitOutput)>> =
            (0..jobs.len()).map(|_| Vec::new()).collect();
        let mut branch_results = branch_results.into_iter();
        for pu in units {
            let outputs: Vec<Result<BranchResult, FqError>> =
                branch_results.by_ref().take(pu.items).collect();
            if results[pu.job].is_err() {
                continue; // an earlier unit of this job already failed
            }
            match self.collect_unit(&jobs[pu.job], pu.unit, pu.plan, outputs) {
                Ok(part) => parts[pu.job].push(part),
                Err(e) => results[pu.job] = Err(e),
            }
        }
        for (job_index, (job, part)) in jobs.iter().zip(parts).enumerate() {
            if let (Ok(job), Ok(None)) = (job, &results[job_index]) {
                results[job_index] = job.assemble(part).map(Some);
            }
        }
        results
            .into_iter()
            .map(|r| r.map(|opt| opt.expect("every surviving job was assembled")))
            .collect()
    }

    /// Resolves one spec into a runnable [`Job`]. The exact tier goes
    /// straight through [`JobSpec::to_job`] — bit-for-bit the sequential
    /// path. Approximate tiers memoize the `(model, device)` pair per
    /// (problem, device) spec so a sweep that varies only seed/tier pays
    /// problem materialization once; resolution is a pure function of
    /// the spec, so the memo changes no output bit.
    fn resolve_job(&self, spec: &JobSpec) -> Result<Job, FqError> {
        if spec.config.tier.is_exact() {
            return spec.to_job();
        }
        let key = format!("{:?}|{:?}", spec.problem, spec.device);
        let hit = {
            let memo = self
                .tier_resolved
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            memo.get(&key).cloned()
        };
        let resolved = match hit {
            Some(r) => r,
            None => {
                let r = Arc::new((spec.problem.resolve()?, spec.device.build()));
                let mut memo = self
                    .tier_resolved
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if memo.len() >= TIER_MEMO_CAP {
                    memo.clear();
                }
                memo.insert(key, Arc::clone(&r));
                r
            }
        };
        Ok(Job {
            model: resolved.0.clone(),
            device: resolved.1.clone(),
            config: spec.config.clone(),
            backend: spec.backend,
            kind: spec.kind,
        })
    }

    /// Plans one unit. The exact tier always re-plans through the
    /// template cache (the pre-tier path, byte for byte); approximate
    /// tiers additionally memoize the **whole plan** keyed by every
    /// planning input — problem and device specs plus the config fields
    /// planning reads (`num_frozen`, `layers`, `hotspots`,
    /// `prune_symmetric`, `compile`; seed, `param_grid` and tier are
    /// execution-time knobs, not planning inputs). `Debug` of `f64`
    /// round-trips exactly, so the string key is injective. Racing
    /// threads may plan the same key twice; planning is pure, so either
    /// `Arc` yields identical bits.
    fn plan_unit(
        &self,
        spec: &JobSpec,
        job: &Job,
        unit: &JobUnit,
    ) -> Result<Arc<ExecutionPlan>, FqError> {
        if unit.config.tier.is_exact() {
            return plan_execution_cached(&job.model, &job.device, &unit.config, &self.cache)
                .map(Arc::new);
        }
        let key = format!(
            "{:?}|{:?}|{}|{}|{:?}|{}|{:?}",
            spec.problem,
            spec.device,
            unit.config.num_frozen,
            unit.config.layers,
            unit.config.hotspots,
            unit.config.prune_symmetric,
            unit.config.compile,
        );
        {
            let memo = self
                .tier_plans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(plan) = memo.get(&key) {
                return Ok(Arc::clone(plan));
            }
        }
        let plan = Arc::new(plan_execution_cached(
            &job.model,
            &job.device,
            &unit.config,
            &self.cache,
        )?);
        let mut memo = self
            .tier_plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if memo.len() >= TIER_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Whether `unit` is rejected before branch execution (sampling on a
    /// backend without sampling physics — the exhaustive dispatch lives
    /// in [`Job::sampling_supported`]).
    fn unit_rejected(&self, job: &Result<Job, FqError>, unit: &JobUnit) -> bool {
        matches!(unit.role, UnitRole::Sample { .. })
            && job.as_ref().is_ok_and(|j| !j.sampling_supported())
    }

    /// Turns one unit's branch results into an assembly part, surfacing
    /// the unit's planning error, backend rejection, or first branch
    /// error (by index).
    fn collect_unit(
        &self,
        job: &Result<Job, FqError>,
        unit: JobUnit,
        plan: Result<Arc<ExecutionPlan>, FqError>,
        outputs: Vec<Result<BranchResult, FqError>>,
    ) -> Result<(Arc<ExecutionPlan>, UnitOutput), FqError> {
        let plan = plan?;
        if self.unit_rejected(job, &unit) {
            return Err(noise_model_sampling_error());
        }
        let output = match unit.role {
            UnitRole::Baseline | UnitRole::Frozen => {
                let mut outcomes = Vec::with_capacity(outputs.len());
                for r in outputs {
                    match r? {
                        BranchResult::Outcome(o) => outcomes.push(o),
                        BranchResult::Samples(_) => unreachable!("analytic unit"),
                    }
                }
                UnitOutput::Analytic(outcomes)
            }
            UnitRole::Sample { .. } => {
                let mut samples = Vec::with_capacity(outputs.len());
                for r in outputs {
                    match r? {
                        BranchResult::Samples(s) => samples.push(s),
                        BranchResult::Outcome(_) => unreachable!("sampling unit"),
                    }
                }
                UnitOutput::Samples(samples)
            }
        };
        Ok((plan, output))
    }

    /// Runs every spec, then returns the first error in input order (the
    /// whole batch still executes — jobs are independent).
    ///
    /// # Errors
    ///
    /// The first failing job's error.
    pub fn run_all(&self, specs: &[JobSpec]) -> Result<Vec<JobResult>, FqError> {
        self.run(specs).into_iter().collect()
    }

    /// Number of distinct templates currently resident in the cache —
    /// with the default unbounded cache, exactly the number of distinct
    /// (shape, device, layers, options) keys compiled across all runs.
    #[must_use]
    pub fn templates_compiled(&self) -> usize {
        self.cache.len()
    }

    /// Exact cache counters: hits, misses (= compiles), LRU evictions,
    /// residency and bound.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BackendSpec, DeviceSpec, JobBuilder};

    fn frozen_spec(n: usize, seed: u64) -> JobSpec {
        JobBuilder::new()
            .barabasi_albert(n, 1, seed)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap()
    }

    // `compile_invocations()` deltas are asserted in the dedicated
    // `tests/batch_amortization.rs` and `tests/batch_parallel.rs`
    // processes; here we check the cache's own bookkeeping and per-job
    // error isolation.
    #[test]
    fn batch_shares_templates_and_isolates_failures() {
        let good = frozen_spec(10, 2);
        let same_shape = JobSpec {
            backend: BackendSpec::NoiseModel,
            ..good.clone()
        };
        // Bypass the builder to smuggle in a run-time failure.
        let bad = JobSpec {
            config: crate::FrozenQubitsConfig::with_frozen(99),
            ..good.clone()
        };
        let runner = BatchRunner::new();
        let results = runner.run(&[good, bad, same_shape]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(FqError::TooManyFrozen { m: 99, .. })
        ));
        assert!(results[2].is_ok(), "a failing job must not sink the batch");
        assert_eq!(
            runner.templates_compiled(),
            1,
            "both succeeding jobs share one shape"
        );
        assert!(runner.run_all(&[frozen_spec(10, 2)]).is_ok());
    }

    #[test]
    fn distinct_shapes_get_distinct_templates() {
        let runner = BatchRunner::new();
        let results = runner.run(&[frozen_spec(10, 2), frozen_spec(12, 2)]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(runner.templates_compiled(), 2);
    }

    #[test]
    fn thread_knob_is_deterministic() {
        let specs: Vec<JobSpec> = (0..4).map(|s| frozen_spec(10, s)).collect();
        let sequential = BatchRunner::new().with_threads(1).run(&specs);
        for threads in [2usize, 5] {
            let parallel = BatchRunner::new().with_threads(threads).run(&specs);
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    s.as_ref().unwrap(),
                    p.as_ref().unwrap(),
                    "threads={threads} must not change results"
                );
            }
        }
    }

    #[test]
    fn smuggled_noise_model_sampling_fails_like_the_backend() {
        // The builder rejects this combination; a hand-built spec must
        // fail identically through the batch engine.
        let sampled = JobSpec {
            backend: BackendSpec::NoiseModel,
            kind: crate::JobKind::Sample { shots: 32 },
            ..frozen_spec(10, 3)
        };
        let direct = sampled.to_job().unwrap().run().unwrap_err();
        let runner = BatchRunner::new();
        let batched = runner.run(std::slice::from_ref(&sampled));
        assert_eq!(batched[0].as_ref().unwrap_err(), &direct);
    }
}
