//! Batched job execution with cross-job template amortization.

use crate::plan::TemplateCache;
use crate::{FqError, JobResult, JobSpec};

/// Runs many [`JobSpec`]s against one shared [`TemplateCache`].
///
/// PR 1 made the compile cost of one job `O(distinct shapes)` instead of
/// `O(2^m)`; the batch runner extends that across jobs: a parameter sweep
/// over the same problem family — different seeds, backends, executors —
/// compiles each distinct (shape, device, layers, options) combination
/// **once for the whole batch**. Jobs are independent, so a failing spec
/// yields its own `Err` without sinking the rest.
///
/// # Example
///
/// ```
/// use frozenqubits::api::{BatchRunner, DeviceSpec, JobBuilder};
///
/// let jobs: Vec<_> = (0..3)
///     .map(|seed| {
///         JobBuilder::new()
///             .barabasi_albert(10, 1, 4)
///             .device(DeviceSpec::IbmMontreal)
///             .seed(seed)
///             .frozen()
///             .build()
///     })
///     .collect::<Result<_, _>>()?;
/// let mut runner = BatchRunner::new();
/// let results = runner.run(&jobs);
/// assert!(results.iter().all(Result::is_ok));
/// // Three jobs, one distinct sub-circuit shape: one compiled template.
/// assert_eq!(runner.templates_compiled(), 1);
/// # Ok::<(), frozenqubits::FqError>(())
/// ```
#[derive(Debug, Default)]
pub struct BatchRunner {
    cache: TemplateCache,
}

impl BatchRunner {
    /// A runner with an empty template cache.
    #[must_use]
    pub fn new() -> BatchRunner {
        BatchRunner::default()
    }

    /// Runs every spec in order, sharing compiled templates across jobs.
    /// Each job gets its own `Result`; order matches the input.
    pub fn run(&mut self, specs: &[JobSpec]) -> Vec<Result<JobResult, FqError>> {
        specs
            .iter()
            .map(|spec| spec.to_job()?.run_cached(&mut self.cache))
            .collect()
    }

    /// Runs every spec, failing fast on the first error (in input order).
    ///
    /// # Errors
    ///
    /// The first failing job's error.
    pub fn run_all(&mut self, specs: &[JobSpec]) -> Result<Vec<JobResult>, FqError> {
        specs
            .iter()
            .map(|spec| spec.to_job()?.run_cached(&mut self.cache))
            .collect()
    }

    /// Number of distinct templates compiled so far across all jobs.
    #[must_use]
    pub fn templates_compiled(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BackendSpec, DeviceSpec, JobBuilder};

    fn frozen_spec(n: usize, seed: u64) -> JobSpec {
        JobBuilder::new()
            .barabasi_albert(n, 1, seed)
            .device(DeviceSpec::IbmMontreal)
            .frozen()
            .build()
            .unwrap()
    }

    // `compile_invocations()` deltas are asserted in the dedicated
    // `tests/batch_amortization.rs` process; here we check the cache's
    // own bookkeeping and per-job error isolation.
    #[test]
    fn batch_shares_templates_and_isolates_failures() {
        let good = frozen_spec(10, 2);
        let same_shape = JobSpec {
            backend: BackendSpec::NoiseModel,
            ..good.clone()
        };
        // Bypass the builder to smuggle in a run-time failure.
        let bad = JobSpec {
            config: crate::FrozenQubitsConfig::with_frozen(99),
            ..good.clone()
        };
        let mut runner = BatchRunner::new();
        let results = runner.run(&[good, bad, same_shape]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(FqError::TooManyFrozen { m: 99, .. })
        ));
        assert!(results[2].is_ok(), "a failing job must not sink the batch");
        assert_eq!(
            runner.templates_compiled(),
            1,
            "both succeeding jobs share one shape"
        );
        assert!(runner.run_all(&[frozen_spec(10, 2)]).is_ok());
    }

    #[test]
    fn distinct_shapes_get_distinct_templates() {
        let mut runner = BatchRunner::new();
        let results = runner.run(&[frozen_spec(10, 2), frozen_spec(12, 2)]);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(runner.templates_compiled(), 2);
    }
}
