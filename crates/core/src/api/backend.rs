//! Execution backends: *where* and *under which noise model* a plan's
//! branches run.
//!
//! The [`Executor`](crate::Executor) layer decides scheduling (sequential
//! vs. thread fan-out); a [`Backend`] decides physics. Today both
//! backends evaluate branches on the in-process statevector/analytic
//! simulator — [`SimBackend`] with the paper's per-term lightcone
//! fidelity model, [`NoiseModelBackend`] with the cheaper global
//! process-fidelity estimate — and the trait is the seam where a
//! real-device backend plugs in later without touching job code.

use fq_transpile::Device;

use crate::executor::NoiseEval;
use crate::plan::ExecutionPlan;
use crate::{BranchOutcome, BranchSamples, ExecutorKind, FqError, FrozenQubitsConfig};

/// A branch-evaluation substrate consuming an [`ExecutionPlan`].
///
/// Implementations must be deterministic: two runs of the same plan with
/// the same config produce identical outcomes, which is what makes batch
/// results reproducible and cacheable.
pub trait Backend: Send + Sync {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Runs the analytic pipeline for every branch of `plan`, in branch
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first branch failure (by branch order).
    fn run(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
    ) -> Result<Vec<BranchOutcome>, FqError>;

    /// Runs the sampling pipeline for every branch of `plan`, in branch
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first branch failure (by branch order).
    fn sample(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError>;
}

/// A serializable backend choice for a [`JobSpec`](crate::api::JobSpec).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum BackendSpec {
    /// The statevector simulator with lightcone fidelity modelling
    /// (the paper's methodology; the default).
    #[default]
    Sim,
    /// The statevector simulator with the global process-fidelity noise
    /// model — coarser, cheaper, still fully deterministic.
    NoiseModel,
}

impl BackendSpec {
    /// The wire name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Sim => "sim",
            BackendSpec::NoiseModel => "noise_model",
        }
    }

    /// Looks a backend up by wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<BackendSpec> {
        match name {
            "sim" => Some(BackendSpec::Sim),
            "noise_model" => Some(BackendSpec::NoiseModel),
            _ => None,
        }
    }

    /// Builds the backend, scheduling branches on `executor`.
    #[must_use]
    pub fn build(&self, executor: ExecutorKind) -> Box<dyn Backend> {
        match self {
            BackendSpec::Sim => Box::new(SimBackend::new(executor)),
            BackendSpec::NoiseModel => Box::new(NoiseModelBackend::new(executor)),
        }
    }
}

/// The statevector-simulator backend with the paper's lightcone noise
/// model — bit-identical to the pre-API pipeline wrappers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimBackend {
    executor: ExecutorKind,
}

impl SimBackend {
    /// A simulator backend scheduling branches on `executor`.
    #[must_use]
    pub fn new(executor: ExecutorKind) -> SimBackend {
        SimBackend { executor }
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
    ) -> Result<Vec<BranchOutcome>, FqError> {
        self.executor
            .build()
            .execute_with(plan, device, config, NoiseEval::Lightcone)
    }

    fn sample(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
        shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError> {
        self.executor.build().sample(plan, device, config, shots)
    }
}

/// The deterministic global process-fidelity backend: same ideal
/// expectations as [`SimBackend`], but the modelled-hardware expectation
/// uses one depolarizing-style attenuation per circuit instead of
/// per-term lightcones.
///
/// This backend has **no sampling physics** — its noise model is an
/// expectation-value attenuation, not a shot distribution — so
/// [`Backend::sample`] is rejected rather than silently falling back to
/// the simulator's trajectories ([`JobBuilder`](crate::api::JobBuilder)
/// already refuses to build a sampling job on it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoiseModelBackend {
    executor: ExecutorKind,
}

impl NoiseModelBackend {
    /// A process-fidelity backend scheduling branches on `executor`.
    #[must_use]
    pub fn new(executor: ExecutorKind) -> NoiseModelBackend {
        NoiseModelBackend { executor }
    }
}

impl Backend for NoiseModelBackend {
    fn name(&self) -> &'static str {
        "noise_model"
    }

    fn run(
        &self,
        plan: &ExecutionPlan,
        device: &Device,
        config: &FrozenQubitsConfig,
    ) -> Result<Vec<BranchOutcome>, FqError> {
        self.executor
            .build()
            .execute_with(plan, device, config, NoiseEval::ProcessFidelity)
    }

    fn sample(
        &self,
        _plan: &ExecutionPlan,
        _device: &Device,
        _config: &FrozenQubitsConfig,
        _shots: u64,
    ) -> Result<Vec<BranchSamples>, FqError> {
        Err(noise_model_sampling_error())
    }
}

/// The error every path rejecting sampling on [`NoiseModelBackend`]
/// returns — the backend itself, and the batch engine's direct branch
/// scheduling — so a smuggled spec fails identically everywhere.
pub(crate) fn noise_model_sampling_error() -> FqError {
    FqError::InvalidConfig(
        "the noise_model backend models expectations, not shot distributions; \
         use the sim backend for sampling jobs"
            .into(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plan_execution, Executor as _};
    use fq_graphs::{gen, to_ising_pm1};

    #[test]
    fn backend_specs_round_trip_names() {
        for spec in [BackendSpec::Sim, BackendSpec::NoiseModel] {
            assert_eq!(BackendSpec::from_name(spec.name()), Some(spec));
            assert_eq!(spec.build(ExecutorKind::Sequential).name(), spec.name());
        }
        assert_eq!(BackendSpec::from_name("qpu"), None);
    }

    #[test]
    fn sim_backend_matches_the_executor_path() {
        let model = to_ising_pm1(&gen::barabasi_albert(10, 1, 6).unwrap(), 6);
        let device = Device::ibm_montreal();
        let config = FrozenQubitsConfig::with_frozen(2);
        let plan = plan_execution(&model, &device, &config).unwrap();
        let via_backend = SimBackend::new(ExecutorKind::Sequential)
            .run(&plan, &device, &config)
            .unwrap();
        let via_executor = crate::SequentialExecutor
            .execute(&plan, &device, &config)
            .unwrap();
        assert_eq!(via_backend, via_executor);
    }

    #[test]
    fn noise_model_backend_attenuates_toward_zero() {
        let model = to_ising_pm1(&gen::barabasi_albert(10, 1, 8).unwrap(), 8);
        let device = Device::ibm_montreal();
        let config = FrozenQubitsConfig::default();
        let plan = plan_execution(&model, &device, &config).unwrap();
        let out = NoiseModelBackend::new(ExecutorKind::Sequential)
            .run(&plan, &device, &config)
            .unwrap();
        for o in &out {
            assert!(o.ev_ideal < 0.0);
            assert!(o.ev_noisy > o.ev_ideal, "noise pulls EV toward zero");
            assert!(o.ev_noisy.abs() < o.ev_ideal.abs());
        }
    }
}
